#!/usr/bin/env sh
# Offline CI for the ntg workspace: formatting, lints, build, tests.
# Everything here runs with no network access and no external crates.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

# Bench smoke: the quick Table 2 preset exercises the whole
# trace → translate → replay flow (with event-horizon cycle skipping on
# by default; NTG_NO_SKIP=1 is the escape hatch), and a sweep dry-run
# checks campaign expansion. Bounded so a hang fails fast instead of
# wedging CI. The root manifest is a package as well as a workspace, so
# the tier-1 build above does not refresh member binaries — build them
# explicitly or the smoke runs a stale ntg-sweep/table2.
echo "==> cargo build --release --workspace (smoke binaries)"
cargo build --release --workspace

echo "==> bench smoke: table2 --quick"
timeout 300 ./target/release/table2 --quick --threads 2 > /dev/null

echo "==> bench smoke: ntg-sweep --dry-run"
timeout 60 ./target/release/ntg-sweep --preset quick --dry-run > /dev/null

# Persistent-store smoke: the same tiny campaign twice against a scratch
# store — the second run must pull every artifact from disk (zero
# builds) and write byte-identical results.
echo "==> store smoke: warm rerun hits the store"
STORE_SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$STORE_SMOKE_DIR"' EXIT
SWEEP="timeout 120 ./target/release/ntg-sweep --workloads mp_matrix:8 --cores 2 --fabrics amba --masters cpu,tg --quiet --store $STORE_SMOKE_DIR/store"
$SWEEP --out "$STORE_SMOKE_DIR/cold.jsonl" | grep -q "traces 1 built"
$SWEEP --out "$STORE_SMOKE_DIR/warm.jsonl" | grep -q "traces 0 built"
cmp "$STORE_SMOKE_DIR/cold.jsonl" "$STORE_SMOKE_DIR/warm.jsonl"

# Shard smoke: two shard processes sharing the store, merged back —
# byte-identical to the single-process file above.
echo "==> store smoke: shard + merge reproduces the single run"
$SWEEP --out "$STORE_SMOKE_DIR/sharded.jsonl" --shard 1/2 > /dev/null
$SWEEP --out "$STORE_SMOKE_DIR/sharded.jsonl" --shard 2/2 > /dev/null
timeout 60 ./target/release/ntg-sweep merge --out "$STORE_SMOKE_DIR/sharded.jsonl" \
    "$STORE_SMOKE_DIR/sharded.jsonl.shard-1-of-2" \
    "$STORE_SMOKE_DIR/sharded.jsonl.shard-2-of-2" > /dev/null
cmp "$STORE_SMOKE_DIR/sharded.jsonl" "$STORE_SMOKE_DIR/cold.jsonl"

echo "CI OK"
