#!/usr/bin/env sh
# Offline CI for the ntg workspace: formatting, lints, build, tests.
# Everything here runs with no network access and no external crates.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

# Bench smoke: the quick Table 2 preset exercises the whole
# trace → translate → replay flow (with event-horizon cycle skipping on
# by default; NTG_NO_SKIP=1 is the escape hatch), and a sweep dry-run
# checks campaign expansion. Bounded so a hang fails fast instead of
# wedging CI. The root manifest is a package as well as a workspace, so
# the tier-1 build above does not refresh member binaries — build them
# explicitly or the smoke runs a stale ntg-sweep/table2.
echo "==> cargo build --release --workspace (smoke binaries)"
cargo build --release --workspace

echo "==> bench smoke: table2 --quick"
timeout 300 ./target/release/table2 --quick --threads 2 > /dev/null

echo "==> bench smoke: ntg-sweep --dry-run"
timeout 60 ./target/release/ntg-sweep --preset quick --dry-run > /dev/null

echo "CI OK"
