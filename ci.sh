#!/usr/bin/env sh
# Offline CI for the ntg workspace: formatting, lints, build, tests.
# Everything here runs with no network access and no external crates.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "CI OK"
