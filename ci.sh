#!/usr/bin/env sh
# Offline CI for the ntg workspace: formatting, lints, build, tests.
# Everything here runs with no network access and no external crates.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The bench targets and the alloc-count harness are feature-gated; make
# sure they keep compiling even though default builds skip them.
echo "==> cargo check: feature-gated bench targets"
cargo check -p ntg-bench --benches --features external-deps
cargo check -p ntg-bench --tests --features alloc-count

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

# Bench smoke: the quick Table 2 preset exercises the whole
# trace → translate → replay flow (with event-horizon cycle skipping on
# by default; NTG_NO_SKIP=1 is the escape hatch), and a sweep dry-run
# checks campaign expansion. Bounded so a hang fails fast instead of
# wedging CI. The root manifest is a package as well as a workspace, so
# the tier-1 build above does not refresh member binaries — build them
# explicitly or the smoke runs a stale ntg-sweep/table2.
echo "==> cargo build --release --workspace (smoke binaries)"
cargo build --release --workspace

echo "==> bench smoke: table2 --quick"
timeout 300 ./target/release/table2 --quick --threads 2 > /dev/null

echo "==> bench smoke: ntg-sweep --dry-run"
timeout 60 ./target/release/ntg-sweep --preset quick --dry-run > /dev/null

# Hot-path perf harness smoke: run the fixed benchmark subset at smoke
# scale, validate the emitted JSON against the v4 schema, and re-check
# the cycle-skipping, partitioning and sparse-scheduling bit-identity
# contracts from the recorded legs (ntg-bench also asserts them
# internally; this guards the file format).
echo "==> bench smoke: ntg-bench --smoke + schema check"
BENCH_SMOKE_JSON=$(mktemp)
timeout 300 ./target/release/ntg-bench --smoke --out "$BENCH_SMOKE_JSON" > /dev/null
python3 - "$BENCH_SMOKE_JSON" <<'PYEOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "ntg-bench-hotpath-v4", r.get("schema")
for key in ("mode", "warmup", "repeats", "threads", "host_cpus", "campaign",
            "peak_rss_kb", "alloc", "points", "big_mesh"):
    assert key in r, f"missing {key}"
assert r["threads"] >= 1, "worker count must be recorded"
assert r["host_cpus"] >= 1, "host CPU count must be recorded"
for key in ("jobs", "wall_s_threads_1", "wall_s_threads_n", "parallel_speedup"):
    assert key in r["campaign"], f"campaign missing {key}"
assert r["campaign"]["jobs"] >= 1, "campaign leg ran no jobs"
assert isinstance(r["points"], list) and r["points"], "no benchmark points"
for p in r["points"]:
    for leg in ("arm", "tg_skip", "tg_noskip"):
        for field in ("cycles", "ticked_cycles", "skipped_cycles",
                      "visited_component_cycles", "total_component_cycles",
                      "transactions", "wall_s", "ticked_per_sec"):
            assert field in p[leg], f"{p['bench']}: {leg} missing {field}"
    assert p["tg_skip"]["cycles"] == p["tg_noskip"]["cycles"], \
        f"{p['bench']}: skip on/off cycle mismatch"
    assert p["tg_skip"]["transactions"] == p["tg_noskip"]["transactions"], \
        f"{p['bench']}: skip on/off transaction mismatch"
    assert p["tg_noskip"]["skipped_cycles"] == 0
assert isinstance(r["big_mesh"], list) and r["big_mesh"], "no big-mesh points"
for m in r["big_mesh"]:
    for key in ("mesh", "masters", "packets", "spec", "sim_threads", "serial",
                "partitioned", "partitions", "barrier_crossings",
                "barrier_stalls", "parallel_speedup", "active_sched",
                "oversubscribed"):
        assert key in m, f"big_mesh {m.get('mesh')}: missing {key}"
    assert m["partitions"] >= 2, f"{m['mesh']}: did not partition"
    assert m["serial"]["cycles"] == m["partitioned"]["cycles"], \
        f"{m['mesh']}: serial/partitioned cycle mismatch"
    assert m["serial"]["transactions"] == m["partitioned"]["transactions"], \
        f"{m['mesh']}: serial/partitioned transaction mismatch"
    sched = m["active_sched"]
    for key in ("dense", "visited_component_cycles", "total_component_cycles",
                "visit_ratio", "speedup_vs_dense"):
        assert key in sched, f"{m['mesh']}: active_sched missing {key}"
    assert sched["dense"]["cycles"] == m["serial"]["cycles"], \
        f"{m['mesh']}: sparse/dense cycle mismatch"
    assert sched["dense"]["transactions"] == m["serial"]["transactions"], \
        f"{m['mesh']}: sparse/dense transaction mismatch"
    assert 0 < sched["visited_component_cycles"] < sched["total_component_cycles"], \
        f"{m['mesh']}: sparse scheduling never engaged"
print(f"ntg-bench smoke: {len(r['points'])} points, "
      f"{len(r['big_mesh'])} big-mesh points OK")
PYEOF
rm -f "$BENCH_SMOKE_JSON"

# Zero-allocation steady state: the counting allocator asserts the
# ticked hot path performs no heap allocations after warmup — for the
# serial engine, the partitioned lockstep engine and the sparse
# O(active) scheduler (the latter two live in their own binaries so the
# global counter measures alone).
echo "==> alloc-count regression tests"
cargo test -q -p ntg-bench --features alloc-count --test alloc_count
cargo test -q -p ntg-bench --features alloc-count --test partition_alloc
cargo test -q -p ntg-bench --features alloc-count --test sched_alloc

# Persistent-store smoke: the same tiny campaign twice against a scratch
# store — the second run must pull every artifact from disk (zero
# builds) and write byte-identical results.
echo "==> store smoke: warm rerun hits the store"
STORE_SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$STORE_SMOKE_DIR"' EXIT
SWEEP="timeout 120 ./target/release/ntg-sweep --workloads mp_matrix:8 --cores 2 --fabrics amba --masters cpu,tg --quiet --store $STORE_SMOKE_DIR/store"
$SWEEP --out "$STORE_SMOKE_DIR/cold.jsonl" | grep -q "traces 1 built"
$SWEEP --out "$STORE_SMOKE_DIR/warm.jsonl" | grep -q "traces 0 built"
cmp "$STORE_SMOKE_DIR/cold.jsonl" "$STORE_SMOKE_DIR/warm.jsonl"

# Shard smoke: two shard processes sharing the store, merged back —
# byte-identical to the single-process file above.
echo "==> store smoke: shard + merge reproduces the single run"
$SWEEP --out "$STORE_SMOKE_DIR/sharded.jsonl" --shard 1/2 > /dev/null
$SWEEP --out "$STORE_SMOKE_DIR/sharded.jsonl" --shard 2/2 > /dev/null
timeout 60 ./target/release/ntg-sweep merge --out "$STORE_SMOKE_DIR/sharded.jsonl" \
    "$STORE_SMOKE_DIR/sharded.jsonl.shard-1-of-2" \
    "$STORE_SMOKE_DIR/sharded.jsonl.shard-2-of-2" > /dev/null
cmp "$STORE_SMOKE_DIR/sharded.jsonl" "$STORE_SMOKE_DIR/cold.jsonl"

# Report smoke: ntg-report over the checked-in mini-campaign must
# reproduce the golden markdown/CSVs byte-for-byte (the golden tests
# assert the same through the library; this drives the actual CLI), and
# the Figure 2 timeline export must be valid Chrome trace_event JSON.
echo "==> report smoke: ntg-report reproduces the goldens"
REPORT_SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$STORE_SMOKE_DIR" "$REPORT_SMOKE_DIR"' EXIT
timeout 60 ./target/release/ntg-report crates/report/tests/data/mini.jsonl \
    --md "$REPORT_SMOKE_DIR/mini.md" --csv "$REPORT_SMOKE_DIR" 2> /dev/null
cmp "$REPORT_SMOKE_DIR/mini.md" crates/report/tests/golden/mini.md
for f in table2 rankings pareto saturation; do
    cmp "$REPORT_SMOKE_DIR/$f.csv" "crates/report/tests/golden/$f.csv"
done

# Synthetic smoke: a tiny λ-sweep on the ideal interconnect must be
# deterministic (two runs, byte-identical canonical files) and the
# report CLI must reproduce the checked-in synthetic goldens from the
# checked-in synthetic mini-campaign.
echo "==> synthetic smoke: deterministic lambda-sweep + golden report"
SYN_SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$STORE_SMOKE_DIR" "$REPORT_SMOKE_DIR" "$SYN_SMOKE_DIR"' EXIT
SYNSWEEP="timeout 120 ./target/release/ntg-sweep --workloads synthetic:32 \
    --cores 2 --fabrics ideal --masters synthetic --patterns uniform,neighbor \
    --shapes bernoulli --rates 0.05,0.2 --no-store --quiet"
$SYNSWEEP --out "$SYN_SMOKE_DIR/a.jsonl" > /dev/null
$SYNSWEEP --out "$SYN_SMOKE_DIR/b.jsonl" > /dev/null
cmp "$SYN_SMOKE_DIR/a.jsonl" "$SYN_SMOKE_DIR/b.jsonl"
grep -q '"offered_rate":0\.' "$SYN_SMOKE_DIR/a.jsonl"
timeout 60 ./target/release/ntg-report crates/report/tests/data/synmini.jsonl \
    --md "$SYN_SMOKE_DIR/report.md" --csv "$SYN_SMOKE_DIR" 2> /dev/null
cmp "$SYN_SMOKE_DIR/report.md" crates/report/tests/golden/synmini/report.md
cmp "$SYN_SMOKE_DIR/saturation.csv" crates/report/tests/golden/synmini/saturation.csv

# Partition smoke: one mesh campaign run serially and with four-way
# intra-run partitioning — the canonical file and the metrics sidecar
# must be byte-identical (partitioning is a pure wall-time knob). The
# spec exercises both new axes: an explicit `xpipes:WxH` fabric and the
# `--mesh-sizes` append.
echo "==> partition smoke: --sim-threads 4 is byte-identical"
PART_SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$STORE_SMOKE_DIR" "$REPORT_SMOKE_DIR" "$SYN_SMOKE_DIR" "$PART_SMOKE_DIR"' EXIT
PSWEEP="timeout 300 ./target/release/ntg-sweep --workloads synthetic:48 \
    --cores 4 --fabrics xpipes:4x4 --mesh-sizes 6x6 --masters synthetic \
    --patterns transpose --shapes bernoulli --rates 0.1 --no-store --quiet"
$PSWEEP --out "$PART_SMOKE_DIR/serial.jsonl" --sim-threads 1 > /dev/null
$PSWEEP --out "$PART_SMOKE_DIR/banded.jsonl" --sim-threads 4 > /dev/null
cmp "$PART_SMOKE_DIR/serial.jsonl" "$PART_SMOKE_DIR/banded.jsonl"
# The timings sidecar is allowed to differ (it records sim_threads and
# wall time); the metrics sidecar carries simulation results only.
cmp "$PART_SMOKE_DIR/serial.jsonl.metrics.jsonl" "$PART_SMOKE_DIR/banded.jsonl.metrics.jsonl"

# Active-sched smoke: the same mesh campaign with the wake wheel
# disabled via the env escape hatch must write byte-identical canonical
# and metrics files — O(active) scheduling is a pure wall-time knob,
# exactly like skipping and partitioning (the timings sidecar may
# differ: it records the visited/total component-cycle diagnostics).
echo "==> active-sched smoke: NTG_NO_ACTIVE_SCHED=1 is byte-identical"
NTG_NO_ACTIVE_SCHED=1 $PSWEEP --out "$PART_SMOKE_DIR/dense.jsonl" --sim-threads 4 > /dev/null
cmp "$PART_SMOKE_DIR/banded.jsonl" "$PART_SMOKE_DIR/dense.jsonl"
cmp "$PART_SMOKE_DIR/banded.jsonl.metrics.jsonl" "$PART_SMOKE_DIR/dense.jsonl.metrics.jsonl"

echo "==> report smoke: figure2 timelines parse as JSON"
timeout 120 ./target/release/figure2 "$REPORT_SMOKE_DIR" > /dev/null
python3 - "$REPORT_SMOKE_DIR" <<'PYEOF'
import json, sys, os
for name in ("figure2a.trace.json", "figure2b.trace.json"):
    doc = json.load(open(os.path.join(sys.argv[1], name)))
    assert doc["displayTimeUnit"] == "ns", name
    events = doc["traceEvents"]
    assert any(e["ph"] == "X" for e in events), f"{name}: no transactions"
    assert any(e["ph"] == "M" for e in events), f"{name}: no track names"
print("figure2 timelines OK")
PYEOF

# Campaign-service smoke: an ntg-serve daemon on an ephemeral loopback
# port, a 12-job campaign submitted / watched / fetched through the
# ntg-sweep client — the fetched canonical file must be byte-identical
# to a local run of the same spec. Then the tiered store: a cold run
# publishes every artifact to the daemon, a warm run from an empty
# local store rebuilds nothing (the remote counters prove it).
echo "==> serve smoke: submit/watch/fetch matches local run"
SERVE_SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$STORE_SMOKE_DIR" "$REPORT_SMOKE_DIR" "$SYN_SMOKE_DIR" "$PART_SMOKE_DIR" "$SERVE_SMOKE_DIR"; kill "${SERVE_PID:-0}" 2> /dev/null || true' EXIT
./target/release/ntg-serve --listen 127.0.0.1:0 --data "$SERVE_SMOKE_DIR/data" \
    --workers 2 --addr-file "$SERVE_SMOKE_DIR/addr" --quiet > /dev/null &
SERVE_PID=$!
for _ in $(seq 100); do [ -s "$SERVE_SMOKE_DIR/addr" ] && break; sleep 0.1; done
ADDR=$(cat "$SERVE_SMOKE_DIR/addr")
SPEC_AXES="--workloads mp_matrix:8,cacheloop:500 --cores 2 --fabrics amba,xpipes \
    --masters cpu,tg,stochastic"
timeout 300 ./target/release/ntg-sweep $SPEC_AXES --no-store --quiet \
    --out "$SERVE_SMOKE_DIR/local.jsonl" > /dev/null
timeout 60 ./target/release/ntg-sweep submit --server "$ADDR" $SPEC_AXES \
    > "$SERVE_SMOKE_DIR/submit.txt"
JOB=$(sed -n 's/^job \([0-9a-f]*\):.*/\1/p' "$SERVE_SMOKE_DIR/submit.txt")
timeout 300 ./target/release/ntg-sweep watch --server "$ADDR" "$JOB" > /dev/null
timeout 60 ./target/release/ntg-sweep fetch --server "$ADDR" "$JOB" \
    --out "$SERVE_SMOKE_DIR/fetched.jsonl" > /dev/null
cmp "$SERVE_SMOKE_DIR/fetched.jsonl" "$SERVE_SMOKE_DIR/local.jsonl"
timeout 60 ./target/release/ntg-sweep fetch --server "$ADDR" "$JOB" --view table2 \
    | grep -q mp_matrix

echo "==> serve smoke: warm remote store rebuilds nothing"
RSWEEP="timeout 300 ./target/release/ntg-sweep $SPEC_AXES --quiet --remote $ADDR"
$RSWEEP --store "$SERVE_SMOKE_DIR/store-a" --out "$SERVE_SMOKE_DIR/cold.jsonl" \
    | grep -q "remote 0 hits / 4 misses / 4 published / 0 errors"
$RSWEEP --store "$SERVE_SMOKE_DIR/store-b" --out "$SERVE_SMOKE_DIR/warm.jsonl" \
    > "$SERVE_SMOKE_DIR/warm.txt"
grep -q "remote 4 hits / 0 misses / 0 published / 0 errors" "$SERVE_SMOKE_DIR/warm.txt"
grep -q "traces 0 built" "$SERVE_SMOKE_DIR/warm.txt"
grep -q "TG binaries 0 built" "$SERVE_SMOKE_DIR/warm.txt"
cmp "$SERVE_SMOKE_DIR/cold.jsonl" "$SERVE_SMOKE_DIR/warm.jsonl"
cmp "$SERVE_SMOKE_DIR/cold.jsonl" "$SERVE_SMOKE_DIR/local.jsonl"
timeout 60 ./target/release/ntg-sweep store stats --store "$SERVE_SMOKE_DIR/store-b" \
    | grep -q "4 entries"
kill "$SERVE_PID"
wait "$SERVE_PID" 2> /dev/null || true

echo "CI OK"
