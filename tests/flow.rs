//! End-to-end integration tests of the complete paper flow:
//! reference CPU simulation → trace collection → translation →
//! assembly → TG replay, checking cycle accuracy.

use ntg::cpu::isa::{R1, R2, R3, R4};
use ntg::cpu::Asm;
use ntg::platform::{mem_map, InterconnectChoice, PlatformBuilder};
use ntg::tg::{assemble, TraceTranslator, TranslationMode};

/// A single-core program: compute loop (cache resident), stores and
/// loads to shared memory, a final handshake through a semaphore.
fn busy_program(core: usize, iterations: u16) -> ntg::cpu::Program {
    let mut a = Asm::new();
    // Compute loop.
    a.li(R1, 0);
    a.movi(R2, iterations);
    a.label("loop");
    a.addi(R1, R1, 1);
    a.bne(R1, R2, "loop");
    // Shared-memory traffic.
    a.li(R3, mem_map::SHARED_BASE + (core as u32) * 16);
    a.stw(R1, R3, 0);
    a.ldw(R4, R3, 0);
    a.stw(R4, R3, 4);
    // Semaphore acquire (TAS poll) + release.
    a.li(R3, mem_map::semaphore(0));
    a.li(R2, 1);
    a.label("acq");
    a.ldw(R4, R3, 0);
    a.bne(R4, R2, "acq");
    a.stw(R2, R3, 0);
    a.halt();
    a.assemble(mem_map::private_base(core)).unwrap()
}

/// Runs the reference, translates, replays with TGs on `replay_choice`,
/// and returns (reference cycles, TG cycles).
fn reference_and_replay(
    cores: usize,
    trace_choice: InterconnectChoice,
    replay_choice: InterconnectChoice,
) -> (u64, u64) {
    let mut b = PlatformBuilder::new();
    b.interconnect(trace_choice).tracing(true);
    for core in 0..cores {
        b.add_cpu(busy_program(core, 200));
    }
    let mut reference = b.build().expect("build reference");
    let ref_report = reference.run(10_000_000);
    assert!(ref_report.completed, "reference must complete");
    assert!(ref_report.faults.is_empty(), "{:?}", ref_report.faults);

    let translator = TraceTranslator::new(reference.translator_config(TranslationMode::Reactive));
    let mut b = PlatformBuilder::new();
    b.interconnect(replay_choice);
    for core in 0..cores {
        let trace = reference.trace(core).expect("tracing was on");
        let program = translator.translate(&trace).expect("translate");
        b.add_tg(assemble(&program).expect("assemble"));
    }
    let mut replay = b.build().expect("build replay");
    let tg_report = replay.run(10_000_000);
    assert!(tg_report.completed, "TG replay must complete");
    assert!(tg_report.faults.is_empty(), "{:?}", tg_report.faults);

    (
        ref_report.execution_time().expect("all cores halted"),
        tg_report.execution_time().expect("all TGs halted"),
    )
}

fn error_pct(reference: u64, tg: u64) -> f64 {
    (tg as f64 - reference as f64).abs() / reference as f64 * 100.0
}

#[test]
fn single_core_tg_replay_is_cycle_accurate() {
    let (r, t) = reference_and_replay(1, InterconnectChoice::Amba, InterconnectChoice::Amba);
    // A handful of zero-gap address-change transitions cost the TG one
    // SetRegister cycle each (the paper's "minimal timing mismatches");
    // on this deliberately tiny program they are a larger fraction than
    // on any real workload.
    assert!(
        error_pct(r, t) < 1.5,
        "single-core error too large: ref={r} tg={t}"
    );
}

#[test]
fn two_core_contended_replay_stays_accurate() {
    let (r, t) = reference_and_replay(2, InterconnectChoice::Amba, InterconnectChoice::Amba);
    assert!(
        error_pct(r, t) < 2.0,
        "two-core error too large: ref={r} tg={t}"
    );
}

#[test]
fn four_core_contended_replay_stays_accurate() {
    let (r, t) = reference_and_replay(4, InterconnectChoice::Amba, InterconnectChoice::Amba);
    assert!(
        error_pct(r, t) < 2.0,
        "four-core error too large: ref={r} tg={t}"
    );
}

#[test]
fn tg_programs_are_interconnect_invariant() {
    // The paper's first experiment: traces collected on two different
    // interconnects translate to identical .tgp programs.
    let collect = |choice: InterconnectChoice| {
        let mut b = PlatformBuilder::new();
        b.interconnect(choice).tracing(true);
        for core in 0..2 {
            b.add_cpu(busy_program(core, 100));
        }
        let mut p = b.build().unwrap();
        let report = p.run(10_000_000);
        assert!(report.completed);
        let translator = TraceTranslator::new(p.translator_config(TranslationMode::Reactive));
        (0..2)
            .map(|c| translator.translate(&p.trace(c).unwrap()).unwrap())
            .collect::<Vec<_>>()
    };
    let on_amba = collect(InterconnectChoice::Amba);
    let on_xpipes = collect(InterconnectChoice::Xpipes);
    for (core, (a, x)) in on_amba.iter().zip(&on_xpipes).enumerate() {
        assert_eq!(
            ntg::tg::tgp::to_tgp(a),
            ntg::tg::tgp::to_tgp(x),
            "core {core}: .tgp differs between AMBA and xpipes traces"
        );
    }
}

#[test]
fn traces_collected_on_ideal_fabric_also_translate_identically() {
    // §6: "such collection could be performed on top of a transactional
    // fabric model" — the ideal interconnect plays that role.
    let collect = |choice: InterconnectChoice| {
        let mut b = PlatformBuilder::new();
        b.interconnect(choice).tracing(true);
        b.add_cpu(busy_program(0, 50));
        let mut p = b.build().unwrap();
        assert!(p.run(1_000_000).completed);
        let translator = TraceTranslator::new(p.translator_config(TranslationMode::Reactive));
        translator.translate(&p.trace(0).unwrap()).unwrap()
    };
    assert_eq!(
        collect(InterconnectChoice::Ideal),
        collect(InterconnectChoice::Amba)
    );
}

#[test]
fn replay_works_on_every_interconnect() {
    for replay in [
        InterconnectChoice::Amba,
        InterconnectChoice::Crossbar,
        InterconnectChoice::Xpipes,
        InterconnectChoice::Ideal,
    ] {
        let (r, t) = reference_and_replay(2, InterconnectChoice::Amba, replay);
        assert!(r > 0 && t > 0, "{replay}: degenerate cycle counts");
    }
}

#[test]
fn long_compute_heavy_program_is_nearly_exact() {
    // Compute gaps between transactions let the translator repay any
    // setup-cycle debt, so the error amortises towards zero — this is
    // why the paper's 6.6M-cycle SP matrix shows 0.00% error.
    let mut a = Asm::new();
    a.li(R3, mem_map::SHARED_BASE);
    a.li(R1, 0);
    a.movi(R2, 40);
    a.label("outer");
    a.addi(R1, R1, 1);
    // Inner compute burns cycles between memory transactions.
    a.li(R4, 0);
    a.label("inner");
    a.addi(R4, R4, 1);
    a.slti(ntg::cpu::isa::R5, R4, 25);
    a.bne(ntg::cpu::isa::R5, ntg::cpu::isa::R0, "inner");
    a.stw(R1, R3, 0);
    a.ldw(R4, R3, 4);
    a.bne(R1, R2, "outer");
    a.halt();
    let program = a.assemble(mem_map::private_base(0)).unwrap();

    let mut b = PlatformBuilder::new();
    b.interconnect(InterconnectChoice::Amba).tracing(true);
    b.add_cpu(program);
    let mut reference = b.build().unwrap();
    let ref_report = reference.run(10_000_000);
    assert!(ref_report.completed);

    let translator = TraceTranslator::new(reference.translator_config(TranslationMode::Reactive));
    let tgp = translator.translate(&reference.trace(0).unwrap()).unwrap();
    let mut b = PlatformBuilder::new();
    b.interconnect(InterconnectChoice::Amba);
    b.add_tg(assemble(&tgp).unwrap());
    let mut replay = b.build().unwrap();
    let tg_report = replay.run(10_000_000);
    assert!(tg_report.completed);

    let r = ref_report.execution_time().unwrap();
    let t = tg_report.execution_time().unwrap();
    assert!(
        error_pct(r, t) < 0.2,
        "compute-heavy error too large: ref={r} tg={t}"
    );
}
