//! The paper's hardware vision: a NoC *test chip* populated entirely by
//! traffic generators — master TGs in the core sockets and slave TGs in
//! the memory sockets ("allows a straightforward path towards deployment
//! of the TG device on a silicon NoC test chip", §1; slave TG entities,
//! §4).
//!
//! This test hand-wires such a chip around the AMBA bus model: programs
//! translated from a real CPU reference run drive master TGs, while
//! [`TgSlave`]s stand in for every memory and the semaphore bank. The
//! all-TG chip must reproduce the reference timing just as well as the
//! simulation-grade replay does.

use std::sync::Arc;

use ntg::cpu::isa::{R0, R1, R2, R3, R4};
use ntg::cpu::Asm;
use ntg::noc::AmbaBus;
use ntg::ocp::{LinkArena, MasterId};
use ntg::platform::{mem_map, InterconnectChoice, PlatformBuilder};
use ntg::sim::Component;
use ntg::tg::{assemble, TgCore, TgSlave, TgSlaveBehavior, TraceTranslator, TranslationMode};

/// Two contending cores: compute, then fight over a semaphore, then
/// write a result word.
fn program(core: usize) -> ntg::cpu::Program {
    let mut a = Asm::new();
    a.li(R4, 30 + core as u32 * 17);
    a.label("spin");
    a.addi(R4, R4, -1);
    a.bne(R4, R0, "spin");
    a.li(R2, mem_map::semaphore(0));
    a.li(R1, 1);
    a.align(4);
    a.label("acq");
    a.ldw(R3, R2, 0);
    a.bne(R3, R1, "acq");
    a.li(R4, 60);
    a.label("hold");
    a.addi(R4, R4, -1);
    a.bne(R4, R0, "hold");
    a.stw(R1, R2, 0); // release
    a.li(R2, mem_map::SHARED_BASE + core as u32 * 4);
    a.li(R3, 0xD0 + core as u32);
    a.stw(R3, R2, 0);
    a.halt();
    a.assemble(mem_map::private_base(core)).unwrap()
}

#[test]
fn all_tg_test_chip_matches_the_reference() {
    const CORES: usize = 2;
    // 1. Reference simulation on the real platform, traced.
    let mut b = PlatformBuilder::new();
    b.interconnect(InterconnectChoice::Amba).tracing(true);
    for core in 0..CORES {
        b.add_cpu(program(core));
    }
    let mut reference = b.build().unwrap();
    let ref_report = reference.run(1_000_000);
    assert!(ref_report.completed);
    let ref_cycles = ref_report.execution_time().unwrap();

    let translator = TraceTranslator::new(reference.translator_config(TranslationMode::Reactive));
    let images: Vec<_> = (0..CORES)
        .map(|c| assemble(&translator.translate(&reference.trace(c).unwrap()).unwrap()).unwrap())
        .collect();

    // 2. Hand-wire the all-TG chip: master TGs + slave TGs on an AMBA
    //    bus with the same memory map.
    let map =
        Arc::new(ntg::platform::mem_map::build_map(CORES, 0x1_0000, 0x1_0000, 0x1000, 64).unwrap());
    let mut net = LinkArena::new();
    let mut masters = Vec::new();
    let mut net_masters = Vec::new();
    for (i, image) in images.into_iter().enumerate() {
        let (m, s) = net.channel(format!("tg{i}"), MasterId(i as u16));
        net_masters.push(s);
        masters.push(TgCore::new(format!("tg{i}"), m, image));
    }
    let mut slaves: Vec<TgSlave> = Vec::new();
    let mut net_slaves = Vec::new();
    // Private "memories": the master TGs never depend on read data from
    // their private ranges (instruction fetches were absorbed into the
    // trace as bursts), so cheap dummy responders suffice — exactly the
    // paper's entity 3.
    for core in 0..CORES {
        let (m, s) = net.channel(format!("priv{core}"), MasterId(0));
        net_slaves.push(m);
        slaves.push(TgSlave::new(
            format!("priv{core}"),
            mem_map::private_base(core),
            0x1_0000,
            TgSlaveBehavior::Dummy { pattern: 0 },
            s,
        ));
    }
    // Shared memory and sync flags need real storage (entity 2), and the
    // semaphore bank needs test-and-set semantics, or the reactive
    // Semchk loops would misbehave.
    let (m, s) = net.channel("shared", MasterId(0));
    net_slaves.push(m);
    slaves.push(TgSlave::new(
        "shared",
        mem_map::SHARED_BASE,
        0x1_0000,
        TgSlaveBehavior::Memory,
        s,
    ));
    let (m, s) = net.channel("sync", MasterId(0));
    net_slaves.push(m);
    slaves.push(TgSlave::new(
        "sync",
        mem_map::SYNC_BASE,
        0x1000,
        TgSlaveBehavior::Memory,
        s,
    ));
    let (m, s) = net.channel("sem", MasterId(0));
    net_slaves.push(m);
    slaves.push(TgSlave::new(
        "sem",
        mem_map::SEM_BASE,
        64 * 4,
        TgSlaveBehavior::Semaphore,
        s,
    ));
    let mut bus = AmbaBus::new("amba", net_masters, net_slaves, map);

    // 3. Run the chip.
    let mut chip_cycles = None;
    for now in 0..1_000_000u64 {
        for tg in &mut masters {
            tg.tick(now, &mut net);
        }
        bus.tick(now, &mut net);
        for sl in &mut slaves {
            sl.tick(now, &mut net);
        }
        if masters.iter().all(TgCore::halted) {
            chip_cycles = masters.iter().map(|t| t.halt_cycle().unwrap()).max();
            break;
        }
    }
    let chip_cycles = chip_cycles.expect("test chip must complete");
    for tg in &masters {
        assert!(tg.fault().is_none(), "{:?}", tg.fault());
    }

    // 4. The chip's timing matches the reference (same bus, same slave
    //    timing model).
    let err = (chip_cycles as f64 - ref_cycles as f64).abs() / ref_cycles as f64 * 100.0;
    assert!(
        err < 2.0,
        "test chip diverges: ref {ref_cycles}, chip {chip_cycles} ({err:.2}%)"
    );

    // 5. The shared-memory slave TG holds the replayed result words.
    let shared = &slaves[CORES];
    assert_eq!(shared.peek(mem_map::SHARED_BASE), 0xD0);
    assert_eq!(shared.peek(mem_map::SHARED_BASE + 4), 0xD1);
    // The semaphore ends up released.
    let sem = &slaves[CORES + 2];
    assert_eq!(sem.peek(mem_map::SEM_BASE), 1);
}
