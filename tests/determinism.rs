//! Whole-pipeline determinism: the entire evaluation methodology rests
//! on identical runs producing identical cycle counts and byte-identical
//! artifacts.

use ntg::platform::InterconnectChoice;
use ntg::tg::{assemble, tgp, TraceTranslator, TranslationMode};
use ntg::workloads::Workload;

const MAX: u64 = 200_000_000;

fn workloads() -> Vec<(Workload, usize)> {
    vec![
        (Workload::SpMatrix { n: 6 }, 1),
        (Workload::MpMatrix { n: 8 }, 3),
        (Workload::Des { blocks_per_core: 2 }, 2),
    ]
}

#[test]
fn repeated_reference_runs_are_cycle_identical() {
    for (w, cores) in workloads() {
        let run = || {
            let mut p = w
                .build_platform(cores, InterconnectChoice::Amba, false)
                .expect("build");
            let r = p.run(MAX);
            assert!(r.completed);
            (r.cycles, r.finish_cycles.clone())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{}: nondeterministic reference run", w.name());
    }
}

#[test]
fn repeated_traced_runs_produce_byte_identical_artifacts() {
    for (w, cores) in workloads() {
        let artifacts = || {
            let mut p = w
                .build_platform(cores, InterconnectChoice::Amba, true)
                .expect("build");
            assert!(p.run(MAX).completed);
            let translator = TraceTranslator::new(p.translator_config(TranslationMode::Reactive));
            (0..cores)
                .map(|c| {
                    let trace = p.trace(c).expect("traced");
                    let program = translator.translate(&trace).expect("translate");
                    let image = assemble(&program).expect("assemble");
                    (trace.to_trc(), tgp::to_tgp(&program), image.to_bytes())
                })
                .collect::<Vec<_>>()
        };
        let a = artifacts();
        let b = artifacts();
        assert_eq!(a, b, "{}: artifacts differ across identical runs", w.name());
    }
}

#[test]
fn tg_replay_is_cycle_identical_across_runs() {
    let w = Workload::MpMatrix { n: 8 };
    let cores = 3;
    let mut p = w
        .build_platform(cores, InterconnectChoice::Amba, true)
        .expect("build");
    assert!(p.run(MAX).completed);
    let translator = TraceTranslator::new(p.translator_config(TranslationMode::Reactive));
    let images: Vec<_> = (0..cores)
        .map(|c| assemble(&translator.translate(&p.trace(c).unwrap()).unwrap()).unwrap())
        .collect();
    let replay = || {
        let mut p = w
            .build_tg_platform(images.clone(), InterconnectChoice::Xpipes, false)
            .expect("build");
        let r = p.run(MAX);
        assert!(r.completed);
        r.finish_cycles.clone()
    };
    assert_eq!(replay(), replay());
}

#[test]
fn interconnect_choice_changes_cycles_but_not_results() {
    // Different fabrics must change timing (otherwise the DSE is vacuous)
    // while the memory results stay golden.
    let w = Workload::MpMatrix { n: 8 };
    let cores = 3;
    let mut cycle_counts = Vec::new();
    for fabric in [
        InterconnectChoice::Amba,
        InterconnectChoice::Crossbar,
        InterconnectChoice::Xpipes,
    ] {
        let mut p = w.build_platform(cores, fabric, false).expect("build");
        let r = p.run(MAX);
        assert!(r.completed);
        w.verify(&p, cores).expect("golden result on every fabric");
        cycle_counts.push(r.execution_time().unwrap());
    }
    cycle_counts.dedup();
    assert!(
        cycle_counts.len() > 1,
        "all fabrics produced identical timing — implausible"
    );
}
