//! Per-workload end-to-end tests: every Table 2 benchmark runs the full
//! reference → translate → TG-replay flow at test scale, with
//! golden-model verification of the replayed memory image, cycle-error
//! bounds, and the interconnect-invariance property.

use ntg::platform::InterconnectChoice;
use ntg::tg::{assemble, tgp, TraceTranslator, TranslationMode};
use ntg::workloads::Workload;

const MAX: u64 = 200_000_000;

fn workloads() -> Vec<(Workload, usize)> {
    vec![
        (Workload::SpMatrix { n: 6 }, 1),
        (Workload::Cacheloop { iterations: 500 }, 3),
        (Workload::MpMatrix { n: 8 }, 3),
        (Workload::Des { blocks_per_core: 2 }, 3),
    ]
}

/// Reference run → images + reference cycles (verifying golden results).
fn reference(
    w: Workload,
    cores: usize,
    fabric: InterconnectChoice,
) -> (Vec<ntg::tg::TgImage>, u64) {
    let mut p = w.build_platform(cores, fabric, true).expect("build");
    let report = p.run(MAX);
    assert!(report.completed, "{} reference incomplete", w.name());
    assert!(report.faults.is_empty(), "{:?}", report.faults);
    w.verify(&p, cores).expect("reference golden result");
    let translator = TraceTranslator::new(p.translator_config(TranslationMode::Reactive));
    let images = (0..cores)
        .map(|c| {
            assemble(
                &translator
                    .translate(&p.trace(c).expect("traced"))
                    .expect("translate"),
            )
            .expect("assemble")
        })
        .collect();
    (images, report.execution_time().expect("halted"))
}

#[test]
fn every_workload_replays_accurately_on_amba() {
    for (w, cores) in workloads() {
        let (images, ref_cycles) = reference(w, cores, InterconnectChoice::Amba);
        let mut p = w
            .build_tg_platform(images, InterconnectChoice::Amba, false)
            .expect("build TG platform");
        let report = p.run(MAX);
        assert!(report.completed, "{} TG replay incomplete", w.name());
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        // The TGs must reproduce the exact memory results, not just the
        // timing: replayed writes carry the recorded data.
        w.verify(&p, cores)
            .unwrap_or_else(|e| panic!("{} TG golden mismatch: {e}", w.name()));
        let tg_cycles = report.execution_time().expect("halted");
        let err = (tg_cycles as f64 - ref_cycles as f64).abs() / ref_cycles as f64 * 100.0;
        assert!(
            err < 2.0,
            "{} {cores}P error {err:.2}% (ref {ref_cycles}, tg {tg_cycles})",
            w.name()
        );
    }
}

#[test]
fn every_workload_translates_identically_across_fabrics() {
    // The paper's validation experiment at test scale, for all four
    // benchmarks.
    for (w, cores) in workloads() {
        let programs_on = |fabric: InterconnectChoice| -> Vec<String> {
            let mut p = w.build_platform(cores, fabric, true).expect("build");
            assert!(p.run(MAX).completed);
            let translator = TraceTranslator::new(p.translator_config(TranslationMode::Reactive));
            (0..cores)
                .map(|c| {
                    tgp::to_tgp(
                        &translator
                            .translate(&p.trace(c).expect("traced"))
                            .expect("translate"),
                    )
                })
                .collect()
        };
        let amba = programs_on(InterconnectChoice::Amba);
        let xpipes = programs_on(InterconnectChoice::Xpipes);
        assert_eq!(amba, xpipes, "{}: .tgp differs across fabrics", w.name());
    }
}

#[test]
fn every_workload_replays_on_foreign_fabrics() {
    // TGs traced on AMBA must run to completion — with correct memory
    // results — on the other interconnects (the actual DSE scenario).
    for (w, cores) in workloads() {
        let (images, _) = reference(w, cores, InterconnectChoice::Amba);
        for fabric in [InterconnectChoice::Crossbar, InterconnectChoice::Xpipes] {
            let mut p = w
                .build_tg_platform(images.clone(), fabric, false)
                .expect("build TG platform");
            let report = p.run(MAX);
            assert!(
                report.completed,
                "{} on {fabric}: replay incomplete",
                w.name()
            );
            w.verify(&p, cores)
                .unwrap_or_else(|e| panic!("{} on {fabric}: {e}", w.name()));
        }
    }
}

#[test]
fn tg_is_never_slower_to_simulate_for_nontrivial_runs() {
    // Wall-clock sanity at test scale: the TG platform should not lose
    // to the CPU platform (the paper's entire premise). Take the best of
    // three runs each to suppress scheduler noise on loaded hosts.
    let w = Workload::MpMatrix { n: 16 };
    let cores = 4;
    let (images, _) = reference(w, cores, InterconnectChoice::Amba);
    let best = |f: &dyn Fn() -> std::time::Duration| (0..3).map(|_| f()).min().expect("three runs");
    let arm = best(&|| {
        let mut p = w
            .build_platform(cores, InterconnectChoice::Amba, false)
            .expect("build");
        let r = p.run(MAX);
        assert!(r.completed);
        r.wall_time
    });
    let tg = best(&|| {
        let mut p = w
            .build_tg_platform(images.clone(), InterconnectChoice::Amba, false)
            .expect("build");
        let r = p.run(MAX);
        assert!(r.completed);
        r.wall_time
    });
    assert!(
        tg.as_secs_f64() < arm.as_secs_f64() * 1.2,
        "TG simulation not competitive: ARM {arm:?} vs TG {tg:?}"
    );
}

#[test]
fn test_scale_helper_matches_flow() {
    // The library's suggested test sizes run the full flow too.
    for base in [
        Workload::SpMatrix { n: 32 },
        Workload::Cacheloop { iterations: 1 },
        Workload::MpMatrix { n: 32 },
        Workload::Des {
            blocks_per_core: 99,
        },
    ] {
        let w = base.test_scale();
        let cores = 2.min(w.paper_core_counts()[0]).max(1);
        let (images, _) = reference(w, cores, InterconnectChoice::Amba);
        assert_eq!(images.len(), cores);
    }
}

#[test]
fn clock_period_scales_trace_timestamps() {
    use ntg::sim::ClockConfig;
    let w = Workload::Cacheloop { iterations: 100 };
    let trace_with_period = |period: u64| {
        let mut b = ntg::platform::PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Amba)
            .clock(ClockConfig::new(period))
            .tracing(true);
        b.add_cpu(w.program(0, 1));
        let mut p = b.build().unwrap();
        assert!(p.run(MAX).completed);
        p.trace(0).unwrap()
    };
    let t5 = trace_with_period(5);
    let t10 = trace_with_period(10);
    assert_eq!(t5.period_ns, 5);
    assert_eq!(t10.period_ns, 10);
    // Same cycle schedule, scaled nanosecond stamps.
    assert_eq!(t5.events.len(), t10.events.len());
    for (a, b) in t5.events.iter().zip(&t10.events) {
        assert_eq!(a.at() * 2, b.at(), "timestamps must scale with the period");
    }
    assert_eq!(t5.halt_at.unwrap() * 2, t10.halt_at.unwrap());
    // And translation is period-independent in cycles: identical programs.
    let tr = ntg::tg::TraceTranslator::default();
    assert_eq!(
        tr.translate(&t5).unwrap().instrs().count(),
        tr.translate(&t10).unwrap().instrs().count()
    );
}
