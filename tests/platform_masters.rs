//! Platform-level tests for the non-CPU master kinds: plain TGs,
//! multitasking TG sockets and stochastic sources coexisting in one
//! system.

use ntg::platform::{mem_map, InterconnectChoice, MasterReport, PlatformBuilder};
use ntg::tg::{
    assemble, GapDistribution, StochasticConfig, TgProgram, TgReg, TgSymInstr, TimesliceConfig,
};

/// A tiny hand-built TG image: write `value`, read it back, halt.
fn writer_image(addr: u32, value: u32) -> ntg::tg::TgImage {
    let mut p = TgProgram::new(0);
    p.inits.push((TgReg::new(2), addr));
    p.inits.push((TgReg::new(3), value));
    p.push(TgSymInstr::Write(TgReg::new(2), TgReg::new(3)));
    p.push(TgSymInstr::Idle(5));
    p.push(TgSymInstr::Read(TgReg::new(2)));
    p.push(TgSymInstr::Halt);
    assemble(&p).expect("assemble")
}

#[test]
fn mixed_master_kinds_coexist() {
    // Socket 0: plain TG. Socket 1: multitasking TG (two tasks).
    // Socket 2: stochastic source. All on one AMBA bus.
    let mut b = PlatformBuilder::new();
    b.interconnect(InterconnectChoice::Amba);
    b.add_tg(writer_image(mem_map::SHARED_BASE, 0x111));
    b.add_tg_multitask(
        vec![
            writer_image(mem_map::SHARED_BASE + 8, 0x222),
            writer_image(mem_map::SHARED_BASE + 16, 0x333),
        ],
        TimesliceConfig {
            quantum: 30,
            switch_penalty: 5,
        },
    );
    b.add_stochastic(StochasticConfig {
        seed: 7,
        ranges: vec![(mem_map::SHARED_BASE + 0x1000, 0x100)],
        write_fraction: 0.5,
        burst_fraction: 0.1,
        gap: GapDistribution::Fixed { gap: 4 },
        transactions: 50,
    });
    let mut p = b.build().expect("build");
    let report = p.run(1_000_000);
    assert!(report.completed, "all master kinds must drain");
    assert!(report.faults.is_empty(), "{:?}", report.faults);

    assert_eq!(p.peek_shared(mem_map::SHARED_BASE), 0x111);
    assert_eq!(p.peek_shared(mem_map::SHARED_BASE + 8), 0x222);
    assert_eq!(p.peek_shared(mem_map::SHARED_BASE + 16), 0x333);

    // Reports carry the right per-kind statistics.
    match report.masters[0] {
        MasterReport::Tg(s) => assert_eq!(s.writes, 1),
        ref other => panic!("socket 0: {other:?}"),
    }
    match report.masters[1] {
        MasterReport::Tg(s) => assert_eq!(s.writes, 2, "both tasks wrote"),
        ref other => panic!("socket 1: {other:?}"),
    }
    match report.masters[2] {
        MasterReport::Stochastic { issued, errors } => {
            assert_eq!(issued, 50);
            assert_eq!(errors, 0);
        }
        ref other => panic!("socket 2: {other:?}"),
    }
    assert!(p.scheduler_stats(1).is_some());
    assert!(p.scheduler_stats(0).is_none());
}

#[test]
fn stochastic_sources_are_deterministic_in_a_platform() {
    let run = || {
        let mut b = PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Xpipes);
        for i in 0..3u64 {
            b.add_stochastic(StochasticConfig {
                seed: 100 + i,
                ranges: vec![(mem_map::SHARED_BASE, 0x400)],
                write_fraction: 0.3,
                burst_fraction: 0.2,
                gap: GapDistribution::Geometric { mean: 6 },
                transactions: 80,
            });
        }
        let mut p = b.build().expect("build");
        let r = p.run(1_000_000);
        assert!(r.completed);
        r.finish_cycles.clone()
    };
    assert_eq!(
        run(),
        run(),
        "seeded stochastic platform must be deterministic"
    );
}

#[test]
fn stochastic_load_scales_contention() {
    // Denser stochastic traffic (smaller gaps) must lengthen everyone's
    // completion on a shared bus.
    let time = |gap: u32| {
        let mut b = PlatformBuilder::new();
        b.interconnect(InterconnectChoice::Amba);
        for i in 0..4u64 {
            b.add_stochastic(StochasticConfig {
                seed: i,
                ranges: vec![(mem_map::SHARED_BASE, 0x400)],
                write_fraction: 0.5,
                burst_fraction: 0.0,
                gap: GapDistribution::Fixed { gap },
                transactions: 100,
            });
        }
        let mut p = b.build().expect("build");
        let r = p.run(1_000_000);
        assert!(r.completed);
        r.execution_time().unwrap()
    };
    let dense = time(1);
    let sparse = time(40);
    assert!(
        sparse > dense,
        "sparser traffic takes longer overall: dense={dense} sparse={sparse}"
    );
    // But dense traffic saturates the bus: throughput (transactions per
    // cycle) must be higher than sparse, completion per transaction
    // slower than the unloaded latency.
    assert!(dense > 400 * 4 / 2, "bus must serialise dense traffic");
}

#[test]
fn add_master_accepts_explicit_kinds() {
    use ntg::platform::MasterKind;
    let mut b = PlatformBuilder::new();
    b.interconnect(InterconnectChoice::Amba);
    b.add_master(MasterKind::Tg(writer_image(mem_map::SHARED_BASE + 0x40, 5)));
    let mut p = b.build().expect("build");
    assert!(p.run(100_000).completed);
    assert_eq!(p.peek_shared(mem_map::SHARED_BASE + 0x40), 5);
}

#[test]
fn workload_verify_rejects_an_unrun_platform() {
    use ntg::workloads::Workload;
    // Build but do not run: memory is still zeroed, so golden-model
    // verification must fail loudly rather than pass vacuously.
    let w = Workload::SpMatrix { n: 4 };
    let p = w
        .build_platform(1, InterconnectChoice::Amba, false)
        .expect("build");
    assert!(
        w.verify(&p, 1).is_err(),
        "verify must catch missing results"
    );
    let w = Workload::Des { blocks_per_core: 1 };
    let p = w
        .build_platform(1, InterconnectChoice::Amba, false)
        .expect("build");
    assert!(w.verify(&p, 1).is_err());
}
