//! Results of a platform run.

use std::time::Duration;

use ntg_core::TgStats;
use ntg_cpu::CpuStats;
use ntg_sim::{Cycle, LinkMetrics};

/// Per-master statistics, depending on what kind of master it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterReport {
    /// A CPU core's statistics.
    Cpu(CpuStats),
    /// A traffic generator's statistics.
    Tg(TgStats),
    /// A stochastic source: transactions issued.
    Stochastic {
        /// Transactions issued.
        issued: u64,
        /// Error responses received.
        errors: u64,
    },
    /// A synthetic traffic generator (pattern × temporal-shape masters
    /// from `ntg-workloads`): packet and state-residency counters.
    Synthetic {
        /// Packets fully injected (request accepted by the fabric).
        packets: u64,
        /// Scheduled injection cycle of the last issued packet — the end
        /// of the *offered* span. The schedule is a pure function of the
        /// seed, independent of back-pressure, so
        /// `packets / last_scheduled` measures offered load while
        /// `packets / halt_cycle` measures accepted throughput.
        last_scheduled: Cycle,
        /// Cycles spent waiting for the next scheduled injection slot.
        idle_cycles: u64,
        /// Cycles blocked on the interconnect (request outstanding).
        wait_cycles: u64,
    },
}

/// Opt-in observability summary collected when
/// [`Platform::enable_metrics`](crate::Platform::enable_metrics) was
/// called before the run.
///
/// Everything here is *diagnostic*, not canonical: like wall time and
/// the skip split, it is excluded from byte-reproducible campaign
/// output and may legitimately differ between cycle-skipping on/off
/// (windowed samples attribute a skipped stretch to its first cycle).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Cycles the fabric spent occupied carrying traffic (the
    /// numerator of a utilization figure; divide by `cycles`).
    pub fabric_utilization_cycles: u64,
    /// Lost arbitration rounds across the fabric.
    pub conflicts: u64,
    /// Number of grant-latency samples.
    pub grant_wait_count: u64,
    /// Sum of grant latencies in cycles.
    pub grant_wait_sum: u64,
    /// Worst observed grant latency in cycles (0 when no samples).
    pub grant_wait_max: u64,
    /// Per-master link counters, indexed by master.
    pub links: Vec<LinkMetrics>,
    /// Successful semaphore test-and-set acquisitions.
    pub sem_acquisitions: u64,
    /// Failed semaphore polls (the slave-contention signal of the
    /// paper's Figure 2(b)).
    pub sem_failed_polls: u64,
    /// Semaphore releases.
    pub sem_releases: u64,
    /// Width in cycles of each fabric-busy window below.
    pub busy_window_cycles: u64,
    /// Fabric-busy cycles per window — the time-resolved utilization
    /// curve (`ntg-report` renders saturation plots from this).
    pub busy_windows: Vec<u64>,
}

/// Diagnostics of a partitioned run
/// ([`Platform::run_with_threads`](crate::Platform::run_with_threads)
/// with an actual mesh split).
///
/// Everything here is host-timing territory — barrier stalls depend on
/// OS scheduling and are never deterministic. Like `wall_time`, these
/// numbers are excluded from byte-reproducible campaign output; the
/// benchmark harness reports them as a partition-imbalance signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionReport {
    /// How many row-band partitions (= worker threads) the run used.
    pub partitions: usize,
    /// Completed barrier crossings (three per lockstep round).
    pub barrier_crossings: u64,
    /// Total spin iterations burned waiting at barriers, summed over
    /// all workers — the partition-imbalance signal.
    pub barrier_stalls: u64,
    /// Whether the barrier ran in immediate-yield mode because the run
    /// asked for more worker threads than the host has logical CPUs
    /// (see [`ntg_sim::SpinBarrier::immediate_yield`]). Throughput
    /// numbers from an oversubscribed run measure the OS scheduler as
    /// much as the simulator.
    pub oversubscribed: bool,
}

/// The outcome of [`Platform::run`](crate::Platform::run).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Whether every master halted (and all traffic drained) before the
    /// cycle limit.
    pub completed: bool,
    /// Cycles actually simulated.
    pub cycles: Cycle,
    /// Each master's halt cycle (`None` if it never halted).
    pub finish_cycles: Vec<Option<Cycle>>,
    /// Host wall-clock time spent simulating.
    pub wall_time: Duration,
    /// Per-master execution statistics.
    pub masters: Vec<MasterReport>,
    /// Human-readable fault descriptions, one per faulted master.
    pub faults: Vec<String>,
    /// Total transactions the interconnect carried.
    pub transactions: u64,
    /// `(mean, max)` of the interconnect's characteristic latency metric
    /// in cycles, if the model records one.
    pub latency: Option<(f64, u64)>,
    /// Whether the TG images this run replayed were **reused** from a
    /// previously translated/assembled artifact instead of being
    /// re-translated for this run.
    ///
    /// `None` for runs without TG provenance information (plain CPU
    /// runs, directly built platforms); set by
    /// [`Platform::explore`](crate::Platform::explore) and by the
    /// `ntg-explore` campaign engine's TG artifact cache.
    pub tg_reused: Option<bool>,
    /// Cycles fast-forwarded by event-horizon skipping (zero when
    /// skipping is disabled). `skipped_cycles + ticked_cycles == cycles`.
    pub skipped_cycles: Cycle,
    /// Cycles simulated tick by tick.
    pub ticked_cycles: Cycle,
    /// Component-cycles actually visited: per ticked cycle, the dense
    /// engines count every component while the O(active) scheduler
    /// counts only the components it woke (plus the fabric). Diagnostic
    /// like the skip split — the sparse-visit numerator.
    pub visited_component_cycles: u64,
    /// `components × cycles` — the work a scan-everything engine would
    /// have done; denominator of the sparse-visit ratio.
    pub total_component_cycles: u64,
    /// Observability summary, present only when
    /// [`Platform::enable_metrics`](crate::Platform::enable_metrics)
    /// was called before the run.
    pub metrics: Option<MetricsReport>,
    /// Partitioned-run diagnostics, present only when
    /// [`Platform::run_with_threads`](crate::Platform::run_with_threads)
    /// actually split the mesh (serial runs and fallbacks report
    /// `None`). Diagnostic like `wall_time` — never part of canonical
    /// campaign output.
    pub partition: Option<PartitionReport>,
}

impl RunReport {
    /// The system completion time in cycles: the latest halt cycle.
    ///
    /// This is the "Cumulative Execution Time" column of the paper's
    /// Table 2.
    ///
    /// Returns `None` if any master never halted.
    pub fn execution_time(&self) -> Option<Cycle> {
        self.finish_cycles
            .iter()
            .copied()
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// `(offered, accepted)` injection rate in packets/cycle/master,
    /// aggregated over every synthetic master; `None` when the platform
    /// has no synthetic masters or they injected nothing.
    ///
    /// Offered load divides packets by the span of the *schedule* (which
    /// ignores back-pressure by construction); accepted throughput
    /// divides the same packets by the span actually needed to inject
    /// them — the completion time when the run finished, the simulated
    /// cycle bound otherwise. `accepted < offered` is the saturation
    /// signal: the fabric could not absorb the load as scheduled.
    pub fn synthetic_rates(&self) -> Option<(f64, f64)> {
        let mut masters = 0u64;
        let mut packets = 0u64;
        let mut offered_span: Cycle = 0;
        for m in &self.masters {
            if let MasterReport::Synthetic {
                packets: p,
                last_scheduled,
                ..
            } = m
            {
                masters += 1;
                packets += p;
                offered_span = offered_span.max(*last_scheduled);
            }
        }
        if masters == 0 || packets == 0 {
            return None;
        }
        let accepted_span = self.execution_time().unwrap_or(self.cycles);
        let per = |span: Cycle| packets as f64 / (masters as f64 * span.max(1) as f64);
        Some((
            per(offered_span + 1),
            per(accepted_span.max(offered_span) + 1),
        ))
    }

    /// Simulated cycles per wall-clock second — the throughput measure
    /// behind the paper's "Simulation Time" columns.
    pub fn cycles_per_second(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.cycles as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_time_is_max_halt() {
        let r = RunReport {
            completed: true,
            cycles: 120,
            finish_cycles: vec![Some(100), Some(110), Some(90)],
            wall_time: Duration::from_millis(10),
            masters: vec![],
            faults: vec![],
            transactions: 0,
            latency: None,
            tg_reused: None,
            skipped_cycles: 0,
            ticked_cycles: 120,
            visited_component_cycles: 0,
            total_component_cycles: 0,
            metrics: None,
            partition: None,
        };
        assert_eq!(r.execution_time(), Some(110));
    }

    #[test]
    fn execution_time_none_when_incomplete() {
        let r = RunReport {
            completed: false,
            cycles: 120,
            finish_cycles: vec![Some(100), None],
            wall_time: Duration::from_millis(10),
            masters: vec![],
            faults: vec![],
            transactions: 0,
            latency: None,
            tg_reused: None,
            skipped_cycles: 0,
            ticked_cycles: 120,
            visited_component_cycles: 0,
            total_component_cycles: 0,
            metrics: None,
            partition: None,
        };
        assert_eq!(r.execution_time(), None);
    }

    #[test]
    fn throughput_is_finite_for_nonzero_time() {
        let r = RunReport {
            completed: true,
            cycles: 1_000,
            finish_cycles: vec![],
            wall_time: Duration::from_millis(100),
            masters: vec![],
            faults: vec![],
            transactions: 0,
            latency: None,
            tg_reused: None,
            skipped_cycles: 0,
            ticked_cycles: 1_000,
            visited_component_cycles: 0,
            total_component_cycles: 0,
            metrics: None,
            partition: None,
        };
        assert!((r.cycles_per_second() - 10_000.0).abs() < 1.0);
    }
}
