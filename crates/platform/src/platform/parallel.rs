//! Partition-parallel execution: one platform, several worker threads.
//!
//! [`Platform::run_with_threads`] splits the ×pipes mesh into row bands
//! (see `XpipesNoc::partition_plan`), hands each band its masters,
//! routers, slave devices and the contiguous slice of the link arena
//! they communicate through, and advances every band in cycle lockstep.
//! The conservative synchronisation window is the minimum
//! cross-partition link latency — one cycle in this mesh (flits cross a
//! hop per cycle, channel writes become visible at `t + 1`) — so the
//! lockstep is per-cycle, in two barrier-separated phases:
//!
//! * **phase A** — each worker ticks its masters and runs its region's
//!   link stage, which moves flits between its own routers and exports
//!   boundary-crossing flits into the shared [`MeshBoundary`] slots;
//! * **phase B** — each worker imports the flits its neighbours
//!   exported, runs the switch + NI stages, ticks its slave devices,
//!   samples its metrics, and publishes its local status.
//!
//! The control thread (which also executes partition 0, so `N` threads
//! means exactly `N` OS threads) replicates the serial run loop's
//! global decisions — quiesce, event-horizon skip, poll backoff, tick —
//! from the [`StatusSlot`] values the workers publish. Since the hint
//! fold ([`combine_hints`]) is associative and every per-region scan
//! covers exactly the components the serial scan would, the partitioned
//! run is bit-identical to the serial one in every reported number;
//! only `wall_time` and the [`PartitionReport`] diagnostics differ.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ntg_noc::{Interconnect, RegionSpec, XpipesNoc};
use ntg_ocp::{wake_token, LinkArena};
use ntg_sim::parallel::combine_hints;
use ntg_sim::{
    ActiveSet, Activity, Component, Cycle, SpinBarrier, StatusSlot, WakeEvents, WindowSeries,
};

use super::{Master, Platform, Slave};
use crate::report::{PartitionReport, RunReport};

// Commands the control thread issues to the workers, packed into one
// atomic word: `[op:2][want_hint:1][target:61]`. Workers track the
// current cycle locally, so only the skip target rides along.
const OP_SHIFT: u32 = 62;
const OP_PROBE: u64 = 0;
const OP_TICK: u64 = 1;
const OP_SKIP: u64 = 2;
const OP_EXIT: u64 = 3;
const WANT_HINT: u64 = 1 << 61;
const TARGET_MASK: u64 = WANT_HINT - 1;

fn encode_command(op: u64, want_hint: bool, target: Cycle) -> u64 {
    debug_assert!(target <= TARGET_MASK, "cycle target overflows the command");
    (op << OP_SHIFT) | if want_hint { WANT_HINT } else { 0 } | target
}

/// One partition's components, moved onto (and joined back from) its
/// worker thread.
struct Region {
    masters: Vec<Master>,
    noc: XpipesNoc,
    slaves: Vec<Slave>,
    net: LinkArena,
    metrics: Option<RegionMetrics>,
    /// O(active) scheduling state over this band's masters and slaves
    /// (`None` runs the band dense). Local component id = global link id
    /// minus `link_base`: the band owns one contiguous link range with
    /// its master links first, slave links after — the same id space
    /// the wake tokens use.
    sched: Option<ActiveSet>,
    /// First global link id of this band's arena slice.
    link_base: usize,
    /// Masters not yet halted — O(1) gate for the quiesce predicate
    /// (maintained only when `sched` is active).
    live_masters: usize,
    /// Visit-set and wake-token scratch, reused every round.
    visit_buf: Vec<u32>,
    tokens: Vec<u32>,
    /// Final `ActiveSet::visited_component_cycles`, latched at exit.
    visited: u64,
}

/// Per-worker metric state; merged into the platform recorder after the
/// workers join. Every worker samples at exactly the cycles the serial
/// loop would, so the merged series is bit-identical to serial sampling
/// of the whole fabric.
struct RegionMetrics {
    busy: WindowSeries,
    last_util: u64,
}

impl Region {
    /// One ticked cycle: phase A, barrier, phase B, status, barrier.
    ///
    /// With O(active) scheduling on, each phase visits only the band's
    /// woken masters/slaves (sleepers catch up through `skip` when
    /// revisited); the band's mesh share always ticks, exactly like the
    /// serial sparse loop's interconnect.
    fn tick_round(&mut self, now: Cycle, barrier: &SpinBarrier, slot: &StatusSlot, hint: bool) {
        let n_m = self.masters.len();
        let split = if let Some(sched) = &mut self.sched {
            self.visit_buf.clear();
            self.visit_buf.extend_from_slice(sched.visit(now));
            let split = self.visit_buf.partition_point(|&id| (id as usize) < n_m);
            for &id in &self.visit_buf[..split] {
                let i = id as usize;
                if let Some(since) = sched.take_catch_up(id, now) {
                    self.masters[i]
                        .as_component()
                        .skip(since, now, &mut self.net);
                }
                let was_halted = self.masters[i].halted();
                self.masters[i].tick(now, &mut self.net);
                if !was_halted && self.masters[i].halted() {
                    self.live_masters -= 1;
                }
            }
            split
        } else {
            for m in &mut self.masters {
                m.tick(now, &mut self.net);
            }
            0
        };
        self.noc.phase_link(&mut self.net, now);
        barrier.wait(); // every region's boundary exports are in place
        self.noc.phase_switch_ni(&mut self.net, now);
        if let Some(sched) = &mut self.sched {
            for &id in &self.visit_buf[split..] {
                let i = id as usize - n_m;
                if let Some(since) = sched.take_catch_up(id, now) {
                    self.slaves[i]
                        .as_component()
                        .skip(since, now, &mut self.net);
                }
                self.slaves[i].tick(now, &mut self.net);
            }
            let next = now + 1;
            for &id in &self.visit_buf {
                let i = id as usize;
                let hint = if i < n_m {
                    self.masters[i]
                        .as_component_ref()
                        .next_activity(next, &self.net)
                } else {
                    self.slaves[i - n_m]
                        .as_component_ref()
                        .next_activity(next, &self.net)
                };
                sched.reinsert(id, hint, next);
            }
            // Producer touches become visible at `next`; the band's
            // links are all intra-band (each master/slave attaches to
            // an NI of its own band), so tokens never cross regions.
            let tokens = &mut self.tokens;
            self.net.drain_wakes(&mut |t| tokens.push(t));
            let base = self.link_base;
            for &t in tokens.iter() {
                let (link, master_side) = wake_token(t);
                let local = link.index() - base;
                let to_fabric = if local < n_m {
                    !master_side
                } else {
                    master_side
                };
                if to_fabric {
                    self.noc.wake_link(link);
                } else {
                    sched.wake(local as u32, next);
                }
            }
            tokens.clear();
            sched.end_cycle(now);
        } else {
            for s in &mut self.slaves {
                s.tick(now, &mut self.net);
            }
        }
        self.sample(now);
        self.publish(slot, now + 1, hint);
        barrier.wait();
    }

    /// One horizon jump `now → to`; no flits move (skips only fire on a
    /// globally idle fabric), so the mid barrier separates nothing and
    /// is crossed purely to keep every round's crossing count uniform.
    ///
    /// With O(active) scheduling on, only the mesh share fast-forwards
    /// eagerly; sleeping masters/slaves settle via catch-up skips when
    /// next visited, like the serial sparse loop.
    fn skip_round(&mut self, now: Cycle, to: Cycle, barrier: &SpinBarrier, slot: &StatusSlot) {
        if self.sched.is_some() {
            self.noc.skip(now, to, &mut self.net);
        } else {
            for m in &mut self.masters {
                m.as_component().skip(now, to, &mut self.net);
            }
            self.noc.skip(now, to, &mut self.net);
            for s in &mut self.slaves {
                s.as_component().skip(now, to, &mut self.net);
            }
        }
        barrier.wait();
        // The serial loop samples a jump at its first cycle.
        self.sample(now);
        if let Some(sched) = &mut self.sched {
            sched.advance(to);
        }
        self.publish(slot, to, true);
        barrier.wait();
    }

    /// End-of-run settlement for a sparse band: fast-forwards every
    /// sleeper's bookkeeping to the finish cycle and latches the visit
    /// counter. No-op for dense bands.
    fn finalize(&mut self, now: Cycle) {
        let Some(sched) = &mut self.sched else { return };
        let n_m = self.masters.len();
        sched.drain_catch_ups(now, |id, since| {
            let i = id as usize;
            if i < n_m {
                self.masters[i]
                    .as_component()
                    .skip(since, now, &mut self.net);
            } else {
                self.slaves[i - n_m]
                    .as_component()
                    .skip(since, now, &mut self.net);
            }
        });
        self.visited = sched.visited_component_cycles();
    }

    /// A status-only round — the very first command, so the control
    /// thread sees each partition's initial quiesce/hint state.
    fn probe_round(&mut self, now: Cycle, barrier: &SpinBarrier, slot: &StatusSlot, hint: bool) {
        barrier.wait();
        self.publish(slot, now, hint);
        barrier.wait();
    }

    /// Samples the fabric-busy delta at cycle `now`, mirroring
    /// `Platform::sample_metrics` for this region's share of the mesh.
    fn sample(&mut self, now: Cycle) {
        if let Some(rec) = &mut self.metrics {
            let util = self.noc.utilization_cycles();
            rec.busy.record(now, util - rec.last_util);
            rec.last_util = util;
        }
    }

    /// Publishes this region's quiesce flag and (when the next control
    /// decision polls the horizon) its folded wake hint, evaluated at
    /// cycle `at` — the cycle the control loop is about to decide for.
    ///
    /// A sparse band's hint comes from its scheduler instead of a
    /// component scan: `Busy` while anything runs or is due at `at`,
    /// otherwise the fold of the wheel's earliest wake with the band's
    /// mesh hint — the same value the serial sparse loop computes for
    /// its jump decision.
    fn publish(&self, slot: &StatusSlot, at: Cycle, want_hint: bool) {
        if let Some(sched) = &self.sched {
            let quiesced = self.live_masters == 0
                && self.noc.is_idle(&self.net)
                && self.slaves.iter().all(|s| s.is_idle(&self.net));
            let hint = if !want_hint || !sched.idle() {
                Activity::Busy
            } else {
                let wheel = match sched.next_wake() {
                    Some(w) => Activity::IdleUntil(w),
                    None => Activity::Drained,
                };
                combine_hints(wheel, self.noc.next_activity(at, &self.net))
            };
            slot.publish(quiesced, hint);
            return;
        }
        let quiesced = self.masters.iter().all(Master::halted)
            && self.noc.is_idle(&self.net)
            && self.slaves.iter().all(|s| s.is_idle(&self.net));
        let hint = if want_hint {
            let mut h = self.masters.iter().fold(Activity::Drained, |h, m| {
                combine_hints(h, m.as_component_ref().next_activity(at, &self.net))
            });
            if h != Activity::Busy {
                h = combine_hints(h, self.noc.next_activity(at, &self.net));
            }
            if h != Activity::Busy {
                h = self.slaves.iter().fold(h, |h, s| {
                    combine_hints(h, s.as_component_ref().next_activity(at, &self.net))
                });
            }
            h
        } else {
            // Not read this round; publish the conservative value.
            Activity::Busy
        };
        slot.publish(quiesced, hint);
    }
}

/// The worker side of the command protocol: wait for a command, execute
/// the round, repeat until `Exit`.
fn worker_loop(region: &mut Region, barrier: &SpinBarrier, command: &AtomicU64, slot: &StatusSlot) {
    let mut now: Cycle = 0;
    loop {
        barrier.wait(); // start: the command word is published
        let bits = command.load(Ordering::Relaxed);
        let (op, hint, target) = (bits >> OP_SHIFT, bits & WANT_HINT != 0, bits & TARGET_MASK);
        match op {
            OP_EXIT => {
                region.finalize(now);
                break;
            }
            OP_PROBE => region.probe_round(now, barrier, slot, hint),
            OP_TICK => {
                region.tick_round(now, barrier, slot, hint);
                now += 1;
            }
            OP_SKIP => {
                region.skip_round(now, target, barrier, slot);
                now = target;
            }
            _ => unreachable!("two-bit opcode"),
        }
    }
}

/// Folds the published per-region hints into the global horizon —
/// the partitioned equivalent of `Platform::horizon`.
fn horizon(slots: &[StatusSlot], now: Cycle, end: Cycle) -> Option<Cycle> {
    let folded = slots
        .iter()
        .fold(Activity::Drained, |h, s| combine_hints(h, s.hint()));
    let h = match folded {
        Activity::Busy => return None,
        Activity::Drained => end,
        Activity::IdleUntil(wake) => wake.min(end),
    };
    (h > now).then_some(h)
}

fn all_quiesced(slots: &[StatusSlot]) -> bool {
    slots.iter().all(StatusSlot::quiesced)
}

/// What the control loop hands back for the report.
struct ControlOutcome {
    completed: bool,
    now: Cycle,
    skipped: Cycle,
    ticked: Cycle,
}

/// The control thread's replica of the serial run loop (`Platform::run`):
/// same quiesce check every iteration, same exponential horizon-poll
/// backoff, same skip/tick decisions — but made from the workers'
/// published status instead of a direct component scan, and executed by
/// broadcasting one command per round. Runs partition 0 inline.
fn control_loop(
    region: &mut Region,
    barrier: &SpinBarrier,
    command: &AtomicU64,
    slots: &[StatusSlot],
    max_cycles: Cycle,
    skipping: bool,
) -> ControlOutcome {
    const MAX_POLL_BACKOFF: Cycle = 64;
    // With O(active) scheduling the idle test is one flag per band, so
    // the control polls the horizon every round (backoff pinned at 1),
    // exactly like the serial sparse loop checks `ActiveSet::idle`
    // every cycle — keeping the two engines' skip schedules identical.
    let sparse = region.sched.is_some();
    let mut now: Cycle = 0;
    let mut skipped: Cycle = 0;
    let mut ticked: Cycle = 0;
    let completed;
    let mut poll_at: Cycle = 0;
    let mut backoff: Cycle = 1;

    // Round 0: learn every partition's initial status. The first loop
    // iteration polls the horizon (now == poll_at), so hints are
    // requested whenever skipping is on at all.
    command.store(encode_command(OP_PROBE, skipping, 0), Ordering::Relaxed);
    barrier.wait();
    region.probe_round(now, barrier, &slots[0], skipping);

    loop {
        // The slots always describe the platform exactly at cycle `now`:
        // each worker publishes after its state for the round settles.
        if now >= max_cycles {
            completed = all_quiesced(slots);
            break;
        }
        if all_quiesced(slots) {
            completed = true;
            break;
        }
        if skipping && (sparse || now >= poll_at) {
            if let Some(next) = horizon(slots, now, max_cycles) {
                command.store(encode_command(OP_SKIP, true, next), Ordering::Relaxed);
                barrier.wait();
                region.skip_round(now, next, barrier, &slots[0]);
                skipped += next - now;
                now = next;
                backoff = 1;
                poll_at = now;
                continue;
            }
            if !sparse {
                backoff = (backoff * 2).min(MAX_POLL_BACKOFF);
                poll_at = now + backoff;
            }
        }
        let want_hint = skipping && (sparse || now + 1 >= poll_at);
        command.store(encode_command(OP_TICK, want_hint, 0), Ordering::Relaxed);
        barrier.wait();
        region.tick_round(now, barrier, &slots[0], want_hint);
        ticked += 1;
        now += 1;
    }
    command.store(encode_command(OP_EXIT, false, 0), Ordering::Relaxed);
    barrier.wait();
    ControlOutcome {
        completed,
        now,
        skipped,
        ticked,
    }
}

impl Platform {
    /// Runs like [`run`](Self::run), but advances the simulation with
    /// `sim_threads` worker threads when the platform can be partitioned
    /// — a fresh (cycle 0) platform on a ×pipes mesh with the canonical
    /// row-major NI layout ([`InterconnectChoice::Mesh`]) and at least
    /// two usable row bands. Otherwise this falls back to the serial
    /// loop, so it is always safe to call.
    ///
    /// Partitioning is a pure wall-time optimisation with the same
    /// contract as cycle skipping: reported cycles, statistics, traces
    /// and metrics are bit-identical to a serial run (the three-way
    /// equivalence tests in `ntg-bench` pin this down). A partitioned
    /// run additionally reports [`PartitionReport`] diagnostics.
    ///
    /// [`InterconnectChoice::Mesh`]: super::InterconnectChoice::Mesh
    pub fn run_with_threads(&mut self, max_cycles: Cycle, sim_threads: usize) -> RunReport {
        let plan = if sim_threads >= 2 && self.now == 0 {
            self.interconnect
                .as_xpipes_mut()
                .and_then(|x| x.partition_plan(sim_threads))
        } else {
            None
        };
        let Some(specs) = plan else {
            return self.run(max_cycles);
        };
        debug_assert_eq!(
            specs.last().map(|s| s.links.1),
            Some(self.net.len() as u32),
            "partition plan must tile the whole link arena"
        );
        let start = Instant::now();
        let p = specs.len();
        let mut regions = self.carve(&specs);

        let barrier = SpinBarrier::new(p);
        let command = AtomicU64::new(0);
        let slots: Vec<StatusSlot> = (0..p).map(|_| StatusSlot::new()).collect();
        let skipping = self.skipping;

        let mut control_region = regions.remove(0);
        let (outcome, joined) = std::thread::scope(|scope| {
            let handles: Vec<_> = regions
                .into_iter()
                .enumerate()
                .map(|(i, mut region)| {
                    let (barrier, command, slot) = (&barrier, &command, &slots[i + 1]);
                    scope.spawn(move || {
                        worker_loop(&mut region, barrier, command, slot);
                        region
                    })
                })
                .collect();
            let outcome = control_loop(
                &mut control_region,
                &barrier,
                &command,
                &slots,
                max_cycles,
                skipping,
            );
            let joined: Vec<Region> = handles
                .into_iter()
                .map(|h| h.join().expect("partition worker panicked"))
                .collect();
            (outcome, joined)
        });

        self.now = outcome.now;
        self.skipped_cycles += outcome.skipped;
        self.ticked_cycles += outcome.ticked;
        control_region.finalize(outcome.now);
        let mut all = Vec::with_capacity(p);
        all.push(control_region);
        all.extend(joined);
        // Sparse bands visited only what they woke (the mesh counts once
        // per ticked round, as in the serial sparse loop); dense rounds
        // visit every component of every region.
        let region_visited: u64 = all.iter().map(|r| r.visited).sum();
        let sparse = all[0].sched.is_some();
        self.reassemble(all);
        self.visited_component_cycles += if sparse {
            region_visited + outcome.ticked
        } else {
            self.components() as u64 * outcome.ticked
        };
        if sparse {
            self.net.set_wake_logging(false);
            self.interconnect.set_event_driven(false);
        }
        // Final window-closing sample at the finish cycle, mirroring the
        // serial engines (keeps metric sidecars byte-identical).
        self.sample_metrics(self.now);

        self.build_report(
            outcome.completed,
            start.elapsed(),
            Some(PartitionReport {
                partitions: p,
                barrier_crossings: barrier.crossings(),
                barrier_stalls: barrier.stalls(),
                oversubscribed: barrier.immediate_yield(),
            }),
        )
    }

    /// Carves the platform into per-partition [`Region`]s along `specs`:
    /// splits the mesh, slices the link arena at the band boundaries and
    /// deals out the masters and slave devices.
    fn carve(&mut self, specs: &[RegionSpec]) -> Vec<Region> {
        let sparse = self.skipping && self.active_sched;
        if sparse {
            // Sub-arenas inherit the logging flag through `split_off`.
            self.net.set_wake_logging(true);
        }
        let nocs = self
            .interconnect
            .as_xpipes_mut()
            .expect("carve is only called on a planned mesh")
            .split(specs);

        let mut arena = std::mem::take(&mut self.net);
        let mut arenas = Vec::with_capacity(specs.len());
        for spec in specs.iter().skip(1) {
            let tail = arena.split_off(spec.links.0);
            arenas.push(std::mem::replace(&mut arena, tail));
        }
        arenas.push(arena);

        let mut masters = std::mem::take(&mut self.masters).into_iter();
        let mut slaves = std::mem::take(&mut self.slaves).into_iter();
        specs
            .iter()
            .zip(nocs)
            .zip(arenas)
            .map(|((spec, mut noc), net)| {
                let masters: Vec<Master> = masters
                    .by_ref()
                    .take(spec.masters.1 - spec.masters.0)
                    .collect();
                let slaves: Vec<Slave> = slaves
                    .by_ref()
                    .take(spec.slaves.1 - spec.slaves.0)
                    .collect();
                let n_m = masters.len();
                let sched = sparse.then(|| {
                    let mut sched = ActiveSet::new(n_m + slaves.len());
                    for (m, master) in masters.iter().enumerate() {
                        let hint = master.as_component_ref().next_activity(0, &net);
                        sched.seed(m as u32, hint, 0);
                    }
                    for (s, slave) in slaves.iter().enumerate() {
                        let hint = slave.as_component_ref().next_activity(0, &net);
                        sched.seed((n_m + s) as u32, hint, 0);
                    }
                    Interconnect::set_event_driven(&mut noc, true);
                    sched
                });
                Region {
                    live_masters: masters.iter().filter(|m| !m.halted()).count(),
                    masters,
                    slaves,
                    metrics: self.metrics.as_ref().map(|_| RegionMetrics {
                        busy: WindowSeries::new("fabric_busy", 1024, 64),
                        last_util: noc.utilization_cycles(),
                    }),
                    visit_buf: Vec::with_capacity(sched.as_ref().map_or(0, ActiveSet::components)),
                    tokens: Vec::new(),
                    visited: 0,
                    sched,
                    link_base: spec.links.0 as usize,
                    noc,
                    net,
                }
            })
            .collect()
    }

    /// Inverse of [`carve`](Self::carve): moves every component back,
    /// re-joins the link arena, absorbs the region meshes into the
    /// platform interconnect and merges the per-worker metric series.
    fn reassemble(&mut self, regions: Vec<Region>) {
        let mut net: Option<LinkArena> = None;
        let mut nocs = Vec::with_capacity(regions.len());
        let mut busy: Option<WindowSeries> = None;
        for region in regions {
            self.masters.extend(region.masters);
            self.slaves.extend(region.slaves);
            nocs.push(region.noc);
            match &mut net {
                None => net = Some(region.net),
                Some(head) => head.append(region.net),
            }
            if let Some(m) = region.metrics {
                match &mut busy {
                    None => busy = Some(m.busy),
                    Some(acc) => acc.merge(&m.busy),
                }
            }
        }
        self.net = net.expect("at least one region");
        self.interconnect
            .as_xpipes_mut()
            .expect("reassemble mirrors carve")
            .absorb(nocs);
        if let Some(rec) = &mut self.metrics {
            rec.busy = busy.expect("regions carried metric state");
            rec.last_util = self.interconnect.utilization_cycles();
        }
    }
}
