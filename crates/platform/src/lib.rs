//! The MPARM-like multiprocessor SoC platform.
//!
//! Assembles the full system the paper simulates: *n* masters (Srisc CPU
//! cores running benchmark programs, or traffic generators replaying
//! translated traces), one interconnect (AMBA-like bus, ×pipes-like NoC,
//! crossbar or ideal fabric), per-core private memories, a shared memory,
//! a synchronisation-flag memory and a hardware semaphore bank — all
//! behind one fixed [memory map](mem_map).
//!
//! The [`PlatformBuilder`] wires everything, [`Platform::run`] executes
//! the cycle loop and returns a [`RunReport`] with per-core completion
//! cycles ("cumulative execution time" in the paper's Table 2), and —
//! with tracing enabled — per-core OCP traces ready for translation.
//!
//! # The complete paper flow
//!
//! ```text
//! 1. reference run:  PlatformBuilder::new().add_cpu(prog)...  .tracing(true)
//! 2. translate:      platform.translate_traces(TranslationMode::Reactive)
//! 3. exploration:    PlatformBuilder::new().add_tg(assemble(&program))...
//! ```
//!
//! Steps 1 and 3 may use *different* interconnects — that is the point of
//! the whole exercise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mem_map;
mod platform;
mod report;

pub use platform::{
    InterconnectChoice, MasterCtx, MasterFactory, MasterKind, Platform, PlatformBuilder,
    PlatformError, PlatformMaster, TraceTranslationError, ALL_INTERCONNECTS,
};
pub use report::{MasterReport, MetricsReport, PartitionReport, RunReport};
