//! Platform assembly and the run loop.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use ntg_core::{
    StochasticConfig, StochasticTg, TgCore, TgImage, TgMultiCore, TgProgram, TimesliceConfig,
    TraceTranslator, TranslationError, TranslationMode, TranslatorConfig,
};
use ntg_cpu::{CpuConfig, CpuCore, Program};
use ntg_mem::{AddressMap, MapError, MemoryDevice, SemaphoreBank};
use ntg_noc::{
    AmbaBus, Arbitration, CrossbarBus, IdealInterconnect, Interconnect, XpipesConfig, XpipesNoc,
};
use ntg_ocp::{wake_token, LinkArena, MasterId};
use ntg_sim::{ActiveSet, Activity, ClockConfig, Component, Cycle, WakeEvents, WindowSeries};
use ntg_trace::{shared_trace, MasterTrace, SharedTrace, TraceMonitor};

use crate::mem_map;
use crate::report::{MasterReport, MetricsReport, RunReport};

mod parallel;

/// Which interconnect model the platform instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterconnectChoice {
    /// Shared AMBA-like bus.
    #[default]
    Amba,
    /// AMBA-like bus with static priority arbitration.
    AmbaFixedPriority,
    /// ×pipes-like mesh NoC with an auto-generated topology.
    Xpipes,
    /// ×pipes-like mesh NoC on an explicit `width × height` grid with
    /// the canonical row-major NI layout (masters on nodes `0..n`,
    /// slaves directly after) — the layout the row-band partition
    /// scheduler of [`Platform::run_with_threads`] requires, and the
    /// variant the big-mesh sweeps (`8x8`, `16x16`, …) instantiate.
    Mesh(u16, u16),
    /// STBus-like crossbar.
    Crossbar,
    /// Fixed-latency ideal fabric.
    Ideal,
}

impl fmt::Display for InterconnectChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterconnectChoice::Amba => f.write_str("amba"),
            InterconnectChoice::AmbaFixedPriority => f.write_str("amba-fixed"),
            InterconnectChoice::Xpipes => f.write_str("xpipes"),
            InterconnectChoice::Mesh(w, h) => write!(f, "xpipes:{w}x{h}"),
            InterconnectChoice::Crossbar => f.write_str("crossbar"),
            InterconnectChoice::Ideal => f.write_str("ideal"),
        }
    }
}

impl std::str::FromStr for InterconnectChoice {
    type Err = String;

    /// Parses the names printed by [`Display`] (`amba`, `amba-fixed`,
    /// `xpipes`, `xpipes:WxH`, `crossbar`, `ideal`).
    fn from_str(s: &str) -> Result<Self, String> {
        if let Some(dims) = s.strip_prefix("xpipes:") {
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| format!("mesh dims `{dims}` are not WxH"))?;
            let w: u16 = w.parse().map_err(|_| format!("bad mesh width `{w}`"))?;
            let h: u16 = h.parse().map_err(|_| format!("bad mesh height `{h}`"))?;
            if w == 0 || h == 0 {
                return Err(format!("mesh `{dims}` must be non-empty"));
            }
            return Ok(InterconnectChoice::Mesh(w, h));
        }
        match s {
            "amba" => Ok(InterconnectChoice::Amba),
            "amba-fixed" => Ok(InterconnectChoice::AmbaFixedPriority),
            "xpipes" => Ok(InterconnectChoice::Xpipes),
            "crossbar" => Ok(InterconnectChoice::Crossbar),
            "ideal" => Ok(InterconnectChoice::Ideal),
            _ => Err(format!(
                "unknown interconnect `{s}` (expected amba, amba-fixed, xpipes, \
                 xpipes:WxH, crossbar or ideal)"
            )),
        }
    }
}

/// All interconnect models, in the order the exploration experiments
/// sweep them.
pub const ALL_INTERCONNECTS: [InterconnectChoice; 5] = [
    InterconnectChoice::Amba,
    InterconnectChoice::AmbaFixedPriority,
    InterconnectChoice::Crossbar,
    InterconnectChoice::Xpipes,
    InterconnectChoice::Ideal,
];

/// A master implemented outside this crate, plugged into a socket via
/// [`MasterKind::Custom`].
///
/// Implementors provide the [`Component`] tick protocol over the
/// platform's [`LinkArena`] plus the lifecycle queries the run loop
/// needs from every master. The contract matches the built-in masters:
/// `halted` becomes true once all work is done (and stays true),
/// `halt_cycle` records the completing cycle, and any
/// `next_activity`/`skip` implementation must keep cycle counts
/// bit-identical with skipping on or off. The `Send` supertrait keeps
/// the assembled [`Platform`] a plain `Send` value, which is what lets
/// campaign workers own platforms on worker threads.
pub trait PlatformMaster: Component<LinkArena> + Send {
    /// Whether the master has finished all its work.
    fn halted(&self) -> bool;
    /// The cycle the master completed in, if halted.
    fn halt_cycle(&self) -> Option<Cycle>;
    /// A human-readable fault description, if the master faulted.
    fn fault(&self) -> Option<String> {
        None
    }
    /// Per-master statistics for the [`RunReport`].
    fn report(&self) -> MasterReport;
}

/// Socket context handed to a [`MasterFactory`]: which socket is being
/// filled and how many the platform has (patterns like transpose need
/// the total).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterCtx {
    /// The socket (= core) index of this master.
    pub core: usize,
    /// Total number of masters in the platform.
    pub cores: usize,
}

/// Builds a custom master for a socket. A factory rather than a value
/// because [`PlatformBuilder::build`] may be called repeatedly on the
/// same builder — each build gets a fresh master wired to a fresh port.
/// `Send + Sync` so builders holding factories can be shared with or
/// moved to campaign worker threads.
pub type MasterFactory =
    Box<dyn Fn(MasterCtx, ntg_ocp::MasterPort) -> Box<dyn PlatformMaster> + Send + Sync>;

/// What kind of master occupies a socket.
pub enum MasterKind {
    /// A Srisc core running an assembled program.
    Cpu(Program),
    /// A traffic generator replaying a TG image.
    Tg(TgImage),
    /// Several TG programs time-sliced onto one socket (the paper's §7
    /// future-work scenario).
    TgMulti(Vec<TgImage>, TimesliceConfig),
    /// A stochastic traffic source (the related-work baseline the paper
    /// argues is unreliable for NoC optimisation).
    Stochastic(StochasticConfig),
    /// An externally implemented master (e.g. the synthetic traffic
    /// generators in `ntg-workloads`), built per-socket by the factory.
    Custom(MasterFactory),
}

// TgCore is itself a fair-sized struct, so the size gap to the boxed
// variants is inherent and acceptable for a handful of masters.
#[allow(clippy::large_enum_variant)]
enum Master {
    // Boxed: a CpuCore (two caches) is several times larger than a
    // TgCore, and masters live in a Vec.
    Cpu(Box<CpuCore>),
    Tg(TgCore),
    TgMulti(Box<TgMultiCore>),
    Stochastic(Box<StochasticTg>),
    Custom(Box<dyn PlatformMaster>),
}

impl Master {
    fn as_component(&mut self) -> &mut dyn Component<LinkArena> {
        match self {
            Master::Cpu(c) => c.as_mut(),
            Master::Tg(t) => t,
            Master::TgMulti(m) => m.as_mut(),
            Master::Stochastic(s) => s.as_mut(),
            Master::Custom(c) => &mut **c,
        }
    }

    fn as_component_ref(&self) -> &dyn Component<LinkArena> {
        match self {
            Master::Cpu(c) => c.as_ref(),
            Master::Tg(t) => t,
            Master::TgMulti(m) => m.as_ref(),
            Master::Stochastic(s) => s.as_ref(),
            Master::Custom(c) => &**c,
        }
    }

    /// Direct-dispatch tick: the run loop calls this once per master per
    /// cycle; matching on the enum (instead of going through
    /// `as_component`'s `&mut dyn Component`) lets the common
    /// [`TgCore::tick`] inline into the loop.
    #[inline]
    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        match self {
            Master::Cpu(c) => c.tick(now, net),
            Master::Tg(t) => t.tick(now, net),
            Master::TgMulti(m) => m.tick(now, net),
            Master::Stochastic(s) => s.tick(now, net),
            Master::Custom(c) => c.tick(now, net),
        }
    }

    fn halted(&self) -> bool {
        match self {
            Master::Cpu(c) => c.halted(),
            Master::Tg(t) => t.halted(),
            Master::TgMulti(m) => m.halted(),
            Master::Stochastic(s) => s.halted(),
            Master::Custom(c) => c.halted(),
        }
    }

    fn halt_cycle(&self) -> Option<Cycle> {
        match self {
            Master::Cpu(c) => c.halt_cycle(),
            Master::Tg(t) => t.halt_cycle(),
            Master::TgMulti(m) => m.halt_cycle(),
            Master::Stochastic(s) => s.halt_cycle(),
            Master::Custom(c) => c.halt_cycle(),
        }
    }

    fn fault(&self) -> Option<String> {
        match self {
            Master::Cpu(c) => c.fault().map(|f| format!("{f:?}")),
            Master::Tg(t) => t.fault().map(|f| format!("{f:?}")),
            Master::TgMulti(m) => m.fault().map(|f| format!("{f:?}")),
            Master::Stochastic(_) => None,
            Master::Custom(c) => c.fault(),
        }
    }

    fn report(&self) -> MasterReport {
        match self {
            Master::Cpu(c) => MasterReport::Cpu(c.stats()),
            Master::Tg(t) => MasterReport::Tg(t.stats()),
            // Summed over tasks: the socket's total traffic.
            Master::TgMulti(m) => {
                let mut total = ntg_core::TgStats::default();
                for s in m.task_stats() {
                    total.instructions += s.instructions;
                    total.reads += s.reads;
                    total.writes += s.writes;
                    total.burst_reads += s.burst_reads;
                    total.burst_writes += s.burst_writes;
                    total.idle_cycles += s.idle_cycles;
                    total.wait_cycles += s.wait_cycles;
                }
                MasterReport::Tg(total)
            }
            Master::Stochastic(s) => MasterReport::Stochastic {
                issued: s.issued(),
                errors: s.errors(),
            },
            Master::Custom(c) => c.report(),
        }
    }
}

enum Slave {
    Mem(MemoryDevice),
    Sem(SemaphoreBank),
}

impl Slave {
    fn as_component(&mut self) -> &mut dyn Component<LinkArena> {
        match self {
            Slave::Mem(m) => m,
            Slave::Sem(s) => s,
        }
    }

    fn as_component_ref(&self) -> &dyn Component<LinkArena> {
        match self {
            Slave::Mem(m) => m,
            Slave::Sem(s) => s,
        }
    }

    /// Direct-dispatch tick; see [`Master::tick`].
    #[inline]
    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        match self {
            Slave::Mem(m) => m.tick(now, net),
            Slave::Sem(s) => s.tick(now, net),
        }
    }

    fn is_idle(&self, net: &LinkArena) -> bool {
        match self {
            Slave::Mem(m) => m.is_idle(net),
            Slave::Sem(s) => s.is_idle(net),
        }
    }
}

/// Errors produced by [`Platform::translate_traces`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceTranslationError {
    /// Tracing was not enabled on this master, so there is nothing to
    /// translate.
    TracingDisabled {
        /// The core index.
        core: usize,
    },
    /// The recorded trace could not be translated.
    Translation(TranslationError),
}

impl fmt::Display for TraceTranslationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceTranslationError::TracingDisabled { core } => {
                write!(f, "tracing was not enabled on master {core}")
            }
            TraceTranslationError::Translation(e) => write!(f, "translation: {e}"),
        }
    }
}

impl std::error::Error for TraceTranslationError {}

/// Errors produced while building a platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// No masters were added.
    NoMasters,
    /// A CPU program's entry/extent does not fit its core's private
    /// memory.
    ProgramOutsidePrivate {
        /// The core index.
        core: usize,
    },
    /// The memory map could not be built.
    Map(MapError),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoMasters => write!(f, "platform has no masters"),
            PlatformError::ProgramOutsidePrivate { core } => {
                write!(f, "program for core {core} does not fit its private memory")
            }
            PlatformError::Map(e) => write!(f, "memory map: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<MapError> for PlatformError {
    fn from(e: MapError) -> Self {
        PlatformError::Map(e)
    }
}

/// Builder for a [`Platform`].
///
/// # Example
///
/// ```
/// use ntg_cpu::Asm;
/// use ntg_platform::{mem_map, PlatformBuilder};
///
/// let mut asm = Asm::new();
/// asm.halt();
/// let program = asm.assemble(mem_map::private_base(0))?;
///
/// let mut platform = PlatformBuilder::new().add_cpu(program).build()?;
/// let report = platform.run(10_000);
/// assert!(report.completed);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PlatformBuilder {
    clock: ClockConfig,
    interconnect: InterconnectChoice,
    cpu_config: CpuConfig,
    private_bytes: u32,
    shared_bytes: u32,
    sync_bytes: u32,
    semaphores: u32,
    tracing: bool,
    masters: Vec<MasterKind>,
    shared_preload: Vec<(u32, Vec<u32>)>,
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        Self {
            clock: ClockConfig::default(),
            interconnect: InterconnectChoice::default(),
            cpu_config: CpuConfig::default(),
            private_bytes: 0x1_0000,
            shared_bytes: 0x1_0000,
            sync_bytes: 0x1000,
            semaphores: 64,
            tracing: false,
            masters: Vec::new(),
            shared_preload: Vec::new(),
        }
    }
}

impl PlatformBuilder {
    /// Creates a builder with MPARM-like defaults: AMBA bus, 5 ns clock,
    /// 64 KiB private memories, 64 KiB shared memory, 64 semaphores,
    /// tracing off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the interconnect model.
    pub fn interconnect(&mut self, choice: InterconnectChoice) -> &mut Self {
        self.interconnect = choice;
        self
    }

    /// Overrides the clock (default 5 ns, as in the paper).
    pub fn clock(&mut self, clock: ClockConfig) -> &mut Self {
        self.clock = clock;
        self
    }

    /// Overrides the CPU core configuration (cache geometries).
    pub fn cpu_config(&mut self, cfg: CpuConfig) -> &mut Self {
        self.cpu_config = cfg;
        self
    }

    /// Overrides the per-core private memory size in bytes.
    pub fn private_bytes(&mut self, bytes: u32) -> &mut Self {
        self.private_bytes = bytes;
        self
    }

    /// Overrides the shared memory size in bytes.
    pub fn shared_bytes(&mut self, bytes: u32) -> &mut Self {
        self.shared_bytes = bytes;
        self
    }

    /// Enables or disables OCP trace collection at every master
    /// interface.
    pub fn tracing(&mut self, on: bool) -> &mut Self {
        self.tracing = on;
        self
    }

    /// Adds a CPU master running `program` (must be assembled at its
    /// core's [`private_base`](mem_map::private_base)).
    pub fn add_cpu(&mut self, program: Program) -> &mut Self {
        self.masters.push(MasterKind::Cpu(program));
        self
    }

    /// Adds a traffic-generator master replaying `image`.
    pub fn add_tg(&mut self, image: TgImage) -> &mut Self {
        self.masters.push(MasterKind::Tg(image));
        self
    }

    /// Adds a multitasking TG socket running several images under
    /// round-robin timeslicing (the paper's §7 future-work scenario).
    pub fn add_tg_multitask(&mut self, images: Vec<TgImage>, cfg: TimesliceConfig) -> &mut Self {
        self.masters.push(MasterKind::TgMulti(images, cfg));
        self
    }

    /// Adds a stochastic traffic source (the related-work baseline).
    pub fn add_stochastic(&mut self, cfg: StochasticConfig) -> &mut Self {
        self.masters.push(MasterKind::Stochastic(cfg));
        self
    }

    /// Adds an arbitrary master socket.
    pub fn add_master(&mut self, master: MasterKind) -> &mut Self {
        self.masters.push(master);
        self
    }

    /// Preloads words into shared memory before the run.
    pub fn preload_shared(&mut self, addr: u32, words: Vec<u32>) -> &mut Self {
        self.shared_preload.push((addr, words));
        self
    }

    /// Builds the platform.
    ///
    /// # Errors
    ///
    /// Returns a [`PlatformError`] if no masters were added, a program
    /// does not fit its private memory, or the map is invalid.
    pub fn build(&self) -> Result<Platform, PlatformError> {
        if self.masters.is_empty() {
            return Err(PlatformError::NoMasters);
        }
        let n = self.masters.len();
        let mut net = LinkArena::new();
        let map = Arc::new(mem_map::build_map(
            n,
            self.private_bytes,
            self.shared_bytes,
            self.sync_bytes,
            self.semaphores,
        )?);

        // Master links are minted first (ids `0..n`), slave links after
        // (ids `n..n+s`): under the canonical mesh layout of
        // [`InterconnectChoice::Mesh`] every link id then equals its
        // NI's mesh node, so a row band of nodes owns one contiguous
        // link-id range — the property `LinkArena::split_off` turns
        // into per-partition sub-arenas.
        let mut master_ports = Vec::with_capacity(n);
        let mut net_master_ports = Vec::new();
        let mut traces = Vec::new();
        for core in 0..n {
            let (mport, sport) = net.channel(format!("link-m{core}"), MasterId(core as u16));
            net_master_ports.push(sport);
            if self.tracing {
                let trace = shared_trace(core as u16, self.clock);
                mport.set_observer(
                    &mut net,
                    Box::new(TraceMonitor::new(trace.clone(), self.clock)),
                );
                traces.push(Some(trace));
            } else {
                traces.push(None);
            }
            master_ports.push(mport);
        }

        // Slave devices (ids: privates, shared, sync, semaphores).
        let mut slaves = Vec::new();
        let mut net_slave_ports = Vec::new();
        for core in 0..n {
            let (m, s) = net.channel(format!("link-priv{core}"), MasterId(0));
            net_slave_ports.push(m);
            slaves.push(Slave::Mem(MemoryDevice::new(
                format!("private{core}"),
                mem_map::private_base(core),
                self.private_bytes,
                s,
            )));
        }
        let (m, s) = net.channel("link-shared", MasterId(0));
        net_slave_ports.push(m);
        let mut shared = MemoryDevice::new("shared", mem_map::SHARED_BASE, self.shared_bytes, s);
        for (addr, words) in &self.shared_preload {
            shared.load_words(*addr, words);
        }
        slaves.push(Slave::Mem(shared));
        let (m, s) = net.channel("link-sync", MasterId(0));
        net_slave_ports.push(m);
        slaves.push(Slave::Mem(MemoryDevice::new(
            "sync",
            mem_map::SYNC_BASE,
            self.sync_bytes,
            s,
        )));
        let (m, s) = net.channel("link-sem", MasterId(0));
        net_slave_ports.push(m);
        slaves.push(Slave::Sem(SemaphoreBank::new(
            "sem",
            mem_map::SEM_BASE,
            self.semaphores,
            s,
        )));

        // Masters, on the links minted above.
        let mut masters = Vec::new();
        for ((core, kind), mport) in self.masters.iter().enumerate().zip(master_ports) {
            let master =
                match kind {
                    MasterKind::Cpu(program) => {
                        let base = mem_map::private_base(core);
                        let end = u64::from(base) + u64::from(self.private_bytes);
                        let fits = program.entry() >= base
                            && u64::from(program.entry()) + u64::from(program.size_bytes()) <= end;
                        if !fits {
                            return Err(PlatformError::ProgramOutsidePrivate { core });
                        }
                        let Slave::Mem(priv_mem) = &mut slaves[core] else {
                            unreachable!("slave {core} is this core's private memory")
                        };
                        priv_mem.load_words(program.entry(), program.words());
                        let sp = base + self.private_bytes - 4;
                        Master::Cpu(Box::new(CpuCore::new(
                            format!("cpu{core}"),
                            mport,
                            map.clone(),
                            self.cpu_config,
                            program.entry(),
                            sp,
                        )))
                    }
                    MasterKind::Tg(image) => {
                        Master::Tg(TgCore::new(format!("tg{core}"), mport, image.clone()))
                    }
                    MasterKind::TgMulti(images, cfg) => Master::TgMulti(Box::new(
                        TgMultiCore::new(format!("tgmulti{core}"), mport, images.clone(), *cfg),
                    )),
                    MasterKind::Stochastic(cfg) => Master::Stochastic(Box::new(StochasticTg::new(
                        format!("stg{core}"),
                        mport,
                        cfg.clone(),
                    ))),
                    MasterKind::Custom(factory) => {
                        Master::Custom(factory(MasterCtx { core, cores: n }, mport))
                    }
                };
            masters.push(master);
        }

        let interconnect: Box<dyn Interconnect> = match self.interconnect {
            InterconnectChoice::Amba => Box::new(AmbaBus::new(
                "amba",
                net_master_ports,
                net_slave_ports,
                map.clone(),
            )),
            InterconnectChoice::AmbaFixedPriority => {
                let mut bus = AmbaBus::new("amba", net_master_ports, net_slave_ports, map.clone());
                bus.set_arbitration(Arbitration::FixedPriority);
                Box::new(bus)
            }
            InterconnectChoice::Crossbar => Box::new(CrossbarBus::new(
                "crossbar",
                net_master_ports,
                net_slave_ports,
                map.clone(),
            )),
            InterconnectChoice::Xpipes => {
                let cfg = XpipesConfig::auto(n, net_slave_ports.len());
                Box::new(XpipesNoc::new(
                    "xpipes",
                    net_master_ports,
                    net_slave_ports,
                    map.clone(),
                    cfg,
                ))
            }
            InterconnectChoice::Mesh(w, h) => {
                let cfg = XpipesConfig::with_dims(w, h, n, net_slave_ports.len());
                Box::new(XpipesNoc::new(
                    "xpipes",
                    net_master_ports,
                    net_slave_ports,
                    map.clone(),
                    cfg,
                ))
            }
            InterconnectChoice::Ideal => Box::new(IdealInterconnect::new(
                "ideal",
                net_master_ports,
                net_slave_ports,
                map.clone(),
            )),
        };

        Ok(Platform {
            clock: self.clock,
            net,
            map,
            masters,
            interconnect,
            slaves,
            traces,
            now: 0,
            skipping: ntg_sim::cycle_skipping_enabled(),
            active_sched: ntg_sim::active_scheduling_enabled(),
            skipped_cycles: 0,
            ticked_cycles: 0,
            visited_component_cycles: 0,
            metrics: None,
        })
    }
}

/// In-flight metric state while metrics collection is enabled.
///
/// Allocates once at [`Platform::enable_metrics`] time and never again:
/// per-cycle sampling only touches counters (the `WindowSeries` merges
/// in place on overflow), preserving the zero-allocation steady-state
/// contract with metrics on.
struct MetricsRecorder {
    /// Fabric-busy cycles per time window.
    busy: WindowSeries,
    /// Last sampled [`Interconnect::utilization_cycles`] value.
    last_util: u64,
}

/// A fully assembled platform, ready to simulate.
///
/// Owns the [`LinkArena`] every component communicates through, so the
/// whole value is `Send` (compile-asserted in this crate's tests): a
/// campaign worker thread can build, own and run platforms with no
/// shared-ownership bookkeeping on the tick path.
pub struct Platform {
    clock: ClockConfig,
    net: LinkArena,
    map: Arc<AddressMap>,
    masters: Vec<Master>,
    interconnect: Box<dyn Interconnect>,
    slaves: Vec<Slave>,
    traces: Vec<Option<SharedTrace>>,
    now: Cycle,
    skipping: bool,
    active_sched: bool,
    skipped_cycles: Cycle,
    ticked_cycles: Cycle,
    visited_component_cycles: u64,
    metrics: Option<MetricsRecorder>,
}

impl Platform {
    /// The platform's clock.
    pub fn clock(&self) -> ClockConfig {
        self.clock
    }

    /// The system address map.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// The number of masters.
    pub fn num_masters(&self) -> usize {
        self.masters.len()
    }

    /// Enables or disables event-horizon cycle skipping for this
    /// platform, overriding the `NTG_NO_SKIP` environment default.
    ///
    /// Skipping is a pure wall-time optimisation: reported cycle counts,
    /// statistics and traces are bit-identical either way (the
    /// equivalence tests in `ntg-bench` pin this down).
    pub fn set_cycle_skipping(&mut self, on: bool) {
        self.skipping = on;
    }

    /// Enables or disables O(active)-component scheduling for this
    /// platform, overriding the `NTG_NO_ACTIVE_SCHED` environment
    /// default. Only effective while cycle skipping is on (the sparse
    /// loop is built on the same `skip` catch-up contract); like
    /// skipping itself it is a pure wall-time optimisation — reported
    /// cycles, statistics and traces are bit-identical either way.
    pub fn set_active_scheduling(&mut self, on: bool) {
        self.active_sched = on;
    }

    /// Enables metrics collection for this platform's subsequent runs.
    ///
    /// Opt-in and allocation-bounded: the recorder is allocated here,
    /// once; per-cycle sampling only updates counters, and the run
    /// report gains a [`MetricsReport`] (fabric utilization windows,
    /// arbitration contention, semaphore counters). With metrics off
    /// the loops pay a single `Option` branch per visited cycle.
    pub fn enable_metrics(&mut self) {
        // 1024-cycle windows, 64-slot buffer: ~65k cycles before the
        // first in-place merge, bounded memory forever after.
        self.metrics = Some(MetricsRecorder {
            busy: WindowSeries::new("fabric_busy", 1024, 64),
            last_util: self.interconnect.utilization_cycles(),
        });
    }

    /// Samples per-cycle-window metrics; called once per visited cycle
    /// (and once per horizon jump, attributing the stretch to its first
    /// cycle). One branch when metrics are off; alloc-free when on.
    #[inline]
    fn sample_metrics(&mut self, now: Cycle) {
        if let Some(rec) = &mut self.metrics {
            let util = self.interconnect.utilization_cycles();
            rec.busy.record(now, util - rec.last_util);
            rec.last_util = util;
        }
    }

    /// Builds the report-time metrics summary, if collection is on.
    fn metrics_report(&self) -> Option<MetricsReport> {
        let rec = self.metrics.as_ref()?;
        let contention = self.interconnect.contention();
        let sem_idx = self.masters.len() + 2;
        let (sem_acquisitions, sem_failed_polls, sem_releases) = match &self.slaves[sem_idx] {
            Slave::Sem(s) => (s.acquisitions(), s.failed_polls(), s.releases()),
            Slave::Mem(_) => (0, 0, 0),
        };
        Some(MetricsReport {
            fabric_utilization_cycles: self.interconnect.utilization_cycles(),
            conflicts: contention.conflicts,
            grant_wait_count: contention.grant_wait.count(),
            grant_wait_sum: contention.grant_wait.sum(),
            grant_wait_max: contention.grant_wait.max().unwrap_or(0),
            links: contention.links,
            sem_acquisitions,
            sem_failed_polls,
            sem_releases,
            busy_window_cycles: rec.busy.window_cycles(),
            busy_windows: rec.busy.collect(),
        })
    }

    /// True when every master has halted and all traffic has drained.
    fn quiesced(&self) -> bool {
        self.masters.iter().all(Master::halted)
            && self.interconnect.is_idle(&self.net)
            && self.slaves.iter().all(|s| s.is_idle(&self.net))
    }

    /// The earliest cycle at which any component may act, capped at
    /// `end`, or `None` when some component is busy (or skipping is off)
    /// and the platform must tick cycle by cycle.
    fn horizon(&self, end: Cycle) -> Option<Cycle> {
        if !self.skipping {
            return None;
        }
        let now = self.now;
        let mut h = end;
        // Masters first: they are the only spontaneous actors, so a busy
        // master is the common reason not to jump — bail out early.
        for m in &self.masters {
            match m.as_component_ref().next_activity(now, &self.net) {
                Activity::Busy => return None,
                Activity::IdleUntil(w) => h = h.min(w),
                Activity::Drained => {}
            }
        }
        match self.interconnect.next_activity(now, &self.net) {
            Activity::Busy => return None,
            Activity::IdleUntil(w) => h = h.min(w),
            Activity::Drained => {}
        }
        for s in &self.slaves {
            match s.as_component_ref().next_activity(now, &self.net) {
                Activity::Busy => return None,
                Activity::IdleUntil(w) => h = h.min(w),
                Activity::Drained => {}
            }
        }
        (h > now).then_some(h)
    }

    /// Runs until every master has halted and all traffic has drained,
    /// or `max_cycles` is reached.
    ///
    /// The termination predicate is evaluated exactly, every iteration —
    /// the reported cycle count is the first quiescent cycle. Idle
    /// stretches where no component has work before a known wake cycle
    /// are fast-forwarded in one jump (event-horizon cycle skipping;
    /// disable with `NTG_NO_SKIP=1` or
    /// [`set_cycle_skipping`](Self::set_cycle_skipping)); skipping never
    /// changes reported cycles, statistics or traces, only wall time.
    pub fn run(&mut self, max_cycles: Cycle) -> RunReport {
        if self.skipping && self.active_sched {
            return self.run_sparse(max_cycles);
        }
        // Ceiling for the exponential horizon-poll backoff. While the
        // platform stays busy each poll fails after touching every
        // component; backing off caps that overhead at ~1/64th of a tick
        // without affecting results — ticking through a skippable cycle
        // is bit-identical to jumping it, we only defer the jump.
        const MAX_POLL_BACKOFF: Cycle = 64;
        let start = Instant::now();
        let mut completed = false;
        let mut poll_at = self.now;
        let mut backoff: Cycle = 1;
        while self.now < max_cycles {
            if self.quiesced() {
                completed = true;
                break;
            }
            if self.now >= poll_at {
                if let Some(next) = self.horizon(max_cycles) {
                    let now = self.now;
                    for m in &mut self.masters {
                        m.as_component().skip(now, next, &mut self.net);
                    }
                    self.interconnect.skip(now, next, &mut self.net);
                    for s in &mut self.slaves {
                        s.as_component().skip(now, next, &mut self.net);
                    }
                    self.skipped_cycles += next - now;
                    self.sample_metrics(now);
                    self.now = next;
                    backoff = 1;
                    poll_at = self.now;
                    continue;
                }
                backoff = (backoff * 2).min(MAX_POLL_BACKOFF);
                poll_at = self.now + backoff;
            }
            let now = self.now;
            for m in &mut self.masters {
                m.tick(now, &mut self.net);
            }
            self.interconnect.tick(now, &mut self.net);
            for s in &mut self.slaves {
                s.tick(now, &mut self.net);
            }
            self.sample_metrics(now);
            self.visited_component_cycles += self.components() as u64;
            self.ticked_cycles += 1;
            self.now += 1;
        }
        if !completed && self.quiesced() {
            completed = true;
        }
        // Close the metrics windows up to the finish cycle: every engine
        // records a final (possibly zero) sample at `self.now`, so the
        // window structure depends only on where the run ended, not on
        // where each engine's last jump happened to start.
        self.sample_metrics(self.now);
        self.build_report(completed, start.elapsed(), None)
    }

    /// Total components in the platform (masters + fabric + slaves) —
    /// the per-cycle denominator of the sparse-visit ratio.
    fn components(&self) -> usize {
        self.masters.len() + 1 + self.slaves.len()
    }

    /// The sparse O(active) variant of [`run`](Self::run): per-component
    /// wake tracking replaces the all-components horizon scan.
    ///
    /// Masters and slaves live in an [`ActiveSet`] keyed by their
    /// `next_activity` hints; a ticked cycle visits only the components
    /// whose wake arrived (plus `Busy` ones), and a sleeper is caught up
    /// through its `skip` contract when next visited. The interconnect
    /// is *not* scheduled — it ticks on every visited cycle and its hint
    /// is consulted only when everything else sleeps, which keeps this
    /// loop's skipped/ticked split identical to the partitioned
    /// engine's (whose regions cannot observe remote fabric state).
    /// Results are bit-identical to the dense loop; only the work per
    /// ticked cycle changes.
    fn run_sparse(&mut self, max_cycles: Cycle) -> RunReport {
        let start = Instant::now();
        let n_m = self.masters.len();
        let start_now = self.now;
        let mut sched = ActiveSet::new(n_m + self.slaves.len());
        if start_now > 0 {
            // Align the (empty) wheel's cursor with a resumed platform.
            sched.advance(start_now);
        }
        for (m, master) in self.masters.iter().enumerate() {
            let hint = master
                .as_component_ref()
                .next_activity(start_now, &self.net);
            sched.seed(m as u32, hint, start_now);
        }
        for (s, slave) in self.slaves.iter().enumerate() {
            let hint = slave.as_component_ref().next_activity(start_now, &self.net);
            sched.seed((n_m + s) as u32, hint, start_now);
        }
        // O(1) gate in front of the full quiesce predicate: quiescence
        // requires every master halted, and halting only happens inside
        // a master's tick, where the counter is maintained.
        let mut live_masters = self.masters.iter().filter(|m| !m.halted()).count();
        self.net.set_wake_logging(true);
        self.interconnect.set_event_driven(true);
        let ticked_before = self.ticked_cycles;
        let mut tokens: Vec<u32> = Vec::new();
        let mut visit_buf: Vec<u32> = Vec::with_capacity(sched.components());
        let mut completed = false;
        while self.now < max_cycles {
            if live_masters == 0 && self.quiesced() {
                completed = true;
                break;
            }
            let now = self.now;
            if sched.idle() {
                // Everything with timed work sleeps in the wheel, so
                // the fabric is the only possible actor: one hint check
                // replaces the dense engine's full-platform horizon
                // fold. Sleepers catch up lazily when next visited;
                // only the fabric is fast-forwarded eagerly, exactly
                // like the partitioned engine's skip rounds.
                let mut target = sched.next_wake().unwrap_or(max_cycles).min(max_cycles);
                match self.interconnect.next_activity(now, &self.net) {
                    Activity::Busy => target = now,
                    Activity::IdleUntil(w) => target = target.min(w.max(now)),
                    Activity::Drained => {}
                }
                if target > now {
                    self.interconnect.skip(now, target, &mut self.net);
                    self.skipped_cycles += target - now;
                    self.sample_metrics(now);
                    self.now = target;
                    sched.advance(target);
                    continue;
                }
            }
            visit_buf.clear();
            visit_buf.extend_from_slice(sched.visit(now));
            let split = visit_buf.partition_point(|&id| (id as usize) < n_m);
            for &id in &visit_buf[..split] {
                let i = id as usize;
                if let Some(since) = sched.take_catch_up(id, now) {
                    self.masters[i]
                        .as_component()
                        .skip(since, now, &mut self.net);
                }
                let was_halted = self.masters[i].halted();
                self.masters[i].tick(now, &mut self.net);
                if !was_halted && self.masters[i].halted() {
                    live_masters -= 1;
                }
            }
            self.interconnect.tick(now, &mut self.net);
            for &id in &visit_buf[split..] {
                let i = id as usize - n_m;
                if let Some(since) = sched.take_catch_up(id, now) {
                    self.slaves[i]
                        .as_component()
                        .skip(since, now, &mut self.net);
                }
                self.slaves[i].tick(now, &mut self.net);
            }
            let next = now + 1;
            for &id in &visit_buf {
                let i = id as usize;
                let hint = if i < n_m {
                    self.masters[i]
                        .as_component_ref()
                        .next_activity(next, &self.net)
                } else {
                    self.slaves[i - n_m]
                        .as_component_ref()
                        .next_activity(next, &self.net)
                };
                sched.reinsert(id, hint, next);
            }
            // Producer touches this cycle become visible at `next`;
            // route each to its reader. Component ids coincide with
            // link ids by construction (master `m` owns link `m`, slave
            // `s` owns link `n_m + s`), so a component-side wake is
            // just the link index.
            self.net.drain_wakes(&mut |t| tokens.push(t));
            for &t in &tokens {
                let (link, master_side) = wake_token(t);
                let l = link.index();
                let to_fabric = if l < n_m { !master_side } else { master_side };
                if to_fabric {
                    self.interconnect.wake_link(link);
                } else {
                    sched.wake(l as u32, next);
                }
            }
            tokens.clear();
            sched.end_cycle(now);
            self.sample_metrics(now);
            self.ticked_cycles += 1;
            self.now = next;
        }
        if !completed && self.quiesced() {
            completed = true;
        }
        // Settle every sleeper's bookkeeping up to the finish cycle so
        // reports and traces observe exactly the dense engine's state.
        let final_now = self.now;
        sched.drain_catch_ups(final_now, |id, since| {
            let i = id as usize;
            if i < n_m {
                self.masters[i]
                    .as_component()
                    .skip(since, final_now, &mut self.net);
            } else {
                self.slaves[i - n_m]
                    .as_component()
                    .skip(since, final_now, &mut self.net);
            }
        });
        self.net.set_wake_logging(false);
        self.interconnect.set_event_driven(false);
        // The fabric is visited once per ticked cycle on top of the
        // scheduler's master/slave visits.
        self.visited_component_cycles +=
            sched.visited_component_cycles() + (self.ticked_cycles - ticked_before);
        self.sample_metrics(self.now);
        self.build_report(completed, start.elapsed(), None)
    }

    /// Assembles the [`RunReport`] of a finished run — shared by the
    /// serial loop above and the partitioned scheduler
    /// ([`run_with_threads`](Self::run_with_threads)), which must
    /// produce byte-identical reports apart from the diagnostic
    /// `wall_time`/`partition` fields.
    fn build_report(
        &self,
        completed: bool,
        wall_time: std::time::Duration,
        partition: Option<crate::report::PartitionReport>,
    ) -> RunReport {
        RunReport {
            completed,
            cycles: self.now,
            finish_cycles: self.masters.iter().map(Master::halt_cycle).collect(),
            wall_time,
            masters: self.masters.iter().map(Master::report).collect(),
            faults: self.masters.iter().filter_map(Master::fault).collect(),
            transactions: self.interconnect.transactions(),
            latency: self.interconnect.latency_summary(),
            tg_reused: None,
            skipped_cycles: self.skipped_cycles,
            ticked_cycles: self.ticked_cycles,
            visited_component_cycles: self.visited_component_cycles,
            total_component_cycles: self.components() as u64 * self.now,
            metrics: self.metrics_report(),
            partition,
        }
    }

    /// Ticks every component for exactly `cycles` cycles, without cycle
    /// skipping and without building a [`RunReport`].
    ///
    /// This is the measurement primitive for allocation accounting: a
    /// caller can warm a platform up, snapshot an allocation counter,
    /// `step` further, and attribute every allocation in between to the
    /// ticked hot path — `run`'s report construction would otherwise
    /// pollute the count. Ticking is bit-identical to what `run` does
    /// when no skip fires, so interleaving `step` and `run` is safe.
    pub fn step(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            if self.quiesced() {
                break;
            }
            let now = self.now;
            for m in &mut self.masters {
                m.tick(now, &mut self.net);
            }
            self.interconnect.tick(now, &mut self.net);
            for s in &mut self.slaves {
                s.tick(now, &mut self.net);
            }
            self.sample_metrics(now);
            self.visited_component_cycles += self.components() as u64;
            self.ticked_cycles += 1;
            self.now += 1;
        }
    }

    /// True when every master has halted and all traffic has drained —
    /// the same predicate [`run`](Self::run) terminates on.
    pub fn is_quiesced(&self) -> bool {
        self.quiesced()
    }

    /// The trace recorded at master `core`'s interface, if tracing was
    /// enabled.
    ///
    /// The returned trace carries the core's completion timestamp
    /// (`HALT`) when the master has halted, which the translator needs to
    /// reproduce trailing compute time (think Cacheloop, which computes
    /// for millions of cycles after its last bus transaction).
    pub fn trace(&self, core: usize) -> Option<MasterTrace> {
        let shared = self.traces.get(core).and_then(|t| t.as_ref())?;
        let mut trace = shared.lock().unwrap().clone();
        trace.halt_at = self.masters[core]
            .halt_cycle()
            .map(|c| self.clock.cycles_to_ns(c));
        Some(trace)
    }

    /// All recorded traces (empty if tracing was off).
    pub fn traces(&self) -> Vec<MasterTrace> {
        (0..self.masters.len())
            .filter_map(|c| self.trace(c))
            .collect()
    }

    /// The translator configuration matching this platform's memory map
    /// — the "platform knowledge" of the paper (§3): pollable ranges.
    pub fn translator_config(&self, mode: TranslationMode) -> TranslatorConfig {
        TranslatorConfig {
            pollable: self.map.pollable_ranges(),
            mode,
            loop_forever: false,
            poll_idle: 0,
        }
    }

    /// Translates every master's recorded trace into a symbolic TG
    /// program — step 2 of the paper flow, after a traced reference run.
    ///
    /// # Errors
    ///
    /// Returns [`TraceTranslationError::TracingDisabled`] if tracing was
    /// not enabled on some master, or the underlying
    /// [`TranslationError`] for a malformed trace.
    pub fn translate_traces(
        &self,
        mode: TranslationMode,
    ) -> Result<Vec<TgProgram>, TraceTranslationError> {
        let translator = TraceTranslator::new(self.translator_config(mode));
        (0..self.masters.len())
            .map(|core| {
                let trace = self
                    .trace(core)
                    .ok_or(TraceTranslationError::TracingDisabled { core })?;
                translator
                    .translate(&trace)
                    .map_err(TraceTranslationError::Translation)
            })
            .collect()
    }

    /// Replays one set of **already-assembled** TG images across several
    /// interconnect candidates — the paper's design-space-exploration
    /// loop (§1) without re-tracing or re-translating per run.
    ///
    /// `configure` is applied to each fresh builder before the images are
    /// added (use it for preloads, clock or memory-size overrides).
    /// Every returned [`RunReport`] has
    /// [`tg_reused`](RunReport::tg_reused) set: `Some(false)` for the
    /// first fabric (the images' first use), `Some(true)` for every
    /// subsequent one — the per-run cache-hit accounting the campaign
    /// engine (`ntg-explore`) aggregates.
    ///
    /// Runs are *bounded*, not checked: a design point may legitimately
    /// never complete (e.g. static-priority arbitration starving a lock
    /// holder), which shows up as `completed == false`.
    ///
    /// # Errors
    ///
    /// Propagates [`PlatformError`] from the per-fabric builds.
    pub fn explore(
        images: &[TgImage],
        fabrics: &[InterconnectChoice],
        max_cycles: Cycle,
        mut configure: impl FnMut(&mut PlatformBuilder),
    ) -> Result<Vec<(InterconnectChoice, RunReport)>, PlatformError> {
        let mut out = Vec::with_capacity(fabrics.len());
        for (i, &fabric) in fabrics.iter().enumerate() {
            let mut b = PlatformBuilder::new();
            configure(&mut b);
            b.interconnect(fabric);
            for image in images {
                b.add_tg(image.clone());
            }
            let mut platform = b.build()?;
            let mut report = platform.run(max_cycles);
            report.tg_reused = Some(i > 0);
            out.push((fabric, report));
        }
        Ok(out)
    }

    /// Host-side view of a shared-memory word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside shared memory.
    pub fn peek_shared(&self, addr: u32) -> u32 {
        let idx = self.masters.len(); // shared memory slave index
        let Slave::Mem(m) = &self.slaves[idx] else {
            unreachable!("slave {idx} is the shared memory")
        };
        m.peek(addr)
    }

    /// Host-side view of a private-memory word of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside that core's private memory.
    pub fn peek_private(&self, core: usize, addr: u32) -> u32 {
        let Slave::Mem(m) = &self.slaves[core] else {
            unreachable!("slave {core} is a private memory")
        };
        m.peek(addr)
    }

    /// Host-side view of semaphore cell `n`.
    pub fn peek_semaphore(&self, n: usize) -> u32 {
        let idx = self.masters.len() + 2;
        let Slave::Sem(s) = &self.slaves[idx] else {
            unreachable!("last slave is the semaphore bank")
        };
        s.peek_cell(n)
    }

    /// Scheduler statistics of a multitasking TG socket, if master
    /// `core` is one.
    pub fn scheduler_stats(&self, core: usize) -> Option<ntg_core::SchedulerStats> {
        match &self.masters[core] {
            Master::TgMulti(m) => Some(m.scheduler_stats()),
            _ => None,
        }
    }

    /// `(mean, max)` of the interconnect's characteristic latency metric
    /// in cycles, if the model records one (bus occupancy / packet
    /// latency).
    pub fn interconnect_latency(&self) -> Option<(f64, u64)> {
        self.interconnect.latency_summary()
    }

    /// Total transactions the interconnect carried.
    pub fn interconnect_transactions(&self) -> u64 {
        self.interconnect.transactions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_cpu::isa::{R1, R2};
    use ntg_cpu::Asm;

    fn store_program(core: usize, value: u32) -> Program {
        let mut a = Asm::new();
        a.li(R1, value);
        a.li(R2, mem_map::SHARED_BASE + (core as u32) * 4);
        a.stw(R1, R2, 0);
        a.halt();
        a.assemble(mem_map::private_base(core)).unwrap()
    }

    /// Compile-time proof that a fully wired platform can migrate to a
    /// campaign worker thread: every master, slave, interconnect, trace
    /// sink and the link arena itself must be `Send`.
    #[test]
    fn platform_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Platform>();
        assert_send::<PlatformBuilder>();
    }

    /// The runtime counterpart of [`platform_is_send`]: a platform built
    /// on one thread migrates to another and runs there, and two
    /// platforms run concurrently without interfering — the campaign
    /// runner's whole worker model in miniature.
    #[test]
    fn platforms_built_here_run_on_other_threads() {
        let build = |value: u32| {
            PlatformBuilder::new()
                .add_cpu(store_program(0, value))
                .build()
                .unwrap()
        };
        let mut a = build(7);
        let mut b = build(11);
        let (ra, rb) = std::thread::scope(|s| {
            let ta = s.spawn(move || {
                let r = a.run(100_000);
                (r, a.peek_shared(mem_map::SHARED_BASE))
            });
            let tb = s.spawn(move || {
                let r = b.run(100_000);
                (r, b.peek_shared(mem_map::SHARED_BASE))
            });
            (ta.join().unwrap(), tb.join().unwrap())
        });
        assert!(ra.0.completed && rb.0.completed);
        assert_eq!(ra.1, 7);
        assert_eq!(rb.1, 11);
        assert_eq!(
            ra.0.execution_time(),
            rb.0.execution_time(),
            "identical workloads must time identically regardless of thread"
        );
    }

    #[test]
    fn single_core_runs_to_completion() {
        let mut p = PlatformBuilder::new()
            .add_cpu(store_program(0, 42))
            .build()
            .unwrap();
        let report = p.run(100_000);
        assert!(report.completed);
        assert!(report.faults.is_empty());
        assert_eq!(p.peek_shared(mem_map::SHARED_BASE), 42);
        assert!(report.execution_time().unwrap() > 0);
    }

    #[test]
    fn four_cores_all_write_their_slots() {
        for choice in [
            InterconnectChoice::Amba,
            InterconnectChoice::Crossbar,
            InterconnectChoice::Xpipes,
            InterconnectChoice::Ideal,
        ] {
            let mut b = PlatformBuilder::new();
            b.interconnect(choice);
            for core in 0..4 {
                b.add_cpu(store_program(core, 100 + core as u32));
            }
            let mut p = b.build().unwrap();
            let report = p.run(1_000_000);
            assert!(report.completed, "{choice} did not complete");
            for core in 0..4 {
                assert_eq!(
                    p.peek_shared(mem_map::SHARED_BASE + core as u32 * 4),
                    100 + core as u32,
                    "{choice} core {core}"
                );
            }
        }
    }

    #[test]
    fn tracing_captures_each_master() {
        let mut b = PlatformBuilder::new();
        b.tracing(true);
        b.add_cpu(store_program(0, 1));
        b.add_cpu(store_program(1, 2));
        let mut p = b.build().unwrap();
        p.run(100_000);
        let traces = p.traces();
        assert_eq!(traces.len(), 2);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.master, i as u16);
            let txs = t.transactions().unwrap();
            // At least: icache refills + the store.
            assert!(!txs.is_empty());
            assert!(txs.iter().any(|tx| tx.cmd.is_write()));
        }
    }

    #[test]
    fn no_masters_is_an_error() {
        assert_eq!(
            PlatformBuilder::new().build().err(),
            Some(PlatformError::NoMasters)
        );
    }

    #[test]
    fn misplaced_program_is_an_error() {
        // Program assembled for core 1's base, loaded into core 0's
        // socket.
        let program = store_program(1, 7);
        let err = PlatformBuilder::new().add_cpu(program).build().err();
        assert_eq!(err, Some(PlatformError::ProgramOutsidePrivate { core: 0 }));
    }

    #[test]
    fn incomplete_run_reports_unfinished_masters() {
        // An infinite loop never halts.
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let program = a.assemble(mem_map::private_base(0)).unwrap();
        let mut p = PlatformBuilder::new().add_cpu(program).build().unwrap();
        let report = p.run(5_000);
        assert!(!report.completed);
        assert_eq!(report.finish_cycles, vec![None]);
        assert_eq!(report.execution_time(), None);
    }

    #[test]
    fn metrics_are_opt_in_and_do_not_perturb_timing() {
        let build = || {
            let mut b = PlatformBuilder::new();
            for core in 0..2 {
                b.add_cpu(store_program(core, core as u32));
            }
            b.build().unwrap()
        };
        let mut plain = build();
        let base = plain.run(1_000_000);
        assert!(base.metrics.is_none(), "metrics must be opt-in");

        let mut observed = build();
        observed.enable_metrics();
        let report = observed.run(1_000_000);
        let m = report.metrics.as_ref().expect("metrics were enabled");
        assert_eq!(report.cycles, base.cycles, "observation must be passive");
        assert_eq!(report.finish_cycles, base.finish_cycles);
        assert!(m.fabric_utilization_cycles > 0);
        assert_eq!(m.links.len(), 2);
        assert!(m.links.iter().all(|l| l.grants > 0));
        // The windowed series partitions exactly the same busy cycles.
        assert_eq!(
            m.busy_windows.iter().sum::<u64>(),
            m.fabric_utilization_cycles
        );
        assert!(m.grant_wait_count > 0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let build = || {
            let mut b = PlatformBuilder::new();
            for core in 0..3 {
                b.add_cpu(store_program(core, core as u32));
            }
            b.build().unwrap()
        };
        let r1 = build().run(1_000_000);
        let r2 = build().run(1_000_000);
        assert_eq!(r1.finish_cycles, r2.finish_cycles);
        assert_eq!(r1.cycles, r2.cycles);
    }
}
