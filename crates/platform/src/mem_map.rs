//! The platform's fixed memory map.
//!
//! Mirrors the MPARM layout in spirit: every master owns a private
//! memory (cacheable), and all masters share an uncached shared memory, a
//! synchronisation-flag region (uncached, *pollable*) and a hardware
//! semaphore bank (uncached, pollable, test-and-set semantics).
//!
//! | region | base | size |
//! |--------|------|------|
//! | private memory of core *i* | `0x0100_0000 + i × 0x0010_0000` | configurable (≤ 1 MiB) |
//! | shared memory | `0x1900_0000` | configurable |
//! | sync flags | `0x1A00_0000` | configurable |
//! | semaphores | `0x1B00_0000` | one word per semaphore |

use ntg_mem::{AddressMap, MapError, RegionKind};
use ntg_ocp::SlaveId;

/// Base address of core 0's private memory.
pub const PRIVATE_BASE: u32 = 0x0100_0000;
/// Address stride between consecutive cores' private memories.
pub const PRIVATE_STRIDE: u32 = 0x0010_0000;
/// Base address of the shared memory.
pub const SHARED_BASE: u32 = 0x1900_0000;
/// Base address of the synchronisation-flag region.
pub const SYNC_BASE: u32 = 0x1A00_0000;
/// Base address of the semaphore bank.
pub const SEM_BASE: u32 = 0x1B00_0000;

/// Base address of core `core`'s private memory.
pub const fn private_base(core: usize) -> u32 {
    PRIVATE_BASE + (core as u32) * PRIVATE_STRIDE
}

/// Byte address of semaphore cell `n`.
pub const fn semaphore(n: u32) -> u32 {
    SEM_BASE + n * 4
}

/// Byte address of sync-flag word `n`.
pub const fn sync_flag(n: u32) -> u32 {
    SYNC_BASE + n * 4
}

/// Slave index of core `core`'s private memory (slave ids are assigned
/// private memories first, then shared, sync, semaphores).
pub const fn private_slave(core: usize) -> SlaveId {
    SlaveId(core as u16)
}

/// Builds the [`AddressMap`] for a platform with `cores` masters.
///
/// # Errors
///
/// Propagates [`MapError`] if the sizes are invalid (misaligned, zero, or
/// large enough to overlap the next region).
pub fn build_map(
    cores: usize,
    private_bytes: u32,
    shared_bytes: u32,
    sync_bytes: u32,
    semaphores: u32,
) -> Result<AddressMap, MapError> {
    let mut map = AddressMap::new();
    for core in 0..cores {
        map.add(
            format!("private{core}"),
            private_base(core),
            private_bytes,
            private_slave(core),
            RegionKind::PrivateMemory,
        )?;
    }
    let n = cores as u16;
    map.add(
        "shared",
        SHARED_BASE,
        shared_bytes,
        SlaveId(n),
        RegionKind::SharedMemory,
    )?;
    map.add(
        "sync",
        SYNC_BASE,
        sync_bytes,
        SlaveId(n + 1),
        RegionKind::SyncFlags,
    )?;
    map.add(
        "sem",
        SEM_BASE,
        semaphores * 4,
        SlaveId(n + 2),
        RegionKind::Semaphore,
    )?;
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_for_four_cores_decodes_all_regions() {
        let map = build_map(4, 0x10000, 0x10000, 0x1000, 32).unwrap();
        assert_eq!(map.slave_for(private_base(0)), Some(SlaveId(0)));
        assert_eq!(map.slave_for(private_base(3)), Some(SlaveId(3)));
        assert_eq!(map.slave_for(SHARED_BASE), Some(SlaveId(4)));
        assert_eq!(map.slave_for(SYNC_BASE), Some(SlaveId(5)));
        assert_eq!(map.slave_for(semaphore(31)), Some(SlaveId(6)));
        assert_eq!(map.slave_for(semaphore(32)), None);
    }

    #[test]
    fn attributes_are_mparm_like() {
        let map = build_map(2, 0x10000, 0x10000, 0x1000, 8).unwrap();
        assert!(map.is_cacheable(private_base(1)));
        assert!(!map.is_cacheable(SHARED_BASE));
        assert!(!map.is_pollable(SHARED_BASE));
        assert!(map.is_pollable(SYNC_BASE));
        assert!(map.is_pollable(semaphore(0)));
        assert_eq!(map.pollable_ranges().len(), 2);
    }

    #[test]
    fn oversized_private_memory_rejected() {
        // 2 MiB private memory would overlap core 1's region.
        assert!(build_map(2, 0x20_0000, 0x1000, 0x1000, 8).is_err());
    }

    #[test]
    fn twelve_cores_fit() {
        // The paper scales to 12 processors; the map must too.
        let map = build_map(12, PRIVATE_STRIDE, 0x10000, 0x1000, 64).unwrap();
        assert_eq!(map.slave_for(private_base(11)), Some(SlaveId(11)));
    }
}
