//! Campaign-service integration tests: a served campaign is
//! byte-identical to a local run, a warm remote store means zero
//! rebuilds, resubmission is idempotent across daemon restarts, a
//! daemon killed mid-campaign resumes from shard journals, and remote
//! corruption degrades to a local rebuild.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ntg_explore::{
    run_campaign, shard_path, CampaignSpec, CoreSelection, Json, MasterChoice, RunOptions,
};
use ntg_platform::InterconnectChoice;
use ntg_serve::http::{self, Handler, Server};
use ntg_serve::{HttpRemote, JobServer, ServerConfig};
use ntg_workloads::Workload;

/// 6 jobs, 2 distinct traces, 2 distinct TG image sets — small enough
/// to run in seconds, rich enough to exercise the artifact tiers.
fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("service-test");
    spec.workloads = vec![
        Workload::MpMatrix { n: 8 },
        Workload::Cacheloop { iterations: 500 },
    ];
    spec.cores = CoreSelection::List(vec![2]);
    spec.interconnects = vec![InterconnectChoice::Amba];
    spec.masters = vec![
        MasterChoice::Cpu,
        MasterChoice::Tg,
        MasterChoice::Stochastic,
    ];
    spec
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ntg-serve-tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A daemon bound to an ephemeral loopback port, serving until the
/// returned guard is dropped.
struct Daemon {
    addr: String,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start(data: &Path, workers: usize) -> Self {
        let server = JobServer::open(ServerConfig {
            data: data.to_path_buf(),
            workers,
            store: None,
            remote: None,
            quiet: true,
        })
        .unwrap();
        let listener = Server::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handler: Arc<Handler> = Arc::new(move |req| server.handle(&req));
        let flag = shutdown.clone();
        let thread = std::thread::spawn(move || listener.serve(handler, flag));
        Daemon {
            addr,
            shutdown,
            thread: Some(thread),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn get_ok(addr: &str, path: &str) -> Vec<u8> {
    let (status, body) = http::get(addr, path).unwrap();
    assert_eq!(
        status,
        200,
        "GET {path}: {}",
        String::from_utf8_lossy(&body)
    );
    body
}

/// Submits the spec and returns `(status, job id, state label)`.
fn submit(addr: &str, spec: &CampaignSpec) -> (u16, String, String) {
    let (status, body) = http::post_json(addr, "/jobs", &spec.to_json().render()).unwrap();
    let v = Json::parse(&String::from_utf8_lossy(&body)).unwrap();
    (
        status,
        v.get("id").and_then(Json::as_str).unwrap().to_string(),
        v.get("state").and_then(Json::as_str).unwrap().to_string(),
    )
}

fn wait_done(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let body = get_ok(addr, &format!("/jobs/{id}"));
        let v = Json::parse(&String::from_utf8_lossy(&body)).unwrap();
        match v.get("state").and_then(Json::as_str).unwrap() {
            "done" => return,
            "failed" => panic!(
                "job {id} failed: {}",
                v.get("error").and_then(Json::as_str).unwrap_or("")
            ),
            _ => {
                assert!(Instant::now() < deadline, "job {id} did not finish");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Local single-process ground truth for [`spec`], no store involved.
fn local_ground_truth(dir: &Path) -> Vec<u8> {
    let out = dir.join("local.jsonl");
    run_campaign(
        &spec(),
        &RunOptions {
            threads: 2,
            out: Some(out.clone()),
            quiet: true,
            ..RunOptions::default()
        },
    )
    .unwrap();
    fs::read(out).unwrap()
}

#[test]
fn served_campaign_is_byte_identical_to_a_local_run() {
    let dir = scratch("identity");
    let daemon = Daemon::start(&dir.join("data"), 2);

    let (status, id, _) = submit(&daemon.addr, &spec());
    assert_eq!(status, 202, "fresh submit is accepted");
    assert_eq!(id, format!("{:016x}", spec().fingerprint()));
    wait_done(&daemon.addr, &id);

    let served = get_ok(&daemon.addr, &format!("/jobs/{id}/results"));
    assert_eq!(
        served,
        local_ground_truth(&dir),
        "served canonical bytes must match a local run"
    );

    // Progress events cover the whole lifecycle and end with `done`.
    let events = String::from_utf8(get_ok(&daemon.addr, &format!("/jobs/{id}/events"))).unwrap();
    for needle in ["\"queued\"", "\"started\"", "\"shard_done\"", "\"merged\""] {
        assert!(events.contains(needle), "missing {needle} in:\n{events}");
    }
    assert!(
        events.trim_end().ends_with(r#""event":"done"}"#),
        "{events}"
    );

    // The report endpoints render from the merged results + sidecars.
    let table2 =
        String::from_utf8(get_ok(&daemon.addr, &format!("/jobs/{id}/report/table2"))).unwrap();
    assert!(table2.contains("mp_matrix"), "{table2}");
    let md = get_ok(&daemon.addr, &format!("/jobs/{id}/report/markdown"));
    assert!(!md.is_empty());
    let (status, _) = http::get(&daemon.addr, &format!("/jobs/{id}/report/nonsense")).unwrap();
    assert_eq!(status, 400, "unknown view is a client error");

    // Timing sidecars were merged (one header, one line per job).
    let timings = String::from_utf8(get_ok(&daemon.addr, &format!("/jobs/{id}/timings"))).unwrap();
    assert_eq!(timings.lines().count(), 1 + 6, "header + 6 job timings");
}

#[test]
fn resubmit_is_idempotent_and_a_restarted_daemon_adopts_finished_jobs() {
    let dir = scratch("adopt");
    let data = dir.join("data");
    let first = {
        let daemon = Daemon::start(&data, 2);
        let (_, id, _) = submit(&daemon.addr, &spec());
        wait_done(&daemon.addr, &id);
        // Same daemon, same spec: joined, not re-run.
        let (status, id2, state) = submit(&daemon.addr, &spec());
        assert_eq!(
            (status, id2.as_str(), state.as_str()),
            (200, id.as_str(), "done")
        );
        get_ok(&daemon.addr, &format!("/jobs/{id}/results"))
    };

    // A fresh daemon process over the same data dir knows nothing until
    // the spec is resubmitted — then it adopts the finished canonical
    // file instead of re-running.
    let daemon = Daemon::start(&data, 2);
    let id = format!("{:016x}", spec().fingerprint());
    let (status, _) = http::get(&daemon.addr, &format!("/jobs/{id}")).unwrap();
    assert_eq!(status, 404, "restart forgets in-memory state");
    let (status, id2, state) = submit(&daemon.addr, &spec());
    assert_eq!(
        (status, state.as_str()),
        (200, "done"),
        "adopted, not re-run"
    );
    let events = String::from_utf8(get_ok(&daemon.addr, &format!("/jobs/{id2}/events"))).unwrap();
    assert!(events.contains("\"adopted\""), "{events}");
    assert_eq!(get_ok(&daemon.addr, &format!("/jobs/{id2}/results")), first);
}

/// A daemon killed mid-campaign leaves shard journals behind. The
/// crash is simulated by pre-seeding the job directory with shard 1's
/// finished output (the state after a kill between shards): on
/// resubmission the shard runners run with `resume: true`, replay
/// shard 1 from its journal without executing, and the merged result
/// is still byte-identical to the ground truth.
#[test]
fn resubmission_resumes_from_shard_journals_after_a_crash() {
    let dir = scratch("resume");
    let data = dir.join("data");
    let id = format!("{:016x}", spec().fingerprint());
    let job_dir = data.join("jobs").join(&id);
    fs::create_dir_all(&job_dir).unwrap();

    // Shard 1 of 2, exactly as a 2-worker daemon would have run it.
    let shard1 = shard_path(&job_dir.join("out.jsonl"), (1, 2));
    let outcome = run_campaign(
        &spec(),
        &RunOptions {
            threads: 1,
            out: Some(shard1),
            resume: true,
            quiet: true,
            store: Some(data.join("cache")),
            shard: Some((1, 2)),
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.executed, 3, "shard 1 ran half the campaign");

    let daemon = Daemon::start(&data, 2);
    let (status, id2, _) = submit(&daemon.addr, &spec());
    assert_eq!((status, id2), (202, id.clone()), "unfinished job re-runs");
    wait_done(&daemon.addr, &id);

    let events = String::from_utf8(get_ok(&daemon.addr, &format!("/jobs/{id}/events"))).unwrap();
    let resumed: i64 = events
        .lines()
        .filter(|l| l.contains("\"shard_done\""))
        .filter_map(|l| Json::parse(l).ok())
        .filter_map(|v| v.get("resumed").and_then(Json::as_u64))
        .map(|n| n as i64)
        .sum();
    assert_eq!(resumed, 3, "shard 1's jobs came from the journal: {events}");

    let served = get_ok(&daemon.addr, &format!("/jobs/{id}/results"));
    assert_eq!(
        served,
        local_ground_truth(&dir),
        "resumed merge is byte-true"
    );
}

#[test]
fn warm_remote_store_means_zero_rebuilds() {
    let dir = scratch("remote");
    let daemon = Daemon::start(&dir.join("data"), 1);
    let remote: Arc<HttpRemote> = Arc::new(HttpRemote::new(&daemon.addr));

    let run = |store: &Path, out: &Path| {
        run_campaign(
            &spec(),
            &RunOptions {
                threads: 2,
                out: Some(out.to_path_buf()),
                quiet: true,
                store: Some(store.to_path_buf()),
                remote: Some(remote.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap()
    };

    // Cold everywhere: every artifact is built once and published.
    let cold = run(&dir.join("store-a"), &dir.join("cold.jsonl"));
    assert_eq!(cold.cache.trace_misses, 2);
    assert_eq!(cold.cache.image_misses, 2);
    let snap = cold.cache.remote.expect("remote tier attached");
    assert_eq!(snap.publishes, 4, "2 traces + 2 image sets published");
    assert_eq!(snap.hits, 0);
    assert_eq!(snap.errors, 0);

    // The daemon now holds all four objects.
    let stats =
        Json::parse(&String::from_utf8(get_ok(&daemon.addr, "/store/stats")).unwrap()).unwrap();
    assert_eq!(stats.get("trace_objects").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("image_objects").and_then(Json::as_u64), Some(2));

    // Fresh machine (empty local store), warm remote: zero rebuilds,
    // four remote hits, nothing re-published, identical bytes.
    let warm = run(&dir.join("store-b"), &dir.join("warm.jsonl"));
    assert_eq!(warm.cache.trace_misses, 0, "warm remote must not re-trace");
    assert_eq!(
        warm.cache.image_misses, 0,
        "warm remote must not re-translate"
    );
    let snap = warm.cache.remote.expect("remote tier attached");
    assert_eq!(snap.hits, 4);
    assert_eq!(snap.publishes, 0);
    assert_eq!(
        fs::read(dir.join("cold.jsonl")).unwrap(),
        fs::read(dir.join("warm.jsonl")).unwrap()
    );
}

#[test]
fn corrupt_remote_objects_degrade_to_a_local_rebuild() {
    let dir = scratch("remote-corrupt");
    let data = dir.join("data");
    let daemon = Daemon::start(&data, 1);
    let remote: Arc<HttpRemote> = Arc::new(HttpRemote::new(&daemon.addr));

    let run = |store: &Path, out: &Path| {
        run_campaign(
            &spec(),
            &RunOptions {
                threads: 2,
                out: Some(out.to_path_buf()),
                quiet: true,
                store: Some(store.to_path_buf()),
                remote: Some(remote.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap()
    };
    run(&dir.join("store-a"), &dir.join("cold.jsonl"));

    // Flip a byte in every published trace object on the daemon's disk.
    let mut corrupted = 0;
    for entry in fs::read_dir(data.join("blobs").join("traces")).unwrap() {
        let path = entry.unwrap().path();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        corrupted += 1;
    }
    assert_eq!(corrupted, 2);

    // A fresh machine sees the corruption, counts it, rebuilds locally,
    // and still produces identical campaign bytes.
    let rerun = run(&dir.join("store-b"), &dir.join("rerun.jsonl"));
    assert_eq!(rerun.cache.trace_misses, 2, "corrupt objects rebuilt");
    let snap = rerun.cache.remote.expect("remote tier attached");
    assert_eq!(snap.errors, 2, "each corrupt fetch counted");
    assert_eq!(snap.hits, 2, "image objects were untouched");
    assert_eq!(
        fs::read(dir.join("cold.jsonl")).unwrap(),
        fs::read(dir.join("rerun.jsonl")).unwrap()
    );
}

#[test]
fn store_endpoint_is_write_once_and_rejects_garbage() {
    let dir = scratch("write-once");
    let daemon = Daemon::start(&dir.join("data"), 1);

    let key = "trace|wk|2P|amba|trc1";
    let name = ntg_explore::entry_file_name(ntg_explore::StoreKind::Trace, key);

    // An unframed body never lands in the store.
    let (status, body) =
        http::put(&daemon.addr, &format!("/store/traces/{name}"), b"junk").unwrap();
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));

    // A valid frame under the wrong object name is rejected too.
    let store = ntg_explore::DiskStore::open(dir.join("local")).unwrap();
    store
        .save(ntg_explore::StoreKind::Trace, key, b"payload")
        .unwrap();
    let object = fs::read(store.root().join("traces").join(&name)).unwrap();
    let (status, _) = http::put(&daemon.addr, "/store/traces/other-name.trace", &object).unwrap();
    assert_eq!(status, 400, "name/key binding is enforced");

    // Correctly named: created once, then immutable.
    let (status, _) = http::put(&daemon.addr, &format!("/store/traces/{name}"), &object).unwrap();
    assert_eq!(status, 201);
    let (status, _) = http::put(&daemon.addr, &format!("/store/traces/{name}"), &object).unwrap();
    assert_eq!(status, 200, "second PUT is a no-op, not an error");
    let fetched = get_ok(&daemon.addr, &format!("/store/traces/{name}"));
    assert_eq!(fetched, object);

    let (status, _) = http::get(&daemon.addr, "/store/traces/absent.trace").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http::get(&daemon.addr, "/store/traces/../escape").unwrap();
    assert!(
        matches!(status, 400 | 404),
        "traversal is rejected ({status})"
    );
}
