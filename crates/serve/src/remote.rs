//! The remote artifact tier: server-side blob storage and the HTTP
//! client that plugs into [`DiskStore`] as a [`RemoteTier`].
//!
//! Remote objects are the *framed* store entry bytes — exactly what
//! the local disk level persists (magic, format version, embedded key,
//! FNV-1a checksum) — named by [`entry_file_name`]. That choice makes
//! the corruption firewall end-to-end: the server refuses uploads
//! whose frame doesn't verify or whose embedded key doesn't hash to
//! the object name ([`verify_entry`]), and the client re-verifies
//! every fetched frame against the key it asked for before the bytes
//! touch the local disk tier. A flipped bit anywhere along the path
//! degrades to a local rebuild, never a wrong artifact.
//!
//! Write-once semantics (S3-style immutable objects): the first PUT of
//! a name wins; later PUTs of the same name are acknowledged no-ops.
//! Content addressing makes this safe — two builders producing the
//! same name hold byte-identical payloads by construction.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ntg_explore::store::{entry_file_name, verify_entry};
use ntg_explore::{RemoteTier, StoreKind};

use crate::http;

/// Server-side blob storage: one directory per [`StoreKind`], one file
/// per object, atomically published (tmp + rename) and never mutated.
#[derive(Debug)]
pub struct BlobStore {
    root: PathBuf,
}

impl BlobStore {
    /// Opens (creating if needed) blob storage under `root`.
    ///
    /// # Errors
    ///
    /// Returns a message if the directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, String> {
        let root = root.into();
        for kind in [StoreKind::Trace, StoreKind::Image] {
            let dir = root.join(kind.dir());
            fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        Ok(Self { root })
    }

    fn object_path(&self, kind: StoreKind, name: &str) -> PathBuf {
        self.root.join(kind.dir()).join(name)
    }

    /// Reads an object, `None` when absent.
    pub fn get(&self, kind: StoreKind, name: &str) -> Option<Vec<u8>> {
        if !valid_object_name(name) {
            return None;
        }
        fs::read(self.object_path(kind, name)).ok()
    }

    /// Stores an object write-once. The frame must verify and its
    /// embedded key must hash to `name`; an existing object is left
    /// untouched (`Ok(false)`), a fresh publish returns `Ok(true)`.
    ///
    /// # Errors
    ///
    /// Returns a message for an invalid name, a frame that fails
    /// verification, a key/name mismatch, or an I/O failure.
    pub fn put(&self, kind: StoreKind, name: &str, bytes: &[u8]) -> Result<bool, String> {
        if !valid_object_name(name) {
            return Err(format!("invalid object name `{name}`"));
        }
        let (key, _payload) = verify_entry(bytes)?;
        let expected = entry_file_name(kind, &key);
        if expected != name {
            return Err(format!(
                "object name `{name}` does not match embedded key (expected `{expected}`)"
            ));
        }
        let path = self.object_path(kind, name);
        if path.exists() {
            return Ok(false); // write-once: first publish wins
        }
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        fs::write(&tmp, bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(true),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                // A concurrent publisher may have won the rename race;
                // content addressing makes that a success.
                if path.exists() {
                    Ok(false)
                } else {
                    Err(format!("publish {}: {e}", path.display()))
                }
            }
        }
    }

    /// Object count and byte total per kind, `(traces, trace_bytes,
    /// images, image_bytes)`.
    pub fn stats(&self) -> (usize, u64, usize, u64) {
        let mut out = (0usize, 0u64, 0usize, 0u64);
        for kind in [StoreKind::Trace, StoreKind::Image] {
            let Ok(rd) = fs::read_dir(self.root.join(kind.dir())) else {
                continue;
            };
            for entry in rd.flatten() {
                let Ok(meta) = entry.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                match kind {
                    StoreKind::Trace => {
                        out.0 += 1;
                        out.1 += meta.len();
                    }
                    StoreKind::Image => {
                        out.2 += 1;
                        out.3 += meta.len();
                    }
                }
            }
        }
        out
    }

    /// The storage root.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

/// Object names come off the wire and become file names: restrict them
/// to what [`entry_file_name`] can produce (alphanumerics, `-`, `.`)
/// so path traversal is structurally impossible.
fn valid_object_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 96
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.')
}

/// An HTTP [`RemoteTier`]: fetches and publishes framed entries
/// against an `ntg-serve` daemon's `/store/<kind>/<name>` endpoints.
#[derive(Debug)]
pub struct HttpRemote {
    addr: String,
    requests: AtomicU64,
}

impl HttpRemote {
    /// A remote tier talking to `addr` (`host:port`, an optional
    /// `http://` prefix is accepted and stripped).
    pub fn new(addr: &str) -> Self {
        Self {
            addr: normalize_addr(addr),
            requests: AtomicU64::new(0),
        }
    }

    /// The normalized `host:port` this tier talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// HTTP requests issued so far (fetches + publishes).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

/// Strips an optional `http://` scheme and any trailing `/` so both
/// `http://127.0.0.1:8080/` and `127.0.0.1:8080` address the daemon.
pub fn normalize_addr(addr: &str) -> String {
    let addr = addr.strip_prefix("http://").unwrap_or(addr);
    addr.trim_end_matches('/').to_string()
}

impl RemoteTier for HttpRemote {
    fn fetch(&self, kind: StoreKind, name: &str) -> Result<Option<Vec<u8>>, String> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let path = format!("/store/{}/{name}", kind.dir());
        match http::get(&self.addr, &path)? {
            (200, body) => Ok(Some(body)),
            (404, _) => Ok(None),
            (status, body) => Err(format!(
                "GET {path}: HTTP {status}: {}",
                String::from_utf8_lossy(&body).trim_end()
            )),
        }
    }

    fn publish(&self, kind: StoreKind, name: &str, bytes: &[u8]) -> Result<(), String> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let path = format!("/store/{}/{name}", kind.dir());
        match http::put(&self.addr, &path, bytes)? {
            (200 | 201 | 204, _) => Ok(()),
            (status, body) => Err(format!(
                "PUT {path}: HTTP {status}: {}",
                String::from_utf8_lossy(&body).trim_end()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_explore::DiskStore;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ntg-serve-remote-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Round-trips a framed entry through a BlobStore by building it
    /// with a real DiskStore (the only public framer).
    fn framed_entry(dir: &Path, key: &str, payload: &[u8]) -> (String, Vec<u8>) {
        let store = DiskStore::open(dir).unwrap();
        store.save(StoreKind::Trace, key, payload).unwrap();
        let name = entry_file_name(StoreKind::Trace, key);
        let bytes = fs::read(store.root().join("traces").join(&name)).unwrap();
        (name, bytes)
    }

    #[test]
    fn put_verifies_names_frames_and_is_write_once() {
        let dir = tmp_dir("put");
        let blobs = BlobStore::open(dir.join("blobs")).unwrap();
        let (name, bytes) = framed_entry(&dir.join("seed"), "trace|k", b"payload");

        assert!(blobs.put(StoreKind::Trace, &name, &bytes).unwrap());
        // Second publish of the same object: acknowledged no-op.
        assert!(!blobs.put(StoreKind::Trace, &name, &bytes).unwrap());
        assert_eq!(blobs.get(StoreKind::Trace, &name).unwrap(), bytes);

        // Wrong name for the embedded key.
        let wrong = entry_file_name(StoreKind::Trace, "trace|other");
        assert!(blobs.put(StoreKind::Trace, &wrong, &bytes).is_err());

        // Corrupt frame.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let other = entry_file_name(StoreKind::Trace, "trace|x");
        assert!(blobs.put(StoreKind::Trace, &other, &bad).is_err());

        // Traversal-shaped names never touch the filesystem.
        for evil in ["../escape", "a/b", "", ".hidden"] {
            assert!(blobs.get(StoreKind::Trace, evil).is_none());
            assert!(blobs.put(StoreKind::Trace, evil, &bytes).is_err());
        }
    }

    #[test]
    fn addr_normalization() {
        assert_eq!(normalize_addr("http://127.0.0.1:80/"), "127.0.0.1:80");
        assert_eq!(normalize_addr("127.0.0.1:80"), "127.0.0.1:80");
    }
}
