//! The campaign job server: accepts `CampaignSpec`s over HTTP, runs
//! them as sharded campaigns on a work-stealing worker pool, and
//! serves artifacts, progress events, canonical results and report
//! renderings.
//!
//! ## Identity and idempotence
//!
//! A job's id is its campaign fingerprint (16 hex digits) — the same
//! value `run_campaign` stamps into result headers. Submitting the
//! same spec twice therefore lands on the same job: a finished job
//! answers immediately, a running one is joined, and a job whose
//! daemon died mid-campaign resumes from its shard journals on
//! resubmission (the shard runners always set `resume: true`).
//!
//! ## Execution
//!
//! Each campaign is split into `min(workers, jobs)` round-robin shards
//! (the existing `RunOptions::shard` machinery); a pool of worker
//! threads pulls shard indices from a shared counter — work stealing
//! in its simplest deterministic form: whichever worker frees up takes
//! the next undone shard. Shard outputs land in the job's directory
//! and `merge_shards` reassembles the canonical JSONL, byte-identical
//! to a single-process `run_campaign` of the same spec. Timing and
//! metrics sidecars are concatenated per shard (they join by job id,
//! so order is irrelevant) and feed the report endpoints.
//!
//! ## Progress
//!
//! Progress is a monotonically growing list of NDJSON events per job.
//! `GET /jobs/<id>/events?from=N` returns the events from index `N`
//! on — polling replaces streaming because the HTTP layer is
//! Content-Length framed by design (no chunked encoding).

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use ntg_explore::{
    merge_shards, metrics_path, run_campaign, shard_path, timings_path, CampaignSpec, Json,
    RemoteTier, RunOptions,
};

use crate::http::{Request, Response};
use crate::remote::BlobStore;

/// Job lifecycle states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, not yet picked up by the runner.
    Queued,
    /// Shards executing.
    Running,
    /// Canonical results merged and served.
    Done,
    /// The campaign could not complete (infrastructure failure; the
    /// message says why). Resubmission retries from the journals.
    Failed(String),
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One accepted campaign.
pub struct Job {
    /// Fingerprint hex — the job id and directory name.
    pub id: String,
    spec: CampaignSpec,
    jobs: usize,
    dir: PathBuf,
    state: Mutex<JobState>,
    events: Mutex<Vec<String>>,
}

impl Job {
    fn push_event(&self, fields: Vec<(String, Json)>) {
        let mut obj = vec![("job".to_string(), Json::Str(self.id.clone()))];
        obj.extend(fields);
        self.events.lock().unwrap().push(Json::Obj(obj).render());
    }

    fn set_state(&self, s: JobState) {
        *self.state.lock().unwrap() = s;
    }

    fn status_json(&self) -> Json {
        let state = self.state.lock().unwrap().clone();
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("name".to_string(), Json::Str(self.spec.name.clone())),
            ("state".to_string(), Json::Str(state.label().to_string())),
            ("jobs".to_string(), Json::Int(self.jobs as i64)),
            (
                "events".to_string(),
                Json::Int(self.events.lock().unwrap().len() as i64),
            ),
        ];
        if let JobState::Failed(msg) = &state {
            fields.push(("error".to_string(), Json::Str(msg.clone())));
        }
        Json::Obj(fields)
    }

    fn canonical_path(&self) -> PathBuf {
        self.dir.join("out.jsonl")
    }
}

/// Configuration of a [`JobServer`].
pub struct ServerConfig {
    /// Data root: `<data>/blobs` holds the artifact objects,
    /// `<data>/jobs/<id>/` each campaign's files, `<data>/cache` the
    /// workers' local disk store (unless overridden).
    pub data: PathBuf,
    /// Worker threads per campaign (also the shard count cap).
    pub workers: usize,
    /// Workers' local artifact store base; defaults to `<data>/cache`.
    pub store: Option<PathBuf>,
    /// Upstream remote tier for the workers (another daemon's blob
    /// store) — `None` makes this daemon's own blob store the root of
    /// the hierarchy.
    pub remote: Option<Arc<dyn RemoteTier>>,
    /// Suppress per-event stderr lines.
    pub quiet: bool,
}

/// The HTTP-facing campaign service.
pub struct JobServer {
    blobs: BlobStore,
    config: ServerConfig,
    jobs: Mutex<HashMap<String, Arc<Job>>>,
}

impl JobServer {
    /// Opens the server state under `config.data`.
    ///
    /// # Errors
    ///
    /// Returns a message if the data directories cannot be created.
    pub fn open(config: ServerConfig) -> Result<Arc<Self>, String> {
        let blobs = BlobStore::open(config.data.join("blobs"))?;
        fs::create_dir_all(config.data.join("jobs"))
            .map_err(|e| format!("create jobs dir: {e}"))?;
        Ok(Arc::new(Self {
            blobs,
            config,
            jobs: Mutex::new(HashMap::new()),
        }))
    }

    /// The blob store this daemon serves under `/store/`.
    pub fn blobs(&self) -> &BlobStore {
        &self.blobs
    }

    /// Routes one request. Never panics on malformed input — every
    /// parse failure maps to a 4xx.
    pub fn handle(self: &Arc<Self>, req: &Request) -> Response {
        let segments = req.segments();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["health"]) => Response::ok_text("ok\n"),
            ("GET", ["store", "stats"]) => self.store_stats(),
            ("GET", ["store", dir, name]) => self.store_get(dir, name),
            ("PUT", ["store", dir, name]) => self.store_put(dir, name, &req.body),
            ("POST", ["jobs"]) => self.submit(&req.body),
            ("GET", ["jobs"]) => self.list_jobs(),
            ("GET", ["jobs", id]) => self.job_status(id),
            ("GET", ["jobs", id, "events"]) => {
                let from = req
                    .query_param("from")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                self.job_events(id, from)
            }
            ("GET", ["jobs", id, "results"]) => {
                self.job_file(id, Path::to_path_buf, "canonical results")
            }
            ("GET", ["jobs", id, "timings"]) => self.job_file(id, timings_path, "timings sidecar"),
            ("GET", ["jobs", id, "metrics"]) => self.job_file(id, metrics_path, "metrics sidecar"),
            ("GET", ["jobs", id, "report", view]) => self.job_report(id, view),
            (method, _) if !matches!(method, "GET" | "PUT" | "POST") => {
                Response::error(405, format!("method {method} not allowed"))
            }
            _ => Response::not_found(format!("no route for {} {}", req.method, req.path)),
        }
    }

    fn store_stats(&self) -> Response {
        let (traces, trace_bytes, images, image_bytes) = self.blobs.stats();
        Response::json(
            200,
            Json::Obj(vec![
                ("trace_objects".into(), Json::Int(traces as i64)),
                ("trace_bytes".into(), Json::Int(trace_bytes as i64)),
                ("image_objects".into(), Json::Int(images as i64)),
                ("image_bytes".into(), Json::Int(image_bytes as i64)),
            ])
            .render(),
        )
    }

    fn store_get(&self, dir: &str, name: &str) -> Response {
        let Some(kind) = ntg_explore::StoreKind::from_dir(dir) else {
            return Response::not_found(format!("unknown store section `{dir}`"));
        };
        match self.blobs.get(kind, name) {
            Some(bytes) => Response::ok_bytes("application/octet-stream", bytes),
            None => Response::not_found(format!("no object {dir}/{name}")),
        }
    }

    fn store_put(&self, dir: &str, name: &str, body: &[u8]) -> Response {
        let Some(kind) = ntg_explore::StoreKind::from_dir(dir) else {
            return Response::not_found(format!("unknown store section `{dir}`"));
        };
        match self.blobs.put(kind, name, body) {
            Ok(true) => Response::error(201, "created"),
            Ok(false) => Response::ok_text("exists\n"),
            Err(e) => Response::error(400, e),
        }
    }

    fn submit(self: &Arc<Self>, body: &[u8]) -> Response {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "spec body is not UTF-8"),
        };
        let parsed = match Json::parse(text).and_then(|v| CampaignSpec::from_json(&v)) {
            Ok(s) => s,
            Err(e) => return Response::error(400, e),
        };
        let id = format!("{:016x}", parsed.fingerprint());
        let job = {
            let mut jobs = self.jobs.lock().unwrap();
            if let Some(existing) = jobs.get(&id) {
                return Response::json(200, existing.status_json().render());
            }
            let dir = self.config.data.join("jobs").join(&id);
            if let Err(e) = fs::create_dir_all(&dir) {
                return Response::error(500, format!("create {}: {e}", dir.display()));
            }
            // Record the spec next to its outputs: jobs stay
            // reproducible and debuggable after the daemon is gone.
            let _ = fs::write(dir.join("spec.json"), parsed.to_json().render());
            let expanded = parsed.expand().len();
            let job = Arc::new(Job {
                id: id.clone(),
                spec: parsed,
                jobs: expanded,
                dir,
                state: Mutex::new(JobState::Queued),
                events: Mutex::new(Vec::new()),
            });
            jobs.insert(id.clone(), job.clone());
            job
        };
        // A finished canonical file from a previous daemon life means
        // the job is already done — adopt it instead of re-running.
        if canonical_is_complete(&job) {
            job.set_state(JobState::Done);
            job.push_event(vec![
                ("event".into(), Json::Str("adopted".into())),
                ("jobs".into(), Json::Int(job.jobs as i64)),
            ]);
            job.push_event(vec![("event".into(), Json::Str("done".into()))]);
            return Response::json(200, job.status_json().render());
        }
        job.push_event(vec![
            ("event".into(), Json::Str("queued".into())),
            ("name".into(), Json::Str(job.spec.name.clone())),
            ("jobs".into(), Json::Int(job.jobs as i64)),
        ]);
        let server = self.clone();
        let runner_job = job.clone();
        std::thread::spawn(move || server.run_job(&runner_job));
        Response::json(202, job.status_json().render())
    }

    fn list_jobs(&self) -> Response {
        let jobs = self.jobs.lock().unwrap();
        let mut ids: Vec<&String> = jobs.keys().collect();
        ids.sort();
        let arr = ids
            .into_iter()
            .map(|id| jobs[id].status_json())
            .collect::<Vec<_>>();
        Response::json(
            200,
            Json::Obj(vec![("jobs".into(), Json::Arr(arr))]).render(),
        )
    }

    fn find_job(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs.lock().unwrap().get(id).cloned()
    }

    fn job_status(&self, id: &str) -> Response {
        match self.find_job(id) {
            Some(job) => Response::json(200, job.status_json().render()),
            None => Response::not_found(format!("no job {id}")),
        }
    }

    fn job_events(&self, id: &str, from: usize) -> Response {
        let Some(job) = self.find_job(id) else {
            return Response::not_found(format!("no job {id}"));
        };
        let events = job.events.lock().unwrap();
        let mut body = String::new();
        for line in events.iter().skip(from) {
            body.push_str(line);
            body.push('\n');
        }
        Response::ok_bytes("application/x-ndjson", body.into_bytes())
    }

    /// Serves a job file derived from the canonical path (`derive` is
    /// the identity for the results themselves, or one of the
    /// `*_path` sidecar helpers).
    fn job_file(&self, id: &str, derive: fn(&Path) -> PathBuf, what: &str) -> Response {
        let Some(job) = self.find_job(id) else {
            return Response::not_found(format!("no job {id}"));
        };
        if *job.state.lock().unwrap() != JobState::Done {
            return Response::error(409, format!("job {id} is not done"));
        }
        match fs::read(derive(&job.canonical_path())) {
            Ok(bytes) => Response::ok_bytes("application/x-ndjson", bytes),
            Err(_) => Response::not_found(format!("job {id} has no {what}")),
        }
    }

    fn job_report(&self, id: &str, view: &str) -> Response {
        let Some(job) = self.find_job(id) else {
            return Response::not_found(format!("no job {id}"));
        };
        if *job.state.lock().unwrap() != JobState::Done {
            return Response::error(409, format!("job {id} is not done"));
        }
        let canonical = match fs::read_to_string(job.canonical_path()) {
            Ok(t) => t,
            Err(e) => return Response::error(500, format!("read results: {e}")),
        };
        let timings = fs::read_to_string(timings_path(&job.canonical_path())).ok();
        let metrics = fs::read_to_string(metrics_path(&job.canonical_path())).ok();
        match ntg_report::render_view(view, &canonical, timings.as_deref(), metrics.as_deref()) {
            Ok(text) => {
                let ct = if view == "markdown" {
                    "text/markdown; charset=utf-8"
                } else {
                    "text/csv; charset=utf-8"
                };
                Response::ok_bytes(ct, text.into_bytes())
            }
            Err(e) => Response::error(400, e),
        }
    }

    /// Runs one campaign: shard fan-out on the worker pool, then merge.
    fn run_job(self: &Arc<Self>, job: &Arc<Job>) {
        job.set_state(JobState::Running);
        let shards = self.config.workers.clamp(1, job.jobs.max(1));
        job.push_event(vec![
            ("event".into(), Json::Str("started".into())),
            ("shards".into(), Json::Int(shards as i64)),
        ]);
        if !self.config.quiet {
            eprintln!(
                "[job {}] started: {} jobs over {} shard(s)",
                job.id, job.jobs, shards
            );
        }
        let out = job.canonical_path();
        let store_base = self
            .config
            .store
            .clone()
            .unwrap_or_else(|| self.config.data.join("cache"));
        let next = AtomicUsize::new(0);
        let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let totals: Mutex<(u64, u64)> = Mutex::new((0, 0)); // (traces built, images built)
        std::thread::scope(|scope| {
            for _ in 0..shards {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= shards {
                        break;
                    }
                    let shard = (i + 1, shards);
                    job.push_event(vec![
                        ("event".into(), Json::Str("shard_started".into())),
                        ("shard".into(), Json::Int(shard.0 as i64)),
                        ("of".into(), Json::Int(shards as i64)),
                    ]);
                    let opts = RunOptions {
                        threads: 1,
                        out: Some(shard_path(&out, shard)),
                        resume: true,
                        quiet: true,
                        store: Some(store_base.clone()),
                        shard: Some(shard),
                        sim_threads: 1,
                        remote: self.config.remote.clone(),
                    };
                    match run_campaign(&job.spec, &opts) {
                        Ok(outcome) => {
                            {
                                let mut t = totals.lock().unwrap();
                                t.0 += outcome.cache.trace_misses;
                                t.1 += outcome.cache.image_misses;
                            }
                            job.push_event(vec![
                                ("event".into(), Json::Str("shard_done".into())),
                                ("shard".into(), Json::Int(shard.0 as i64)),
                                ("executed".into(), Json::Int(outcome.executed as i64)),
                                ("resumed".into(), Json::Int(outcome.resumed as i64)),
                                ("wall_secs".into(), Json::Float(outcome.wall_secs)),
                                ("cache".into(), Json::Str(outcome.cache.summary_line())),
                            ]);
                        }
                        Err(e) => {
                            errors.lock().unwrap().push(format!("shard {i}: {e}"));
                            job.push_event(vec![
                                ("event".into(), Json::Str("shard_failed".into())),
                                ("shard".into(), Json::Int(shard.0 as i64)),
                                ("error".into(), Json::Str(e)),
                            ]);
                        }
                    }
                });
            }
        });
        let errors = errors.into_inner().unwrap();
        if !errors.is_empty() {
            let msg = errors.join("; ");
            job.push_event(vec![
                ("event".into(), Json::Str("error".into())),
                ("message".into(), Json::Str(msg.clone())),
            ]);
            job.set_state(JobState::Failed(msg));
            return;
        }
        let (traces_built, images_built) = *totals.lock().unwrap();
        job.push_event(vec![
            ("event".into(), Json::Str("cache".into())),
            ("traces_built".into(), Json::Int(traces_built as i64)),
            ("images_built".into(), Json::Int(images_built as i64)),
        ]);
        let shard_files: Vec<PathBuf> = (1..=shards)
            .map(|i| shard_path(&out, (i, shards)))
            .collect();
        match merge_shards(&shard_files, &out) {
            Ok(summary) => {
                merge_sidecars(&shard_files, &out);
                job.push_event(vec![
                    ("event".into(), Json::Str("merged".into())),
                    ("jobs".into(), Json::Int(summary.jobs as i64)),
                ]);
                job.push_event(vec![("event".into(), Json::Str("done".into()))]);
                job.set_state(JobState::Done);
                if !self.config.quiet {
                    eprintln!("[job {}] done: {} jobs merged", job.id, summary.jobs);
                }
            }
            Err(e) => {
                job.push_event(vec![
                    ("event".into(), Json::Str("error".into())),
                    ("message".into(), Json::Str(e.clone())),
                ]);
                job.set_state(JobState::Failed(e));
            }
        }
    }
}

/// Whether the job's canonical file exists and carries the job's own
/// fingerprint with a full result set — the adopt-on-resubmit check.
fn canonical_is_complete(job: &Job) -> bool {
    let Ok(text) = fs::read_to_string(job.canonical_path()) else {
        return false;
    };
    match ntg_explore::parse_results(&text, false) {
        Ok(loaded) => {
            format!("{:016x}", loaded.header.fingerprint) == job.id
                && loaded.results.len() == loaded.header.jobs
        }
        Err(_) => false,
    }
}

/// Concatenates the shards' timing and metrics sidecars next to the
/// merged canonical file: one header line (they all carry the same
/// campaign header), then every shard's data lines. Consumers join by
/// job id, so line order across shards is irrelevant. Best-effort — a
/// missing sidecar (metrics are opt-in) is skipped silently.
fn merge_sidecars(shard_files: &[PathBuf], out: &Path) {
    for derive in [timings_path, metrics_path] {
        let mut merged = String::new();
        for shard in shard_files {
            let Ok(text) = fs::read_to_string(derive(shard)) else {
                continue;
            };
            for (i, line) in text.lines().enumerate() {
                if i == 0 && !merged.is_empty() {
                    continue; // header already present
                }
                merged.push_str(line);
                merged.push('\n');
            }
        }
        if !merged.is_empty() {
            let _ = fs::write(derive(out), merged);
        }
    }
}
