//! `ntg-sweep` — declarative design-space-exploration campaigns.
//!
//! Expands a cartesian sweep spec (workloads × core counts ×
//! interconnects × master kinds × translation modes) into jobs, runs
//! them on a worker pool with trace/TG-image caching, and writes a
//! byte-reproducible JSONL result file (see `ntg_explore` docs).
//! With a campaign service running (`ntg-serve`), the same spec can be
//! submitted over HTTP instead — `submit`/`watch`/`fetch` — and local
//! runs can share the service's artifact store via `--remote`.
//!
//! ```text
//! ntg-sweep --preset quick --threads 4 --out quick.jsonl
//! ntg-sweep --workloads mp_matrix:16 --cores 4 --fabrics all \
//!           --masters cpu,tg --out fabrics.jsonl
//! ntg-sweep --preset table2 --resume --out table2.jsonl
//! ntg-sweep --preset table2 --shard 1/2 --out table2.jsonl   # machine A
//! ntg-sweep --preset table2 --shard 2/2 --out table2.jsonl   # machine B
//! ntg-sweep merge --out table2.jsonl shards/                 # or explicit files
//! ntg-sweep submit --server 127.0.0.1:7070 --preset quick
//! ntg-sweep watch --server 127.0.0.1:7070 <job-id>
//! ntg-sweep fetch --server 127.0.0.1:7070 <job-id> --out quick.jsonl
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use ntg_explore::{
    collect_shard_files, merge_shards, run_campaign, shard_path, CampaignSpec, CoreSelection,
    DiskStore, Json, MasterChoice, RunOptions,
};
use ntg_platform::{InterconnectChoice, ALL_INTERCONNECTS};
use ntg_serve::{http, normalize_addr, HttpRemote};
use ntg_workloads::synthetic::{Pattern, ShapeKind};
use ntg_workloads::Workload;

/// Warn after a run when the persistent store outgrows this budget
/// (override with `NTG_STORE_BUDGET`, in bytes).
const DEFAULT_STORE_BUDGET: u64 = 1 << 30;

const USAGE: &str = "\
ntg-sweep — run a design-space-exploration campaign

USAGE:
    ntg-sweep [--preset NAME] [OPTIONS]
    ntg-sweep merge --out PATH SHARD_FILE_OR_DIR...
    ntg-sweep submit --server ADDR [--preset NAME] [AXIS OPTIONS]
    ntg-sweep watch --server ADDR JOB_ID
    ntg-sweep fetch --server ADDR JOB_ID [--out PATH] [--view NAME] [--sidecars]
    ntg-sweep store stats [--store PATH]
    ntg-sweep store gc --budget BYTES [--dry-run] [--store PATH]

PRESETS (a starting point; later options override):
    table2     paper Table 2: 4 workloads, paper core sweeps, CPU vs TG on AMBA
    quick      small smoke campaign: 2 workloads x {2,4}P x {amba,xpipes}, CPU vs TG
    fabrics    paper §1 exploration: mp_matrix:16 4P across all interconnects
    ablation   mp_matrix:16 4P: cpu/tg/stochastic x all modes x 3 fabrics
    saturation synthetic 8P lambda-sweep: {xpipes,crossbar} x 3 patterns x 6 rates
               (latency-vs-offered-load curves; render with ntg-report)

OPTIONS:
    --name NAME          campaign name (default: preset name or `sweep`)
    --workloads LIST     comma-separated workload specs, e.g. mp_matrix:16,cacheloop:5000
    --cores LIST|paper   comma-separated core counts, or `paper` for each
                         workload's Table-2 sweep
    --fabrics LIST|all   interconnects to evaluate (amba, amba-fixed,
                         crossbar, xpipes, xpipes:WxH, ideal)
    --mesh-sizes LIST    explicit xpipes mesh dimensions appended to the
                         fabric axis, e.g. 4x4,8x8,16x16 (meshes too small
                         for a job's core count are skipped)
    --masters LIST       master kinds: cpu, tg, stochastic, synthetic
    --modes LIST         translation modes for TG jobs: clone, timeshift, reactive
    --patterns LIST      synthetic destination patterns: uniform, complement,
                         shuffle, transpose, tornado, neighbor, hotspot:<pct>
    --shapes LIST        synthetic temporal shapes: bernoulli, burst:<len>,
                         onoff:<on>:<off>
    --rates LIST         synthetic offered injection rates in (0,1],
                         e.g. 0.02,0.05,0.1
    --packet-words N     words per synthetic packet (default 4; <=4 stays
                         inline/alloc-free)
    --trace-fabric F     interconnect reference traces are collected on (default amba)
    --seed N             campaign base seed (default 1)
    --max-cycles N       simulated-cycle bound per run (default 2000000000)
    --repeats N          timing repeats per job (default 1)
    --threads N          worker threads; 0 = one per hardware thread (default 1)
    --sim-threads N      partition each mesh simulation across N threads
                         (row bands in cycle lockstep; results stay
                         bit-identical, default 1)
    --out PATH           result file (default <name>.jsonl)
    --resume             keep matching results from an earlier partial run
    --shard I/N          run only shard I of N (jobs are dealt round-robin by
                         id); the result file gets a `.shard-I-of-N` suffix.
                         Reassemble with `ntg-sweep merge`.
    --store PATH         persistent artifact store for traces/TG binaries
                         (default: $NTG_STORE, else ~/.cache/ntg)
    --no-store           skip the persistent store for this run
    --remote ADDR        tier the store over an ntg-serve artifact daemon:
                         local misses fetch from it, local builds publish to it
    --store-gc BYTES     prune the store to BYTES (least recently used
                         artifacts first) and exit
    --dry-run            print the expanded job list, shard assignment, and
                         an estimate of trace/image store reuse, then exit
                         (for `store gc`: preview evictions without deleting)
    --quiet              suppress per-job progress on stderr
    -h, --help           this text

SERVICE COMMANDS:
    submit   POST the spec to an ntg-serve daemon; prints the job id
             (the campaign fingerprint — resubmitting the same spec is
             idempotent and resumes crashed campaigns)
    watch    poll the job's NDJSON progress events until it finishes
    fetch    download the merged canonical JSONL (byte-identical to a
             local run of the same spec), a report view (--view
             markdown|table2|rankings|pareto|saturation), and
             optionally the timing/metrics sidecars (--sidecars)
    store    stats: local artifact store entry counts, bytes, root
             gc:    prune like --store-gc; --dry-run previews
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ntg-sweep: {e}");
            ExitCode::FAILURE
        }
    }
}

fn take(it: &mut dyn Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or(format!("{flag} needs a value"))
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("merge") => return run_merge(args[1..].to_vec()),
        Some("submit") => return run_submit(args[1..].to_vec()),
        Some("watch") => return run_watch(args[1..].to_vec()),
        Some("fetch") => return run_fetch(args[1..].to_vec()),
        Some("store") => return run_store(args[1..].to_vec()),
        _ => {}
    }

    let mut spec: Option<CampaignSpec> = None;
    let mut name: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut opts = RunOptions {
        threads: 1,
        out: None,
        resume: false,
        quiet: false,
        store: None,
        shard: None,
        sim_threads: 1,
        remote: None,
    };
    let mut store_flag: Option<PathBuf> = None;
    let mut no_store = false;
    let mut remote_flag: Option<String> = None;
    let mut store_gc: Option<u64> = None;
    let mut dry_run = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if parse_axis_flag(&mut spec, &arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--name" => name = Some(take(&mut it, "--name")?),
            "--threads" => {
                opts.threads = take(&mut it, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--sim-threads" => {
                opts.sim_threads = take(&mut it, "--sim-threads")?
                    .parse()
                    .map_err(|e| format!("--sim-threads: {e}"))?;
            }
            "--out" => out = Some(PathBuf::from(take(&mut it, "--out")?)),
            "--resume" => opts.resume = true,
            "--shard" => opts.shard = Some(parse_shard(&take(&mut it, "--shard")?)?),
            "--store" => store_flag = Some(PathBuf::from(take(&mut it, "--store")?)),
            "--no-store" => no_store = true,
            "--remote" => remote_flag = Some(take(&mut it, "--remote")?),
            "--store-gc" => {
                store_gc = Some(
                    take(&mut it, "--store-gc")?
                        .parse()
                        .map_err(|e| format!("--store-gc: {e}"))?,
                );
            }
            "--dry-run" => dry_run = true,
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }

    let store_base = match (no_store, store_flag) {
        (true, _) => None,
        (false, Some(p)) => Some(p),
        (false, None) => DiskStore::default_base(),
    };

    if let Some(budget) = store_gc {
        let base = store_base
            .ok_or("--store-gc: no store configured (give --store or set NTG_STORE/HOME)")?;
        return gc_store(&base, budget, false);
    }

    let mut spec = spec.ok_or("nothing to do: give --preset or axis options (see --help)")?;
    if let Some(n) = name {
        spec.name = n;
    }
    if spec.workloads.is_empty() {
        return Err("no workloads selected".into());
    }

    let jobs = spec.expand();
    if dry_run {
        print_dry_run(&spec, &jobs, opts.shard);
        return Ok(ExitCode::SUCCESS);
    }

    opts.store = store_base;
    if let Some(addr) = remote_flag {
        if opts.store.is_none() {
            return Err(
                "--remote needs a local store tier (drop --no-store or give --store)".into(),
            );
        }
        opts.remote = Some(Arc::new(HttpRemote::new(&addr)));
    }
    let base_out = out.unwrap_or_else(|| PathBuf::from(format!("{}.jsonl", spec.name)));
    opts.out = Some(match opts.shard {
        // Shards write next to the canonical path, never to it — the
        // canonical file is `merge`'s to produce.
        Some(shard) => shard_path(&base_out, shard),
        None => base_out,
    });
    let outcome = run_campaign(&spec, &opts)?;

    // Result table: deterministic columns only; timings live in the
    // sidecar.
    println!(
        "campaign `{}`: {} jobs ({} run, {} resumed) in {:.2}s",
        outcome.header.name,
        outcome.results.len(),
        outcome.executed,
        outcome.resumed,
        outcome.wall_secs
    );
    println!("{}", outcome.cache.summary_line());
    println!(
        "\n{:<44} {:>14} {:>9} {:>9} {:>6}",
        "configuration", "cycles", "err%", "verified", "cache"
    );
    let mut failures = 0;
    for r in &outcome.results {
        let cycles = match (r.error.as_ref(), r.cycles) {
            (Some(_), _) => {
                failures += 1;
                "FAILED".to_string()
            }
            (None, Some(c)) => c.to_string(),
            (None, None) => "bound".to_string(),
        };
        let err_pct = r
            .error_pct
            .map(|e| format!("{e:.2}"))
            .unwrap_or_else(|| "-".into());
        let verified = match r.verified {
            Some(true) => "ok",
            Some(false) => "MISMATCH",
            None => "-",
        };
        let cache = match (r.trace_cache_hit, r.image_cache_hit) {
            (Some(t), Some(i)) => format!("{}{}", hit_char(t), hit_char(i)),
            (Some(t), None) => hit_char(t).to_string(),
            _ => "-".into(),
        };
        println!(
            "{:<44} {cycles:>14} {err_pct:>9} {verified:>9} {cache:>6}",
            r.key
        );
    }
    if let Some(out) = &opts.out {
        println!("\nresults: {}", out.display());
        if let Some((_, n)) = opts.shard {
            println!("(shard file — assemble the campaign with `ntg-sweep merge` once all {n} shards are done)");
        }
    }
    let budget = std::env::var("NTG_STORE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_STORE_BUDGET);
    if outcome.cache.store_bytes > budget {
        eprintln!(
            "ntg-sweep: warning: artifact store holds {} bytes (budget {budget}); \
             prune with `ntg-sweep --store-gc {budget}`",
            outcome.cache.store_bytes
        );
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("ntg-sweep: {failures} job(s) failed");
        ExitCode::FAILURE
    })
}

/// Consumes one campaign-axis flag (shared by the local runner and
/// `submit`). Returns `false` when `arg` is not an axis flag.
fn parse_axis_flag(
    spec: &mut Option<CampaignSpec>,
    arg: &str,
    it: &mut dyn Iterator<Item = String>,
) -> Result<bool, String> {
    match arg {
        "--preset" => {
            let p = take(it, "--preset")?;
            if spec.is_some() {
                return Err("--preset must come before axis options".into());
            }
            *spec = Some(preset(&p)?);
        }
        "--workloads" => {
            spec.get_or_insert_with(default_spec).workloads =
                parse_list(&take(it, "--workloads")?, |s| s.parse::<Workload>())?;
        }
        "--cores" => {
            let v = take(it, "--cores")?;
            spec.get_or_insert_with(default_spec).cores = if v == "paper" {
                CoreSelection::Paper
            } else {
                CoreSelection::List(parse_list(&v, |s| {
                    s.parse::<usize>().map_err(|e| format!("core count: {e}"))
                })?)
            };
        }
        "--fabrics" => {
            let v = take(it, "--fabrics")?;
            spec.get_or_insert_with(default_spec).interconnects = if v == "all" {
                ALL_INTERCONNECTS.to_vec()
            } else {
                parse_list(&v, |s| s.parse::<InterconnectChoice>())?
            };
        }
        "--mesh-sizes" => {
            spec.get_or_insert_with(default_spec).mesh_sizes =
                parse_list(&take(it, "--mesh-sizes")?, parse_mesh_size)?;
        }
        "--masters" => {
            spec.get_or_insert_with(default_spec).masters =
                parse_list(&take(it, "--masters")?, |s| s.parse::<MasterChoice>())?;
        }
        "--modes" => {
            spec.get_or_insert_with(default_spec).modes =
                parse_list(&take(it, "--modes")?, |s| s.parse())?;
        }
        "--patterns" => {
            spec.get_or_insert_with(default_spec).patterns =
                parse_list(&take(it, "--patterns")?, |s| s.parse())?;
        }
        "--shapes" => {
            spec.get_or_insert_with(default_spec).shapes =
                parse_list(&take(it, "--shapes")?, |s| s.parse())?;
        }
        "--rates" => {
            spec.get_or_insert_with(default_spec).rates = parse_list(&take(it, "--rates")?, |s| {
                s.parse::<f64>()
                    .map_err(|e| format!("--rates: {e}"))
                    .and_then(|r| {
                        if r > 0.0 && r <= 1.0 {
                            Ok(r)
                        } else {
                            Err(format!("--rates: {r} outside (0, 1]"))
                        }
                    })
            })?;
        }
        "--packet-words" => {
            spec.get_or_insert_with(default_spec).packet_words = take(it, "--packet-words")?
                .parse()
                .map_err(|e| format!("--packet-words: {e}"))?;
        }
        "--trace-fabric" => {
            spec.get_or_insert_with(default_spec).trace_interconnect =
                take(it, "--trace-fabric")?.parse()?;
        }
        "--seed" => {
            spec.get_or_insert_with(default_spec).base_seed = take(it, "--seed")?
                .parse()
                .map_err(|e| format!("--seed: {e}"))?;
        }
        "--max-cycles" => {
            spec.get_or_insert_with(default_spec).max_cycles = take(it, "--max-cycles")?
                .parse()
                .map_err(|e| format!("--max-cycles: {e}"))?;
        }
        "--repeats" => {
            spec.get_or_insert_with(default_spec).repeats = take(it, "--repeats")?
                .parse()
                .map_err(|e| format!("--repeats: {e}"))?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// `ntg-sweep submit --server ADDR [axis options]`
fn run_submit(args: Vec<String>) -> Result<ExitCode, String> {
    let mut server: Option<String> = None;
    let mut spec: Option<CampaignSpec> = None;
    let mut name: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if parse_axis_flag(&mut spec, &arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--server" => server = Some(take(&mut it, "--server")?),
            "--name" => name = Some(take(&mut it, "--name")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("submit: unknown option `{other}` (see --help)")),
        }
    }
    let server = normalize_addr(&server.ok_or("submit: --server is required")?);
    let mut spec = spec.ok_or("submit: give --preset or axis options")?;
    if let Some(n) = name {
        spec.name = n;
    }
    if spec.workloads.is_empty() {
        return Err("submit: no workloads selected".into());
    }
    let (status, body) = http::post_json(&server, "/jobs", &spec.to_json().render())?;
    let text = String::from_utf8_lossy(&body);
    if !matches!(status, 200 | 202) {
        return Err(format!("submit: HTTP {status}: {}", text.trim_end()));
    }
    let v = Json::parse(&text).map_err(|e| format!("submit: bad response: {e}"))?;
    let id = v.get("id").and_then(Json::as_str).unwrap_or("?");
    let state = v.get("state").and_then(Json::as_str).unwrap_or("?");
    let jobs = v.get("jobs").and_then(Json::as_u64).unwrap_or(0);
    println!("job {id}: {state} ({jobs} jobs)");
    println!("watch with: ntg-sweep watch --server {server} {id}");
    Ok(ExitCode::SUCCESS)
}

/// Polls a job's status; returns `(state, printable error)`.
fn job_state(server: &str, id: &str) -> Result<(String, Option<String>), String> {
    let (status, body) = http::get(server, &format!("/jobs/{id}"))?;
    let text = String::from_utf8_lossy(&body);
    if status != 200 {
        return Err(format!("job {id}: HTTP {status}: {}", text.trim_end()));
    }
    let v = Json::parse(&text).map_err(|e| format!("job {id}: bad response: {e}"))?;
    let state = v
        .get("state")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    let error = v.get("error").and_then(Json::as_str).map(str::to_string);
    Ok((state, error))
}

/// `ntg-sweep watch --server ADDR JOB_ID`
fn run_watch(args: Vec<String>) -> Result<ExitCode, String> {
    let (server, id) = parse_server_and_id(args, "watch")?;
    let mut from = 0usize;
    loop {
        let (status, body) = http::get(&server, &format!("/jobs/{id}/events?from={from}"))?;
        if status != 200 {
            return Err(format!(
                "watch: HTTP {status}: {}",
                String::from_utf8_lossy(&body).trim_end()
            ));
        }
        let text = String::from_utf8_lossy(&body);
        for line in text.lines().filter(|l| !l.is_empty()) {
            println!("{line}");
            from += 1;
        }
        let (state, error) = job_state(&server, &id)?;
        match state.as_str() {
            "done" => return Ok(ExitCode::SUCCESS),
            "failed" => {
                return Err(format!(
                    "watch: job {id} failed: {}",
                    error.unwrap_or_default()
                ));
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(200)),
        }
    }
}

/// `ntg-sweep fetch --server ADDR JOB_ID [--out PATH] [--view NAME] [--sidecars]`
fn run_fetch(args: Vec<String>) -> Result<ExitCode, String> {
    let mut server: Option<String> = None;
    let mut id: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut view: Option<String> = None;
    let mut sidecars = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--server" => server = Some(take(&mut it, "--server")?),
            "--out" => out = Some(PathBuf::from(take(&mut it, "--out")?)),
            "--view" => view = Some(take(&mut it, "--view")?),
            "--sidecars" => sidecars = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if other.starts_with('-') => {
                return Err(format!("fetch: unknown option `{other}` (see --help)"));
            }
            positional => {
                if id.replace(positional.to_string()).is_some() {
                    return Err("fetch: more than one job id".into());
                }
            }
        }
    }
    let server = normalize_addr(&server.ok_or("fetch: --server is required")?);
    let id = id.ok_or("fetch: job id is required")?;

    if let Some(view) = view {
        let (status, body) = http::get(&server, &format!("/jobs/{id}/report/{view}"))?;
        if status != 200 {
            return Err(format!(
                "fetch: HTTP {status}: {}",
                String::from_utf8_lossy(&body).trim_end()
            ));
        }
        print!("{}", String::from_utf8_lossy(&body));
        return Ok(ExitCode::SUCCESS);
    }

    let (status, body) = http::get(&server, &format!("/jobs/{id}/results"))?;
    if status != 200 {
        return Err(format!(
            "fetch: HTTP {status}: {}",
            String::from_utf8_lossy(&body).trim_end()
        ));
    }
    match &out {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("write {}: {e}", path.display()))?;
            println!("results: {} ({} bytes)", path.display(), body.len());
        }
        None => print!("{}", String::from_utf8_lossy(&body)),
    }
    if sidecars {
        let base = out.ok_or("fetch: --sidecars needs --out")?;
        for (endpoint, suffix) in [("timings", ".timings.jsonl"), ("metrics", ".metrics.jsonl")] {
            let (status, body) = http::get(&server, &format!("/jobs/{id}/{endpoint}"))?;
            if status == 200 {
                let mut s = base.as_os_str().to_os_string();
                s.push(suffix);
                let path = PathBuf::from(s);
                std::fs::write(&path, &body)
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                println!("sidecar: {} ({} bytes)", path.display(), body.len());
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_server_and_id(args: Vec<String>, cmd: &str) -> Result<(String, String), String> {
    let mut server: Option<String> = None;
    let mut id: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--server" => server = Some(take(&mut it, "--server")?),
            "-h" | "--help" => print!("{USAGE}"),
            other if other.starts_with('-') => {
                return Err(format!("{cmd}: unknown option `{other}` (see --help)"));
            }
            positional => {
                if id.replace(positional.to_string()).is_some() {
                    return Err(format!("{cmd}: more than one job id"));
                }
            }
        }
    }
    Ok((
        normalize_addr(&server.ok_or(format!("{cmd}: --server is required"))?),
        id.ok_or(format!("{cmd}: job id is required"))?,
    ))
}

/// `ntg-sweep store stats|gc ...`
fn run_store(args: Vec<String>) -> Result<ExitCode, String> {
    let sub = args
        .first()
        .cloned()
        .ok_or("store: expected `stats` or `gc`")?;
    let mut store_flag: Option<PathBuf> = None;
    let mut budget: Option<u64> = None;
    let mut dry_run = false;
    let mut it = args.into_iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_flag = Some(PathBuf::from(take(&mut it, "--store")?)),
            "--budget" => {
                budget = Some(
                    take(&mut it, "--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                );
            }
            "--dry-run" => dry_run = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("store: unknown option `{other}` (see --help)")),
        }
    }
    let base = store_flag
        .or_else(DiskStore::default_base)
        .ok_or("store: no store configured (give --store or set NTG_STORE/HOME)")?;
    match sub.as_str() {
        "stats" => {
            let store = DiskStore::open(&base)?;
            let stats = store.stats();
            println!("store {}", store.root().display());
            println!(
                "  traces: {:>8} entries, {:>12} bytes",
                stats.trace_entries, stats.trace_bytes
            );
            println!(
                "  images: {:>8} entries, {:>12} bytes",
                stats.image_entries, stats.image_bytes
            );
            println!(
                "  total:  {:>8} entries, {:>12} bytes",
                stats.total_entries(),
                stats.total_bytes()
            );
            Ok(ExitCode::SUCCESS)
        }
        "gc" => {
            let budget = budget.ok_or("store gc: --budget is required")?;
            gc_store(&base, budget, dry_run)
        }
        other => Err(format!("store: unknown subcommand `{other}` (see --help)")),
    }
}

fn gc_store(base: &PathBuf, budget: u64, dry_run: bool) -> Result<ExitCode, String> {
    let store = DiskStore::open(base)?;
    let stats = store.gc(budget, dry_run);
    let verb = if dry_run { "would prune" } else { "pruned" };
    println!(
        "store {}: {verb} {} artifact(s), {} {} bytes, {} bytes {}",
        store.root().display(),
        stats.removed,
        if dry_run { "freeing" } else { "freed" },
        stats.freed_bytes,
        stats.remaining_bytes,
        if dry_run { "would remain" } else { "remain" },
    );
    Ok(ExitCode::SUCCESS)
}

/// `--dry-run`: the expanded job list, per-job shard assignment (when
/// `--shard` is given), and how much artifact reuse the cache/store
/// will see — how many distinct reference traces and TG program images
/// the campaign actually builds.
fn print_dry_run(
    spec: &CampaignSpec,
    jobs: &[ntg_explore::JobSpec],
    shard: Option<(usize, usize)>,
) {
    println!(
        "campaign `{}` ({} jobs, fingerprint {:016x}):",
        spec.name,
        jobs.len(),
        spec.fingerprint()
    );
    let mut in_shard = 0usize;
    for j in jobs {
        match shard {
            // Jobs are dealt round-robin by id: shard I of N runs ids
            // with id % N == I - 1.
            Some((i, n)) => {
                let assigned = j.id % n + 1;
                let marker = if assigned == i {
                    in_shard += 1;
                    '*'
                } else {
                    ' '
                };
                println!("  [{:>3}] {marker} shard {assigned}/{n}  {}", j.id, j.key());
            }
            None => println!("  [{:>3}] {}", j.id, j.key()),
        }
    }
    if let Some((i, n)) = shard {
        println!(
            "shard {i}/{n} runs {in_shard} of {} job(s) (marked *)",
            jobs.len()
        );
    }

    // Store-reuse estimate, mirroring the runner's cache keys: reference
    // traces are shared per (workload, cores) — they are always recorded
    // on the campaign's trace fabric — and TG images per
    // (workload, cores, mode).
    let mut trace_keys = std::collections::BTreeSet::new();
    let mut image_keys = std::collections::BTreeSet::new();
    let mut trace_consumers = 0usize;
    let mut image_consumers = 0usize;
    for j in jobs {
        match j.master {
            MasterChoice::Cpu => {}
            MasterChoice::Tg => {
                trace_consumers += 1;
                trace_keys.insert(format!("{}|{}", j.workload, j.cores));
                image_consumers += 1;
                image_keys.insert(format!(
                    "{}|{}|{}",
                    j.workload,
                    j.cores,
                    j.mode.map(|m| m.to_string()).unwrap_or_default()
                ));
            }
            MasterChoice::Stochastic => {
                trace_consumers += 1;
                trace_keys.insert(format!("{}|{}", j.workload, j.cores));
            }
            // Synthetic jobs generate traffic directly: no trace, no
            // image, nothing fetched from the store.
            MasterChoice::Synthetic => {}
        }
    }
    println!(
        "store reuse: {trace_consumers} job(s) consume {} distinct reference trace(s) \
         (on {}); {image_consumers} TG job(s) share {} distinct program image(s)",
        trace_keys.len(),
        spec.trace_interconnect,
        image_keys.len()
    );
}

/// `ntg-sweep merge --out PATH SHARD_FILE_OR_DIR...` — a directory
/// argument stands for every shard file inside it, in sorted order.
fn run_merge(args: Vec<String>) -> Result<ExitCode, String> {
    let mut out: Option<PathBuf> = None;
    let mut shards: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(PathBuf::from(
                    it.next().ok_or("--out needs a value".to_string())?,
                ));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("merge: unknown option `{flag}` (see --help)"));
            }
            path => {
                let path = PathBuf::from(path);
                if path.is_dir() {
                    shards.extend(collect_shard_files(&path)?);
                } else {
                    shards.push(path);
                }
            }
        }
    }
    let out = out.ok_or("merge: --out is required")?;
    let summary = merge_shards(&shards, &out)?;
    println!(
        "campaign `{}`: merged {} shard file(s) into {} ({} jobs)",
        summary.header.name,
        summary.shards,
        out.display(),
        summary.jobs
    );
    Ok(ExitCode::SUCCESS)
}

/// Parses `I/N` for `--shard`; 1-based, `1 <= I <= N`.
fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let (i, n) = s
        .split_once('/')
        .ok_or(format!("--shard: expected I/N, got `{s}`"))?;
    let i: usize = i.parse().map_err(|e| format!("--shard: {e}"))?;
    let n: usize = n.parse().map_err(|e| format!("--shard: {e}"))?;
    if n == 0 || i == 0 || i > n {
        return Err(format!(
            "--shard: index must satisfy 1 <= I <= N, got {i}/{n}"
        ));
    }
    Ok((i, n))
}

fn hit_char(hit: bool) -> char {
    if hit {
        'H'
    } else {
        'M'
    }
}

fn default_spec() -> CampaignSpec {
    CampaignSpec::new("sweep")
}

/// Parses `WxH` for `--mesh-sizes` (both dimensions in 1..=255).
fn parse_mesh_size(s: &str) -> Result<(u16, u16), String> {
    let (w, h) = s
        .split_once('x')
        .ok_or(format!("--mesh-sizes: expected WxH, got `{s}`"))?;
    let w: u16 = w.parse().map_err(|e| format!("--mesh-sizes: {e}"))?;
    let h: u16 = h.parse().map_err(|e| format!("--mesh-sizes: {e}"))?;
    if w == 0 || h == 0 || w > 255 || h > 255 {
        return Err(format!(
            "--mesh-sizes: dimensions must be in 1..=255, got {w}x{h}"
        ));
    }
    Ok((w, h))
}

fn parse_list<T>(s: &str, parse: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(parse)
        .collect()
}

fn preset(name: &str) -> Result<CampaignSpec, String> {
    let mut spec = CampaignSpec::new(name);
    match name {
        // The paper's Table 2: every workload over its own core sweep,
        // reference CPUs vs reactive TGs on the AMBA-like bus.
        "table2" => {
            spec.workloads = vec![
                Workload::SpMatrix { n: 16 },
                Workload::Cacheloop { iterations: 60_000 },
                Workload::MpMatrix { n: 24 },
                Workload::Des {
                    blocks_per_core: 24,
                },
            ];
            spec.cores = CoreSelection::Paper;
            spec.repeats = 3;
        }
        // A fast smoke campaign that still exercises trace/image reuse:
        // 16 jobs, 4 distinct traces, each translated once.
        "quick" => {
            spec.workloads = vec![
                Workload::MpMatrix { n: 8 },
                Workload::Cacheloop { iterations: 500 },
            ];
            spec.cores = CoreSelection::List(vec![2, 4]);
            spec.interconnects = vec![InterconnectChoice::Amba, InterconnectChoice::Xpipes];
        }
        // The §1 motivation: one TG program set evaluated across every
        // interconnect. Bounded low — static-priority arbitration can
        // legitimately livelock, which is a finding, not an error.
        "fabrics" => {
            spec.workloads = vec![Workload::MpMatrix { n: 16 }];
            spec.cores = CoreSelection::List(vec![4]);
            spec.interconnects = ALL_INTERCONNECTS.to_vec();
            spec.max_cycles = 5_000_000;
        }
        // Fidelity ablation: all translation modes plus the stochastic
        // related-work baseline, across three fabrics.
        "ablation" => {
            spec.workloads = vec![Workload::MpMatrix { n: 16 }];
            spec.cores = CoreSelection::List(vec![4]);
            spec.interconnects = vec![
                InterconnectChoice::Amba,
                InterconnectChoice::Crossbar,
                InterconnectChoice::Xpipes,
            ];
            spec.masters = vec![
                MasterChoice::Cpu,
                MasterChoice::Tg,
                MasterChoice::Stochastic,
            ];
            spec.modes = vec![
                ntg_core::TranslationMode::Clone,
                ntg_core::TranslationMode::Timeshift,
                ntg_core::TranslationMode::Reactive,
            ];
        }
        // Injection-rate saturation sweep: synthetic masters across two
        // NoC-capable fabrics, three representative patterns, six
        // offered loads. ntg-report turns the result into
        // latency-vs-offered-load curves with saturated points flagged.
        "saturation" => {
            spec.workloads = vec![Workload::Synthetic { packets: 256 }];
            spec.cores = CoreSelection::List(vec![8]);
            spec.interconnects = vec![InterconnectChoice::Xpipes, InterconnectChoice::Crossbar];
            spec.masters = vec![MasterChoice::Synthetic];
            spec.patterns = vec![
                Pattern::Uniform,
                Pattern::Transpose,
                Pattern::Hotspot { percent: 75 },
            ];
            spec.shapes = vec![ShapeKind::Bernoulli];
            spec.rates = vec![0.02, 0.05, 0.08, 0.12, 0.16, 0.2];
            spec.max_cycles = 2_000_000;
        }
        other => return Err(format!("unknown preset `{other}` (see --help)")),
    }
    Ok(spec)
}
