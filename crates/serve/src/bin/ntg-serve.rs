//! The campaign service daemon.
//!
//! ```text
//! ntg-serve --listen 127.0.0.1:7070                # store + job server
//! ntg-serve --listen 127.0.0.1:0 --addr-file port  # ephemeral port, scraped by scripts
//! ntg-serve --listen 127.0.0.1:7071 --remote 127.0.0.1:7070
//!                                                  # workers fetch/publish upstream
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use ntg_serve::http::{Handler, Server};
use ntg_serve::{HttpRemote, JobServer, ServerConfig};

const USAGE: &str = "\
ntg-serve — campaign job server + remote artifact store

USAGE:
    ntg-serve [OPTIONS]

OPTIONS:
    --listen ADDR     bind address (default 127.0.0.1:7070; use :0 for ephemeral)
    --data DIR        data root: blobs/, jobs/, cache/ (default ./ntg-serve-data)
    --workers N       worker threads per campaign (default 2)
    --store DIR       workers' local artifact store (default <data>/cache)
    --remote ADDR     upstream artifact daemon the workers fetch from/publish to
    --addr-file PATH  write the resolved listen address to PATH (for scripts)
    --quiet           suppress per-job stderr lines
    -h, --help        this text

ENDPOINTS:
    GET  /health                      liveness
    GET  /store/stats                 blob-store object counts and bytes
    GET  /store/{traces|images}/<n>   fetch a framed artifact object
    PUT  /store/{traces|images}/<n>   publish (write-once, verified)
    POST /jobs                        submit a CampaignSpec JSON
    GET  /jobs                        list jobs
    GET  /jobs/<id>                   status
    GET  /jobs/<id>/events?from=N     NDJSON progress events
    GET  /jobs/<id>/results           merged canonical JSONL
    GET  /jobs/<id>/{timings|metrics} merged sidecars
    GET  /jobs/<id>/report/<view>     markdown|table2|rankings|pareto|saturation
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ntg-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut listen = "127.0.0.1:7070".to_string();
    let mut data = PathBuf::from("ntg-serve-data");
    let mut workers = 2usize;
    let mut store: Option<PathBuf> = None;
    let mut remote: Option<String> = None;
    let mut addr_file: Option<PathBuf> = None;
    let mut quiet = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            "--listen" => listen = it.next().ok_or("--listen needs a value")?,
            "--data" => data = PathBuf::from(it.next().ok_or("--data needs a value")?),
            "--workers" => {
                workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "--workers: not a number")?;
                if workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--store" => store = Some(PathBuf::from(it.next().ok_or("--store needs a value")?)),
            "--remote" => remote = Some(it.next().ok_or("--remote needs a value")?),
            "--addr-file" => {
                addr_file = Some(PathBuf::from(it.next().ok_or("--addr-file needs a value")?));
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }

    let remote_tier = remote
        .as_deref()
        .map(|addr| Arc::new(HttpRemote::new(addr)) as Arc<dyn ntg_explore::RemoteTier>);
    let server = JobServer::open(ServerConfig {
        data,
        workers,
        store,
        remote: remote_tier,
        quiet,
    })?;

    let listener = Server::bind(&listen)?;
    let addr = listener.local_addr();
    if let Some(path) = &addr_file {
        std::fs::write(path, addr.to_string())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    println!("ntg-serve listening on {addr}");

    let handler: Arc<Handler> = Arc::new(move |req| server.handle(&req));
    // The daemon runs until killed; scripts stop it with a signal.
    let never = Arc::new(AtomicBool::new(false));
    listener.serve(handler, never);
    Ok(ExitCode::SUCCESS)
}
