//! Minimal deterministic HTTP/1.1 on `std::net` — server and client.
//!
//! The workspace is offline and std-only (DESIGN §6), so the campaign
//! service speaks a deliberately small, fixed subset of HTTP/1.1:
//!
//! * requests and responses are framed by `Content-Length` only — no
//!   chunked transfer encoding, no trailers, no keep-alive (every
//!   response carries `Connection: close` and the connection ends);
//! * the request line is `METHOD SP path[?query] SP HTTP/1.1`; header
//!   names are matched case-insensitively; bodies are raw bytes;
//! * hard caps bound every read: 64 KiB of header, 256 MiB of body,
//!   and a per-socket read/write timeout, so a stalled or malicious
//!   peer cannot wedge a worker thread.
//!
//! Both sides of the service use this module: the daemon's listener
//! ([`Server`]) and the client helpers ([`request`], [`get`], [`put`])
//! used by `ntg-sweep submit/watch/fetch` and the [`HttpRemote`]
//! artifact tier.
//!
//! [`HttpRemote`]: crate::remote::HttpRemote

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Header section cap (request line + headers + blank line).
pub const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Body cap — far above any campaign artifact, far below a memory DoS.
pub const MAX_BODY_BYTES: u64 = 256 * 1024 * 1024;
/// Per-socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `PUT`, `POST`, ...).
    pub method: String,
    /// Decoded path, query string stripped (always starts with `/`).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `/`-separated path segments (no empty segments).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Body bytes (`Content-Length` is derived from it).
    pub body: Vec<u8>,
}

impl Response {
    /// `200` with arbitrary bytes.
    pub fn ok_bytes(content_type: &str, body: Vec<u8>) -> Self {
        Self {
            status: 200,
            content_type: content_type.to_string(),
            body,
        }
    }

    /// `200 text/plain`.
    pub fn ok_text(body: impl Into<String>) -> Self {
        Self::ok_bytes("text/plain; charset=utf-8", body.into().into_bytes())
    }

    /// JSON with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json".to_string(),
            body: body.into_bytes(),
        }
    }

    /// An error response with a plain-text reason.
    pub fn error(status: u16, reason: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: {
                let mut b = reason.into().into_bytes();
                b.push(b'\n');
                b
            },
        }
    }

    /// `404` with a reason.
    pub fn not_found(reason: impl Into<String>) -> Self {
        Self::error(404, reason)
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// Returns a message on malformed framing, an over-cap header or body,
/// or a socket error/timeout.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    let mut line = String::new();
    // Request line + header lines, each CRLF-terminated.
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-header".into());
        }
        head.push_str(&line);
        if head.len() > MAX_HEADER_BYTES {
            return Err("header section exceeds cap".into());
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or("missing method")?.to_ascii_uppercase();
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version `{version}`"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    if !path.starts_with('/') {
        return Err(format!("request target `{target}` is not an origin path"));
    }
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    let mut headers = Vec::new();
    for l in lines {
        if l.is_empty() {
            break;
        }
        let (k, v) = l
            .split_once(':')
            .ok_or_else(|| format!("malformed header line `{l}`"))?;
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }
    let content_length: u64 = match headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v.parse().map_err(|_| format!("bad Content-Length `{v}`"))?,
        None => 0,
    };
    if headers.iter().any(|(k, v)| {
        k.eq_ignore_ascii_case("transfer-encoding") && !v.eq_ignore_ascii_case("identity")
    }) {
        return Err("chunked transfer encoding is not supported".into());
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body exceeds cap".into());
    }
    let mut body = vec![0u8; content_length as usize];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Writes a response (always `Connection: close`).
///
/// # Errors
///
/// Returns a message on a socket error/timeout.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> Result<(), String> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&resp.body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write response: {e}"))
}

fn percent_decode(s: &str) -> Result<String, String> {
    if !s.contains('%') && !s.contains('+') {
        return Ok(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad percent escape in `{s}`"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("non-UTF-8 escape in `{s}`"))
}

/// A handler turns a request into a response. Handler panics are
/// confined to the connection thread (the peer sees a dropped
/// connection, the server lives on).
pub type Handler = dyn Fn(Request) -> Response + Send + Sync;

/// A threaded accept loop over a bound listener.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns a message if the bind fails.
    pub fn bind(addr: &str) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        Ok(Self { listener, addr })
    }

    /// The bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until `shutdown` becomes true, one thread per
    /// connection. Blocks the calling thread.
    pub fn serve(self, handler: Arc<Handler>, shutdown: Arc<AtomicBool>) {
        // No accept timeout on std listeners: poll non-blockingly so
        // the shutdown flag is observed within ~20ms.
        let _ = self.listener.set_nonblocking(true);
        while !shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let handler = handler.clone();
                    std::thread::spawn(move || handle_connection(stream, handler.as_ref()));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let resp = match read_request(&mut stream) {
        Ok(req) => handler(req),
        Err(e) => Response::error(400, e),
    };
    let _ = write_response(&mut stream, &resp);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// One client request/response exchange: connects, sends, reads the
/// full response, closes. Returns `(status, body)`.
///
/// # Errors
///
/// Returns a message on connect/socket failures or malformed response
/// framing (an HTTP error *status* is returned, not an `Err`).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> Result<(u16, Vec<u8>), String> {
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no address"))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, IO_TIMEOUT)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send {method} {path}: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{}`", status_line.trim_end()))?;
    let mut content_length: Option<u64> = None;
    let mut header_bytes = status_line.len();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read headers: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-header".into());
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err("response header section exceeds cap".into());
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    v.trim()
                        .parse()
                        .map_err(|_| format!("bad response Content-Length `{}`", v.trim()))?,
                );
            }
        }
    }
    let body = match content_length {
        Some(len) if len > MAX_BODY_BYTES => {
            return Err("response body exceeds cap".into());
        }
        Some(len) => {
            let mut buf = vec![0u8; len as usize];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            buf
        }
        // Connection: close framing — read to EOF, capped.
        None => {
            let mut buf = Vec::new();
            reader
                .take(MAX_BODY_BYTES + 1)
                .read_to_end(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            if buf.len() as u64 > MAX_BODY_BYTES {
                return Err("response body exceeds cap".into());
            }
            buf
        }
    };
    Ok((status, body))
}

/// `GET path` — returns `(status, body)`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> Result<(u16, Vec<u8>), String> {
    request(addr, "GET", path, "application/octet-stream", &[])
}

/// `PUT path` with a binary body — returns `(status, body)`.
///
/// # Errors
///
/// See [`request`].
pub fn put(addr: &str, path: &str, body: &[u8]) -> Result<(u16, Vec<u8>), String> {
    request(addr, "PUT", path, "application/octet-stream", body)
}

/// `POST path` with a JSON body — returns `(status, body)`.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: &str, path: &str, body: &str) -> Result<(u16, Vec<u8>), String> {
    request(addr, "POST", path, "application/json", body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_echo() -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handler: Arc<Handler> = Arc::new(|req: Request| {
            let mut out = format!("{} {}", req.method, req.path);
            if let Some(v) = req.query_param("from") {
                out.push_str(&format!(" from={v}"));
            }
            out.push('|');
            Response::ok_bytes("application/octet-stream", {
                let mut b = out.into_bytes();
                b.extend_from_slice(&req.body);
                b
            })
        });
        let join = std::thread::spawn(move || server.serve(handler, flag));
        (addr, shutdown, join)
    }

    #[test]
    fn round_trips_methods_queries_and_bodies() {
        let (addr, shutdown, join) = spawn_echo();
        let addr = addr.to_string();
        let (status, body) = get(&addr, "/health").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"GET /health|");

        let (status, body) = put(&addr, "/store/traces/x", b"\x00\x01binary\xff").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"PUT /store/traces/x|\x00\x01binary\xff".as_slice());

        let (status, body) = get(&addr, "/jobs/abc/events?from=7").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"GET /jobs/abc/events from=7|");

        shutdown.store(true, Ordering::Relaxed);
        join.join().unwrap();
    }

    #[test]
    fn rejects_malformed_requests() {
        let (addr, shutdown, join) = spawn_echo();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NOT-HTTP-AT-ALL\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        shutdown.store(true, Ordering::Relaxed);
        join.join().unwrap();
    }

    #[test]
    fn percent_decoding_is_applied_to_paths_and_queries() {
        assert_eq!(percent_decode("/a%20b+c").unwrap(), "/a b c");
        assert!(percent_decode("/bad%zz").is_err());
    }
}
