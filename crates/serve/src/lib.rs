//! Campaign service (`ntg-serve`): a tiered remote artifact store and
//! an HTTP job server for `ntg-sweep` campaigns.
//!
//! The single-machine story ends with `ntg-explore`: a content-
//! addressed [`DiskStore`] builds every trace and TG image once per
//! host, and `run_campaign` fans jobs across local threads. This
//! crate adds the next tier for fleets:
//!
//! * [`http`] — a minimal deterministic HTTP/1.1 server and client on
//!   `std::net` (Content-Length framing only, hard caps, no external
//!   dependencies);
//! * [`remote`] — the artifact tier: server-side write-once
//!   [`BlobStore`] plus the [`HttpRemote`] client that slots into
//!   `DiskStore::with_remote`, making the hierarchy memory → disk →
//!   network with every failure degrading toward a local rebuild;
//! * [`server`] — the [`JobServer`]: accepts `CampaignSpec` JSON,
//!   shards campaigns over a work-stealing worker pool (resume-from-
//!   journal crash recovery included), publishes NDJSON progress
//!   events, and serves canonical results plus `ntg-report` views.
//!
//! Determinism contract: a campaign fetched from the service is
//! byte-identical to a local `run_campaign` of the same spec, and the
//! same spec resubmitted lands on the same job id (the campaign
//! fingerprint), so retries and crash recovery are idempotent.
//!
//! [`DiskStore`]: ntg_explore::DiskStore
//! [`BlobStore`]: remote::BlobStore
//! [`HttpRemote`]: remote::HttpRemote
//! [`JobServer`]: server::JobServer

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod remote;
pub mod server;

pub use remote::{normalize_addr, BlobStore, HttpRemote};
pub use server::{Job, JobServer, JobState, ServerConfig};
