//! `Srisc` — the in-order RISC core model that stands in for the paper's
//! ARM cores.
//!
//! The reproduced paper collects its reference traces from bit- and
//! cycle-true ARMv7 instruction-set simulators inside MPARM. The traffic
//! generator concept only requires the master to be a *deterministic,
//! reactive* producer of OCP transactions — compute gaps between
//! transactions, burst cache refills, posted writes, blocking reads and
//! synchronisation polling. `Srisc` is a from-scratch 32-bit in-order
//! single-issue RISC that produces exactly that traffic class:
//!
//! * [`isa`] — the instruction set with a real 32-bit binary encoding
//!   (programs live in simulated memory as encoded words and are decoded
//!   on every fetch, as an ISS would);
//! * [`asm`] — an assembler DSL with labels used to write the benchmark
//!   programs in `ntg-workloads`;
//! * [`cache`] — set-associative write-through caches with burst line
//!   refills;
//! * `core` — the cycle-true core model ([`CpuCore`]) driving an OCP
//!   master port.
//!
//! # Timing model
//!
//! One instruction per cycle when all caches hit. Loads and instruction
//! fetches that miss block the pipeline for a whole burst-read line
//! refill; uncached loads block for a single read; stores are posted but
//! stall until the interconnect *accepts* them (so the memory-ordering
//! anchor points the trace translator relies on are identical for CPU
//! cores and traffic generators). A blocked core resumes on the cycle
//! after the unblocking event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cache;
mod core;
pub mod interp;
pub mod isa;

pub use crate::core::{CpuConfig, CpuCore, CpuFault, CpuStats};
pub use asm::{Asm, AsmError, Program};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use isa::{decode, encode, Cond, DecodeError, Instr, Reg};
