//! A zero-time functional Srisc interpreter (golden model).
//!
//! Executes the same binary programs as the cycle-true [`CpuCore`], but
//! against a flat memory with no caches, no bus and no notion of time.
//! Two uses:
//!
//! * **differential testing** — the property suite runs random programs
//!   on both models and requires identical architectural results;
//! * **fast functional reference** — the paper notes the reference
//!   simulation "does not yet need to be accurately modeled" at the
//!   interconnect level; this is the logical extreme of that idea for
//!   pure software bring-up.
//!
//! [`CpuCore`]: crate::CpuCore

use std::collections::HashMap;

use crate::isa::{decode, Instr, Reg, R15};

/// Why the interpreter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpStop {
    /// `halt` executed.
    Halted,
    /// The step budget ran out.
    OutOfFuel,
    /// The fetched word did not decode.
    IllegalInstruction {
        /// Program counter of the bad fetch.
        pc: u32,
    },
    /// A load/store address was not word-aligned.
    MisalignedAccess {
        /// The offending address.
        addr: u32,
    },
}

/// The functional interpreter: registers, pc and a sparse flat memory.
///
/// # Example
///
/// ```
/// use ntg_cpu::asm::Asm;
/// use ntg_cpu::interp::{Interp, InterpStop};
/// use ntg_cpu::isa::{R1, R2};
///
/// let mut a = Asm::new();
/// a.li(R1, 20);
/// a.li(R2, 22);
/// a.add(R1, R1, R2);
/// a.halt();
/// let program = a.assemble(0x1000)?;
///
/// let mut interp = Interp::new();
/// interp.load(&program);
/// assert_eq!(interp.run(1_000), InterpStop::Halted);
/// assert_eq!(interp.reg(R1), 42);
/// # Ok::<(), ntg_cpu::AsmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interp {
    regs: [u32; 16],
    pc: u32,
    mem: HashMap<u32, u32>,
    instructions: u64,
}

impl Interp {
    /// Creates an interpreter with zeroed registers and empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a program image and sets the pc to its entry point.
    pub fn load(&mut self, program: &crate::asm::Program) {
        for (i, w) in program.words().iter().enumerate() {
            self.mem.insert(program.entry() + (i as u32) * 4, *w);
        }
        self.pc = program.entry();
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize]
    }

    /// Writes a register (`r0` stays zero).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r.num() != 0 {
            self.regs[r.num() as usize] = value;
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Overrides the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Reads a memory word (unmapped words read as zero).
    pub fn mem_word(&self, addr: u32) -> u32 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    /// Writes a memory word.
    pub fn set_mem_word(&mut self, addr: u32, value: u32) {
        self.mem.insert(addr, value);
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Executes one instruction.
    ///
    /// Returns `None` to continue, or the stop reason.
    pub fn step(&mut self) -> Option<InterpStop> {
        let word = self.mem_word(self.pc);
        let Ok(instr) = decode(word) else {
            return Some(InterpStop::IllegalInstruction { pc: self.pc });
        };
        self.instructions += 1;
        use Instr::*;
        let next = self.pc.wrapping_add(4);
        let jump = |off: i32| next.wrapping_add((off as u32).wrapping_mul(4));
        match instr {
            Nop => self.pc = next,
            Halt => return Some(InterpStop::Halted),
            Add(d, s, t) => {
                self.set_reg(d, self.reg(s).wrapping_add(self.reg(t)));
                self.pc = next;
            }
            Sub(d, s, t) => {
                self.set_reg(d, self.reg(s).wrapping_sub(self.reg(t)));
                self.pc = next;
            }
            And(d, s, t) => {
                self.set_reg(d, self.reg(s) & self.reg(t));
                self.pc = next;
            }
            Or(d, s, t) => {
                self.set_reg(d, self.reg(s) | self.reg(t));
                self.pc = next;
            }
            Xor(d, s, t) => {
                self.set_reg(d, self.reg(s) ^ self.reg(t));
                self.pc = next;
            }
            Sll(d, s, t) => {
                self.set_reg(d, self.reg(s) << (self.reg(t) & 31));
                self.pc = next;
            }
            Srl(d, s, t) => {
                self.set_reg(d, self.reg(s) >> (self.reg(t) & 31));
                self.pc = next;
            }
            Sra(d, s, t) => {
                self.set_reg(d, ((self.reg(s) as i32) >> (self.reg(t) & 31)) as u32);
                self.pc = next;
            }
            Mul(d, s, t) => {
                self.set_reg(d, self.reg(s).wrapping_mul(self.reg(t)));
                self.pc = next;
            }
            Slt(d, s, t) => {
                self.set_reg(d, ((self.reg(s) as i32) < (self.reg(t) as i32)) as u32);
                self.pc = next;
            }
            Sltu(d, s, t) => {
                self.set_reg(d, (self.reg(s) < self.reg(t)) as u32);
                self.pc = next;
            }
            Addi(d, s, imm) => {
                self.set_reg(d, self.reg(s).wrapping_add(imm as u32));
                self.pc = next;
            }
            Andi(d, s, imm) => {
                self.set_reg(d, self.reg(s) & (imm as u32));
                self.pc = next;
            }
            Ori(d, s, imm) => {
                self.set_reg(d, self.reg(s) | (imm as u32));
                self.pc = next;
            }
            Xori(d, s, imm) => {
                self.set_reg(d, self.reg(s) ^ (imm as u32));
                self.pc = next;
            }
            Slli(d, s, sh) => {
                self.set_reg(d, self.reg(s) << sh);
                self.pc = next;
            }
            Srli(d, s, sh) => {
                self.set_reg(d, self.reg(s) >> sh);
                self.pc = next;
            }
            Srai(d, s, sh) => {
                self.set_reg(d, ((self.reg(s) as i32) >> sh) as u32);
                self.pc = next;
            }
            Slti(d, s, imm) => {
                self.set_reg(d, ((self.reg(s) as i32) < imm) as u32);
                self.pc = next;
            }
            Movi(d, imm) => {
                self.set_reg(d, u32::from(imm));
                self.pc = next;
            }
            Movhi(d, imm) => {
                let low = self.reg(d) & 0xFFFF;
                self.set_reg(d, low | (u32::from(imm) << 16));
                self.pc = next;
            }
            Ldw(rd, rs, imm) => {
                let addr = self.reg(rs).wrapping_add(imm as u32);
                if !addr.is_multiple_of(4) {
                    return Some(InterpStop::MisalignedAccess { addr });
                }
                self.set_reg(rd, self.mem_word(addr));
                self.pc = next;
            }
            Stw(rd, rs, imm) => {
                let addr = self.reg(rs).wrapping_add(imm as u32);
                if !addr.is_multiple_of(4) {
                    return Some(InterpStop::MisalignedAccess { addr });
                }
                let value = self.reg(rd);
                self.set_mem_word(addr, value);
                self.pc = next;
            }
            Branch(cond, rs, rt, off) => {
                self.pc = if cond.eval(self.reg(rs), self.reg(rt)) {
                    jump(off)
                } else {
                    next
                };
            }
            J(off) => self.pc = jump(off),
            Jal(off) => {
                self.set_reg(R15, next);
                self.pc = jump(off);
            }
            Jr(rs) => self.pc = self.reg(rs),
        }
        None
    }

    /// Runs until `halt`, a fault, or `fuel` instructions.
    pub fn run(&mut self, fuel: u64) -> InterpStop {
        for _ in 0..fuel {
            if let Some(stop) = self.step() {
                return stop;
            }
        }
        InterpStop::OutOfFuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::{R1, R2, R3};

    #[test]
    fn computes_like_the_doc_example() {
        let mut a = Asm::new();
        a.li(R1, 0);
        a.li(R2, 10);
        a.label("l");
        a.addi(R1, R1, 3);
        a.slti(R3, R1, 30);
        a.bne(R3, crate::isa::R0, "l");
        a.halt();
        let p = a.assemble(0).unwrap();
        let mut i = Interp::new();
        i.load(&p);
        assert_eq!(i.run(1000), InterpStop::Halted);
        assert_eq!(i.reg(R1), 30);
    }

    #[test]
    fn memory_round_trips() {
        let mut a = Asm::new();
        a.li(R1, 777);
        a.li(R2, 0x4000);
        a.stw(R1, R2, 8);
        a.ldw(R3, R2, 8);
        a.halt();
        let p = a.assemble(0).unwrap();
        let mut i = Interp::new();
        i.load(&p);
        assert_eq!(i.run(100), InterpStop::Halted);
        assert_eq!(i.reg(R3), 777);
        assert_eq!(i.mem_word(0x4008), 777);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let p = a.assemble(0).unwrap();
        let mut i = Interp::new();
        i.load(&p);
        assert_eq!(i.run(50), InterpStop::OutOfFuel);
        assert_eq!(i.instructions(), 50);
    }

    #[test]
    fn illegal_instruction_is_reported() {
        let mut i = Interp::new();
        i.set_mem_word(0, 0xFFFF_FFFF);
        assert_eq!(i.run(10), InterpStop::IllegalInstruction { pc: 0 });
    }

    #[test]
    fn misaligned_access_is_reported() {
        let mut a = Asm::new();
        a.li(R2, 2);
        a.ldw(R1, R2, 0);
        let p = a.assemble(0).unwrap();
        let mut i = Interp::new();
        i.load(&p);
        assert_eq!(i.run(10), InterpStop::MisalignedAccess { addr: 2 });
    }

    #[test]
    fn unmapped_memory_reads_zero() {
        let i = Interp::new();
        assert_eq!(i.mem_word(0xDEAD_0000), 0);
    }
}
