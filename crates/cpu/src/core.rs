//! The cycle-true Srisc core model.

use std::sync::Arc;

use ntg_mem::AddressMap;
use ntg_ocp::{LinkArena, MasterPort, OcpRequest};
use ntg_sim::{Activity, Component, Cycle};

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::isa::{decode, Instr, Reg};

/// Static configuration of a [`CpuCore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuConfig {
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// Data-cache geometry.
    pub dcache: CacheConfig,
}

/// Execution statistics of one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Single (uncached) bus reads issued.
    pub bus_reads: u64,
    /// Bus writes issued (all stores; the caches are write-through).
    pub bus_writes: u64,
    /// Burst line refills issued (instruction + data).
    pub refills: u64,
    /// Instruction-cache hit/miss counters.
    pub icache: CacheStats,
    /// Data-cache hit/miss counters.
    pub dcache: CacheStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Execute one instruction this cycle.
    Ready,
    /// Blocking on an instruction-cache line refill.
    WaitIFetch { line_addr: u32 },
    /// Blocking on an uncached instruction fetch.
    WaitIFetchRaw,
    /// Blocking on a data-cache line refill that completes a load.
    WaitDFill { line_addr: u32, rd: Reg, addr: u32 },
    /// Blocking on an uncached load.
    WaitLoad { rd: Reg },
    /// Blocking on store acceptance (posted write).
    WaitStore,
    /// `halt` executed.
    Halted,
}

/// A fault that stopped a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuFault {
    /// The fetched word did not decode to a valid instruction.
    IllegalInstruction {
        /// Program counter of the faulting fetch.
        pc: u32,
        /// The undecodable word.
        word: u32,
    },
    /// A load/store address was not word-aligned.
    MisalignedAccess {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The offending address.
        addr: u32,
    },
    /// The interconnect returned an error response.
    BusError {
        /// Program counter of the faulting access.
        pc: u32,
    },
}

/// The in-order, single-issue Srisc core.
///
/// Implements [`Component`]; the core fetches encoded instructions from
/// memory through its instruction cache, executes one instruction per
/// cycle while caches hit, and drives its OCP [`MasterPort`] for cache
/// refills (burst reads), uncached accesses and write-through stores.
///
/// See the crate documentation for the precise timing model. The core
/// halts on the `halt` instruction (recording its completion cycle, which
/// is the per-core "execution time" reported in the paper's Table 2) or
/// on a [`CpuFault`].
pub struct CpuCore {
    name: String,
    port: MasterPort,
    map: Arc<AddressMap>,
    regs: [u32; 16],
    pc: u32,
    state: State,
    icache: Cache,
    dcache: Cache,
    stats: CpuStats,
    halt_cycle: Option<Cycle>,
    fault: Option<CpuFault>,
}

impl CpuCore {
    /// Creates a core.
    ///
    /// * `port` — the master endpoint of the core's OCP link;
    /// * `map` — the system address map (for cacheability decisions);
    /// * `entry` — initial program counter;
    /// * `sp` — initial stack pointer (`r13`).
    pub fn new(
        name: impl Into<String>,
        port: MasterPort,
        map: Arc<AddressMap>,
        cfg: CpuConfig,
        entry: u32,
        sp: u32,
    ) -> Self {
        let mut regs = [0u32; 16];
        regs[13] = sp;
        Self {
            name: name.into(),
            port,
            map,
            regs,
            pc: entry,
            state: State::Ready,
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            stats: CpuStats::default(),
            halt_cycle: None,
            fault: None,
        }
    }

    /// Whether the core has halted (normally or by fault).
    pub fn halted(&self) -> bool {
        matches!(self.state, State::Halted)
    }

    /// The cycle in which `halt` executed, if it has.
    pub fn halt_cycle(&self) -> Option<Cycle> {
        self.halt_cycle
    }

    /// The fault that stopped the core, if any.
    pub fn fault(&self) -> Option<CpuFault> {
        self.fault
    }

    /// Current register values (`r0` always reads zero).
    pub fn regs(&self) -> [u32; 16] {
        self.regs
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Execution statistics (cache stats included).
    pub fn stats(&self) -> CpuStats {
        let mut s = self.stats;
        s.icache = self.icache.stats();
        s.dcache = self.dcache.stats();
        s
    }

    fn write_reg(&mut self, rd: Reg, value: u32) {
        if rd.num() != 0 {
            self.regs[rd.num() as usize] = value;
        }
    }

    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize]
    }

    fn stop_with_fault(&mut self, now: Cycle, fault: CpuFault) {
        self.fault = Some(fault);
        self.halt_cycle = Some(now);
        self.state = State::Halted;
    }

    /// Resolves an outstanding memory event. Returns `true` when the core
    /// may execute an instruction this cycle.
    fn resolve(&mut self, now: Cycle, net: &mut LinkArena) -> Option<Option<u32>> {
        match self.state {
            State::Ready => Some(None),
            State::Halted => None,
            State::WaitIFetch { line_addr } => {
                let resp = self.port.take_response(net, now)?;
                if resp.status != ntg_ocp::OcpStatus::Ok {
                    self.stop_with_fault(now, CpuFault::BusError { pc: self.pc });
                    return None;
                }
                self.icache.fill(line_addr, &resp.data);
                self.state = State::Ready;
                Some(None)
            }
            State::WaitIFetchRaw => {
                let resp = self.port.take_response(net, now)?;
                if resp.status != ntg_ocp::OcpStatus::Ok {
                    self.stop_with_fault(now, CpuFault::BusError { pc: self.pc });
                    return None;
                }
                self.state = State::Ready;
                Some(Some(resp.word()))
            }
            State::WaitDFill {
                line_addr,
                rd,
                addr,
            } => {
                let resp = self.port.take_response(net, now)?;
                if resp.status != ntg_ocp::OcpStatus::Ok {
                    self.stop_with_fault(now, CpuFault::BusError { pc: self.pc });
                    return None;
                }
                self.dcache.fill(line_addr, &resp.data);
                let word = resp.data[((addr - line_addr) / 4) as usize];
                self.write_reg(rd, word);
                self.state = State::Ready;
                Some(None)
            }
            State::WaitLoad { rd } => {
                let resp = self.port.take_response(net, now)?;
                if resp.status != ntg_ocp::OcpStatus::Ok {
                    self.stop_with_fault(now, CpuFault::BusError { pc: self.pc });
                    return None;
                }
                self.write_reg(rd, resp.word());
                self.state = State::Ready;
                Some(None)
            }
            State::WaitStore => {
                self.port.take_accept(net, now)?;
                self.state = State::Ready;
                Some(None)
            }
        }
    }

    /// Fetches the instruction word at `pc`, or stalls.
    fn fetch(&mut self, now: Cycle, net: &mut LinkArena, raw: Option<u32>) -> Option<u32> {
        if let Some(word) = raw {
            return Some(word);
        }
        if self.map.is_cacheable(self.pc) {
            match self.icache.read(self.pc) {
                Some(word) => Some(word),
                None => {
                    let line = self.icache.line_addr(self.pc);
                    let beats = self.icache.config().words_per_line as u8;
                    self.port
                        .assert_request(net, OcpRequest::burst_read(line, beats), now);
                    self.stats.refills += 1;
                    self.state = State::WaitIFetch { line_addr: line };
                    None
                }
            }
        } else {
            self.port
                .assert_request(net, OcpRequest::read(self.pc), now);
            self.stats.bus_reads += 1;
            self.state = State::WaitIFetchRaw;
            None
        }
    }

    fn execute(&mut self, now: Cycle, net: &mut LinkArena, instr: Instr) {
        use Instr::*;
        self.stats.instructions += 1;
        let next_pc = self.pc.wrapping_add(4);
        match instr {
            Nop => self.pc = next_pc,
            Halt => {
                self.halt_cycle = Some(now);
                self.state = State::Halted;
            }
            Add(d, s, t) => {
                self.write_reg(d, self.reg(s).wrapping_add(self.reg(t)));
                self.pc = next_pc;
            }
            Sub(d, s, t) => {
                self.write_reg(d, self.reg(s).wrapping_sub(self.reg(t)));
                self.pc = next_pc;
            }
            And(d, s, t) => {
                self.write_reg(d, self.reg(s) & self.reg(t));
                self.pc = next_pc;
            }
            Or(d, s, t) => {
                self.write_reg(d, self.reg(s) | self.reg(t));
                self.pc = next_pc;
            }
            Xor(d, s, t) => {
                self.write_reg(d, self.reg(s) ^ self.reg(t));
                self.pc = next_pc;
            }
            Sll(d, s, t) => {
                self.write_reg(d, self.reg(s) << (self.reg(t) & 31));
                self.pc = next_pc;
            }
            Srl(d, s, t) => {
                self.write_reg(d, self.reg(s) >> (self.reg(t) & 31));
                self.pc = next_pc;
            }
            Sra(d, s, t) => {
                self.write_reg(d, ((self.reg(s) as i32) >> (self.reg(t) & 31)) as u32);
                self.pc = next_pc;
            }
            Mul(d, s, t) => {
                self.write_reg(d, self.reg(s).wrapping_mul(self.reg(t)));
                self.pc = next_pc;
            }
            Slt(d, s, t) => {
                self.write_reg(d, ((self.reg(s) as i32) < (self.reg(t) as i32)) as u32);
                self.pc = next_pc;
            }
            Sltu(d, s, t) => {
                self.write_reg(d, (self.reg(s) < self.reg(t)) as u32);
                self.pc = next_pc;
            }
            Addi(d, s, imm) => {
                self.write_reg(d, self.reg(s).wrapping_add(imm as u32));
                self.pc = next_pc;
            }
            Andi(d, s, imm) => {
                self.write_reg(d, self.reg(s) & (imm as u32));
                self.pc = next_pc;
            }
            Ori(d, s, imm) => {
                self.write_reg(d, self.reg(s) | (imm as u32));
                self.pc = next_pc;
            }
            Xori(d, s, imm) => {
                self.write_reg(d, self.reg(s) ^ (imm as u32));
                self.pc = next_pc;
            }
            Slli(d, s, sh) => {
                self.write_reg(d, self.reg(s) << sh);
                self.pc = next_pc;
            }
            Srli(d, s, sh) => {
                self.write_reg(d, self.reg(s) >> sh);
                self.pc = next_pc;
            }
            Srai(d, s, sh) => {
                self.write_reg(d, ((self.reg(s) as i32) >> sh) as u32);
                self.pc = next_pc;
            }
            Slti(d, s, imm) => {
                self.write_reg(d, ((self.reg(s) as i32) < imm) as u32);
                self.pc = next_pc;
            }
            Movi(d, imm) => {
                self.write_reg(d, u32::from(imm));
                self.pc = next_pc;
            }
            Movhi(d, imm) => {
                let low = self.reg(d) & 0xFFFF;
                self.write_reg(d, low | (u32::from(imm) << 16));
                self.pc = next_pc;
            }
            Ldw(rd, rs, imm) => {
                let addr = self.reg(rs).wrapping_add(imm as u32);
                if !addr.is_multiple_of(4) {
                    self.stop_with_fault(now, CpuFault::MisalignedAccess { pc: self.pc, addr });
                    return;
                }
                self.pc = next_pc;
                if self.map.is_cacheable(addr) {
                    if let Some(word) = self.dcache.read(addr) {
                        self.write_reg(rd, word);
                    } else {
                        let line = self.dcache.line_addr(addr);
                        let beats = self.dcache.config().words_per_line as u8;
                        self.port
                            .assert_request(net, OcpRequest::burst_read(line, beats), now);
                        self.stats.refills += 1;
                        self.state = State::WaitDFill {
                            line_addr: line,
                            rd,
                            addr,
                        };
                    }
                } else {
                    self.port.assert_request(net, OcpRequest::read(addr), now);
                    self.stats.bus_reads += 1;
                    self.state = State::WaitLoad { rd };
                }
            }
            Stw(rd, rs, imm) => {
                let addr = self.reg(rs).wrapping_add(imm as u32);
                if !addr.is_multiple_of(4) {
                    self.stop_with_fault(now, CpuFault::MisalignedAccess { pc: self.pc, addr });
                    return;
                }
                let value = self.reg(rd);
                if self.map.is_cacheable(addr) {
                    // Write-through: keep a present line coherent.
                    self.dcache.write_update(addr, value);
                }
                self.port
                    .assert_request(net, OcpRequest::write(addr, value), now);
                self.stats.bus_writes += 1;
                self.state = State::WaitStore;
                self.pc = next_pc;
            }
            Branch(cond, rs, rt, off) => {
                self.pc = if cond.eval(self.reg(rs), self.reg(rt)) {
                    next_pc.wrapping_add((off as u32).wrapping_mul(4))
                } else {
                    next_pc
                };
            }
            J(off) => {
                self.pc = next_pc.wrapping_add((off as u32).wrapping_mul(4));
            }
            Jal(off) => {
                self.write_reg(crate::isa::R15, next_pc);
                self.pc = next_pc.wrapping_add((off as u32).wrapping_mul(4));
            }
            Jr(rs) => {
                self.pc = self.reg(rs);
            }
        }
    }
}

impl Component<LinkArena> for CpuCore {
    fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        let Some(raw) = self.resolve(now, net) else {
            return;
        };
        let Some(word) = self.fetch(now, net, raw) else {
            return;
        };
        match decode(word) {
            Ok(instr) => self.execute(now, net, instr),
            Err(e) => self.stop_with_fault(
                now,
                CpuFault::IllegalInstruction {
                    pc: self.pc,
                    word: e.word,
                },
            ),
        }
    }

    #[inline]
    fn is_idle(&self, net: &LinkArena) -> bool {
        self.halted() && self.port.is_quiet(net)
    }

    // Stall ticks only poll the port (no statistics change), so the
    // default no-op `skip` is exact.
    #[inline]
    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        match self.state {
            State::Ready => Activity::Busy,
            State::Halted => {
                if self.port.is_quiet(net) {
                    Activity::Drained
                } else {
                    Activity::Busy
                }
            }
            // Every remaining state blocks on the bus; stall ticks only
            // poll, so with nothing queued this is a passive wait whose
            // horizon the responder bounds.
            _ => match self.port.next_event_at(net) {
                Some(at) if at > now => Activity::IdleUntil(at),
                Some(_) => Activity::Busy,
                None => Activity::waiting(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::{R1, R2, R3, R4};
    use ntg_mem::{MemoryDevice, RegionKind};
    use ntg_ocp::MasterId;

    const PRIV: u32 = 0x0000_0000;
    const SHARED: u32 = 0x0010_0000;

    /// CPU wired straight into one memory device covering both a
    /// cacheable private region and an uncached shared region.
    fn system(asm: &Asm) -> (LinkArena, CpuCore, MemoryDevice) {
        let mut map = AddressMap::new();
        map.add(
            "priv",
            PRIV,
            0x10_0000,
            ntg_ocp::SlaveId(0),
            RegionKind::PrivateMemory,
        )
        .unwrap();
        map.add(
            "shared",
            SHARED,
            0x10_0000,
            ntg_ocp::SlaveId(0),
            RegionKind::SharedMemory,
        )
        .unwrap();
        let mut net = LinkArena::new();
        let (mport, sport) = net.channel("cpu0", MasterId(0));
        let mut mem = MemoryDevice::new("ram", 0, 0x20_0000, sport);
        let program = asm.assemble(PRIV).unwrap();
        mem.load_words(program.entry(), program.words());
        let cpu = CpuCore::new(
            "cpu0",
            mport,
            Arc::new(map),
            CpuConfig {
                icache: CacheConfig::tiny(),
                dcache: CacheConfig::tiny(),
            },
            program.entry(),
            PRIV + 0x0F_0000,
        );
        (net, cpu, mem)
    }

    fn run(net: &mut LinkArena, cpu: &mut CpuCore, mem: &mut MemoryDevice, max: Cycle) -> Cycle {
        for now in 0..max {
            cpu.tick(now, net);
            mem.tick(now, net);
            if cpu.halted() && cpu.port.is_quiet(net) {
                return now;
            }
        }
        panic!("core did not halt within {max} cycles (pc={:#x})", cpu.pc());
    }

    #[test]
    fn alu_program_computes() {
        let mut a = Asm::new();
        a.li(R1, 6);
        a.li(R2, 7);
        a.mul(R3, R1, R2);
        a.sub(R4, R3, R1);
        a.halt();
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 1000);
        assert_eq!(cpu.regs()[3], 42);
        assert_eq!(cpu.regs()[4], 36);
        assert!(cpu.fault().is_none());
        assert_eq!(cpu.stats().instructions, 7);
    }

    #[test]
    fn store_goes_through_to_memory() {
        let mut a = Asm::new();
        a.li(R1, 0xABCD);
        a.li(R2, PRIV + 0x8000);
        a.stw(R1, R2, 0);
        a.halt();
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 1000);
        assert_eq!(mem.peek(PRIV + 0x8000), 0xABCD);
    }

    #[test]
    fn load_after_store_round_trips_via_cache() {
        let mut a = Asm::new();
        a.li(R1, 1234);
        a.li(R2, PRIV + 0x8000);
        a.stw(R1, R2, 0);
        a.ldw(R3, R2, 0);
        a.halt();
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 1000);
        assert_eq!(cpu.regs()[3], 1234);
    }

    #[test]
    fn icache_makes_loops_bus_free() {
        // A loop that fits in one line: after the first refill the loop
        // runs without further memory traffic.
        let mut a = Asm::new();
        a.li(R1, 0);
        a.li(R2, 50);
        a.label("loop"); // must land inside a fresh line with the branch
        a.addi(R1, R1, 1);
        a.bne(R1, R2, "loop");
        a.halt();
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 2000);
        assert_eq!(cpu.regs()[1], 50);
        let s = cpu.stats();
        // Program is 7 words = at most 3 lines; only those refills, no
        // per-iteration traffic.
        assert!(s.refills <= 3, "refills = {}", s.refills);
        assert_eq!(mem.reads(), s.refills);
        assert!(s.icache.read_hits > 100);
    }

    #[test]
    fn uncached_loads_hit_the_bus_every_time() {
        let mut a = Asm::new();
        a.li(R2, SHARED);
        a.ldw(R1, R2, 0);
        a.ldw(R1, R2, 0);
        a.ldw(R1, R2, 0);
        a.halt();
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 1000);
        assert_eq!(cpu.stats().bus_reads, 3);
        assert_eq!(cpu.stats().dcache.read_misses, 0, "bypasses the dcache");
    }

    #[test]
    fn cached_load_timing_is_deterministic() {
        // One-line program: halt only. Cold icache miss at cycle 0:
        // assert burst @0, mem accepts @1, response pushed @1+1+4=6,
        // visible @7 → halt executes at cycle 7.
        let mut a = Asm::new();
        a.halt();
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 100);
        assert_eq!(cpu.halt_cycle(), Some(7));
    }

    #[test]
    fn straight_line_ipc_is_one_after_warmup() {
        // 4 instructions in the same line as halt? Keep program inside
        // two lines and measure: refill(7 cycles) + instructions.
        let mut a = Asm::new();
        a.nop().nop().nop(); // line 0: 3 nops + li start
        a.instr(Instr::Nop);
        a.halt(); // line 1
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 100);
        // Line 0 refill completes at 7 (see above); nops at 7,8,9,10;
        // line 1 miss at 11: burst @11, accept @12, resp @17, visible
        // @18 → halt at 18.
        assert_eq!(cpu.halt_cycle(), Some(18));
        assert_eq!(cpu.stats().instructions, 5);
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut a = Asm::new();
        a.word(0xFFFF_FFFF);
        let (mut net, mut cpu, mut mem) = system(&a);
        for now in 0..100 {
            cpu.tick(now, &mut net);
            mem.tick(now, &mut net);
            if cpu.halted() {
                break;
            }
        }
        assert!(matches!(
            cpu.fault(),
            Some(CpuFault::IllegalInstruction { pc: 0, .. })
        ));
    }

    #[test]
    fn misaligned_load_faults() {
        let mut a = Asm::new();
        a.li(R2, PRIV + 0x8002);
        a.ldw(R1, R2, 0);
        a.halt();
        let (mut net, mut cpu, mut mem) = system(&a);
        for now in 0..100 {
            cpu.tick(now, &mut net);
            mem.tick(now, &mut net);
            if cpu.halted() {
                break;
            }
        }
        assert!(matches!(
            cpu.fault(),
            Some(CpuFault::MisalignedAccess { addr: 0x8002, .. })
        ));
    }

    #[test]
    fn jal_and_jr_implement_calls() {
        let mut a = Asm::new();
        a.jal("fn");
        a.li(R2, 99);
        a.halt();
        a.label("fn");
        a.li(R1, 55);
        a.jr(crate::isa::R15);
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 1000);
        assert_eq!(cpu.regs()[1], 55);
        assert_eq!(cpu.regs()[2], 99);
    }

    #[test]
    fn r0_writes_are_discarded() {
        let mut a = Asm::new();
        a.li(crate::isa::R0, 7);
        a.addi(crate::isa::R0, R1, 3);
        a.halt();
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 1000);
        assert_eq!(cpu.regs()[0], 0);
    }

    #[test]
    fn branch_conditions_taken_and_not_taken() {
        let mut a = Asm::new();
        a.li(R1, 5);
        a.li(R2, 5);
        a.beq(R1, R2, "eq_taken");
        a.li(R3, 1); // skipped
        a.label("eq_taken");
        a.blt(R1, R2, "bad");
        a.li(R4, 2); // executed (5 < 5 false)
        a.halt();
        a.label("bad");
        a.li(R4, 3);
        a.halt();
        let (mut net, mut cpu, mut mem) = system(&a);
        run(&mut net, &mut cpu, &mut mem, 1000);
        assert_eq!(cpu.regs()[3], 0);
        assert_eq!(cpu.regs()[4], 2);
    }
}
