//! Set-associative write-through caches with LRU replacement.
//!
//! Used for both the instruction and the data cache of a [`CpuCore`].
//! Lines are filled by burst reads over the interconnect; writes go
//! through to memory (no write-allocate) and update a present line in
//! place, so no writebacks ever occur and no coherence machinery is
//! needed — matching the MPARM configuration the paper measures, where
//! shared memory is simply uncacheable.
//!
//! [`CpuCore`]: crate::CpuCore

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: u32,
    /// Associativity; at least 1.
    pub ways: u32,
    /// Words per line; must be a power of two (typically 4).
    pub words_per_line: u32,
}

impl CacheConfig {
    /// A small direct-mapped configuration handy in tests.
    pub fn tiny() -> Self {
        Self {
            sets: 4,
            ways: 1,
            words_per_line: 4,
        }
    }

    /// The default core configuration: 1 KiB, 2-way, 16-byte lines.
    pub fn default_l1() -> Self {
        Self {
            sets: 32,
            ways: 2,
            words_per_line: 4,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.sets * self.ways * self.words_per_line * 4
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.words_per_line * 4
    }

    fn validate(&self) {
        assert!(
            self.sets.is_power_of_two(),
            "cache sets must be a power of two"
        );
        assert!(self.ways >= 1, "cache must have at least one way");
        assert!(
            self.words_per_line.is_power_of_two(),
            "words per line must be a power of two"
        );
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::default_l1()
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write-through updates that found the line present.
    pub write_hits: u64,
    /// Write-through updates that found no line (no-allocate).
    pub write_misses: u64,
    /// Lines installed.
    pub fills: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    tag: u32,
    data: Vec<u32>,
    last_used: u64,
}

/// A set-associative write-through cache.
///
/// # Example
///
/// ```
/// use ntg_cpu::cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::tiny());
/// assert_eq!(c.read(0x100), None); // cold miss
/// c.fill(c.line_addr(0x100), &[1, 2, 3, 4]);
/// assert_eq!(c.read(0x104), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let line = Line {
            valid: false,
            tag: 0,
            data: vec![0; cfg.words_per_line as usize],
            last_used: 0,
        };
        Self {
            cfg,
            lines: vec![line; (cfg.sets * cfg.ways) as usize],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The line-aligned base address of the line containing `addr`.
    pub fn line_addr(&self, addr: u32) -> u32 {
        addr & !(self.cfg.line_bytes() - 1)
    }

    fn set_index(&self, addr: u32) -> u32 {
        (addr / self.cfg.line_bytes()) & (self.cfg.sets - 1)
    }

    fn tag(&self, addr: u32) -> u32 {
        addr / self.cfg.line_bytes() / self.cfg.sets
    }

    fn word_index(&self, addr: u32) -> usize {
        ((addr / 4) & (self.cfg.words_per_line - 1)) as usize
    }

    fn find(&self, addr: u32) -> Option<usize> {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let base = (set * self.cfg.ways) as usize;
        (base..base + self.cfg.ways as usize)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Whether the line containing `addr` is present (no statistics, no
    /// LRU update).
    pub fn contains(&self, addr: u32) -> bool {
        self.find(addr).is_some()
    }

    /// Reads the word at `addr`, if its line is present.
    ///
    /// Records a read hit or miss and touches the LRU state.
    pub fn read(&mut self, addr: u32) -> Option<u32> {
        match self.find(addr) {
            Some(i) => {
                self.clock += 1;
                self.lines[i].last_used = self.clock;
                self.stats.read_hits += 1;
                Some(self.lines[i].data[self.word_index(addr)])
            }
            None => {
                self.stats.read_misses += 1;
                None
            }
        }
    }

    /// Write-through update: stores `value` into a present line.
    ///
    /// Returns whether the line was present. Never allocates.
    pub fn write_update(&mut self, addr: u32, value: u32) -> bool {
        match self.find(addr) {
            Some(i) => {
                self.clock += 1;
                self.lines[i].last_used = self.clock;
                let w = self.word_index(addr);
                self.lines[i].data[w] = value;
                self.stats.write_hits += 1;
                true
            }
            None => {
                self.stats.write_misses += 1;
                false
            }
        }
    }

    /// Installs a line fetched from memory, evicting the set's LRU way.
    ///
    /// # Panics
    ///
    /// Panics if `line_addr` is not line-aligned or `words` does not match
    /// the configured line size.
    pub fn fill(&mut self, line_addr: u32, words: &[u32]) {
        assert_eq!(
            line_addr,
            self.line_addr(line_addr),
            "fill address must be line-aligned"
        );
        assert_eq!(
            words.len(),
            self.cfg.words_per_line as usize,
            "fill data must be exactly one line"
        );
        let set = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        let base = (set * self.cfg.ways) as usize;
        let range = base..base + self.cfg.ways as usize;
        // Prefer an invalid way; otherwise evict the least recently used.
        let victim = range
            .clone()
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].last_used)
                    .expect("sets have at least one way")
            });
        if self.lines[victim].valid {
            self.stats.evictions += 1;
        }
        self.clock += 1;
        let line = &mut self.lines[victim];
        line.valid = true;
        line.tag = tag;
        line.data.copy_from_slice(words);
        line.last_used = self.clock;
        self.stats.fills += 1;
    }

    /// Invalidates every line (does not reset statistics).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_cache_misses_then_hits_after_fill() {
        let mut c = Cache::new(CacheConfig::tiny());
        assert_eq!(c.read(0x40), None);
        c.fill(0x40, &[10, 11, 12, 13]);
        assert_eq!(c.read(0x40), Some(10));
        assert_eq!(c.read(0x4C), Some(13));
        let s = c.stats();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.read_hits, 2);
        assert_eq!(s.fills, 1);
    }

    #[test]
    fn write_update_only_touches_present_lines() {
        let mut c = Cache::new(CacheConfig::tiny());
        assert!(!c.write_update(0x40, 9), "no-allocate on write miss");
        c.fill(0x40, &[0; 4]);
        assert!(c.write_update(0x44, 9));
        assert_eq!(c.read(0x44), Some(9));
        let s = c.stats();
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.write_hits, 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let cfg = CacheConfig {
            sets: 4,
            ways: 1,
            words_per_line: 4,
        };
        let mut c = Cache::new(cfg);
        // 0x00 and 0x40 map to set 0 (line 16B, 4 sets → 64B stride).
        c.fill(0x00, &[1; 4]);
        c.fill(0x40, &[2; 4]);
        assert_eq!(c.read(0x00), None, "conflicting line was evicted");
        assert_eq!(c.read(0x40), Some(2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn two_way_set_keeps_both_then_evicts_lru() {
        let cfg = CacheConfig {
            sets: 2,
            ways: 2,
            words_per_line: 4,
        };
        let mut c = Cache::new(cfg);
        // All of these map to set 0 (stride 32B).
        c.fill(0x00, &[1; 4]);
        c.fill(0x20, &[2; 4]);
        assert!(c.contains(0x00) && c.contains(0x20));
        // Touch 0x00 so 0x20 becomes LRU.
        assert_eq!(c.read(0x00), Some(1));
        c.fill(0x40, &[3; 4]);
        assert!(c.contains(0x00), "recently used line survives");
        assert!(!c.contains(0x20), "LRU line evicted");
        assert!(c.contains(0x40));
    }

    #[test]
    fn line_addr_masks_offset_bits() {
        let c = Cache::new(CacheConfig::tiny());
        assert_eq!(c.line_addr(0x4C), 0x40);
        assert_eq!(c.line_addr(0x40), 0x40);
        assert_eq!(c.line_addr(0x3F), 0x30);
    }

    #[test]
    fn invalidate_all_clears_contents() {
        let mut c = Cache::new(CacheConfig::tiny());
        c.fill(0x40, &[1; 4]);
        c.invalidate_all();
        assert!(!c.contains(0x40));
        assert_eq!(c.stats().fills, 1, "stats survive invalidation");
    }

    #[test]
    fn distinct_tags_in_same_set_do_not_alias() {
        let mut c = Cache::new(CacheConfig::tiny());
        c.fill(0x40, &[7; 4]);
        assert_eq!(c.read(0x140), None, "same set, different tag");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            words_per_line: 4,
        });
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn misaligned_fill_rejected() {
        let mut c = Cache::new(CacheConfig::tiny());
        c.fill(0x44, &[0; 4]);
    }

    #[test]
    fn capacity_matches_geometry() {
        assert_eq!(CacheConfig::default_l1().capacity_bytes(), 1024);
        assert_eq!(CacheConfig::tiny().line_bytes(), 16);
    }
}
