//! A small assembler DSL for writing Srisc programs in Rust.
//!
//! The benchmark programs in `ntg-workloads` are written with this DSL:
//! instructions are appended through builder methods, control flow uses
//! string labels, and [`Asm::assemble`] resolves labels and produces the
//! binary image that is loaded into a core's private memory.
//!
//! # Example
//!
//! ```
//! use ntg_cpu::asm::Asm;
//! use ntg_cpu::isa::{R1, R2};
//!
//! let mut a = Asm::new();
//! a.li(R1, 0);
//! a.li(R2, 10);
//! a.label("loop");
//! a.addi(R1, R1, 1);
//! a.bne(R1, R2, "loop");
//! a.halt();
//! let program = a.assemble(0x0100_0000)?;
//! assert_eq!(program.entry(), 0x0100_0000);
//! # Ok::<(), ntg_cpu::AsmError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::isa::{encode, Cond, Instr, Reg, IMM18_RANGE, OFF26_RANGE, R0};

#[derive(Debug, Clone)]
enum Item {
    Fixed(Instr),
    BranchTo(Cond, Reg, Reg, String),
    JumpTo {
        link: bool,
        target: String,
    },
    LiLabel(Reg, String),
    Word(u32),
    /// Pad with `nop`s until the position is a multiple of this many
    /// words.
    Align(u32),
}

impl Item {
    /// Size in words given the current position (alignment padding is
    /// position-dependent).
    fn size_words_at(&self, pos: u32) -> u32 {
        match self {
            Item::LiLabel(..) => 2,
            Item::Align(words) => (words - pos % words) % words,
            _ => 1,
        }
    }
}

/// Errors produced by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A branch, jump or `li_label` referenced an undefined label.
    UnknownLabel(String),
    /// A branch target is too far away for its offset field.
    OffsetOutOfRange {
        /// The target label.
        label: String,
        /// The required offset in instructions.
        offset: i64,
    },
    /// The origin address was not word-aligned.
    MisalignedOrigin(u32),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "label {l:?} defined twice"),
            AsmError::UnknownLabel(l) => write!(f, "label {l:?} is not defined"),
            AsmError::OffsetOutOfRange { label, offset } => {
                write!(f, "branch to {label:?} needs offset {offset}, out of range")
            }
            AsmError::MisalignedOrigin(a) => write!(f, "origin {a:#x} is not word-aligned"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An assembled Srisc program: binary words plus the resolved label map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    origin: u32,
    words: Vec<u32>,
    labels: HashMap<String, u32>,
}

impl Program {
    /// The address the program was assembled at (and starts executing
    /// from).
    pub fn entry(&self) -> u32 {
        self.origin
    }

    /// The binary image, one encoded instruction or data word per entry.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The program size in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// The absolute address of a label, if defined.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }
}

/// The assembler: collects instructions, labels and data, then assembles.
///
/// All instruction methods append one instruction (except [`Asm::li`] and
/// [`Asm::li_label`], which always expand to exactly two) and return
/// `&mut Self` for chaining. See the [module documentation](self) for an
/// example.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    items: Vec<Item>,
    labels: Vec<(String, usize)>,
}

macro_rules! rrr {
    ($($(#[$doc:meta])* $name:ident => $variant:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
                self.items.push(Item::Fixed(Instr::$variant(rd, rs, rt)));
                self
            }
        )*
    };
}

macro_rules! rri {
    ($($(#[$doc:meta])* $name:ident => $variant:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            ///
            /// # Panics
            ///
            /// Panics if `imm` is outside the signed 18-bit range.
            pub fn $name(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
                assert!(
                    IMM18_RANGE.contains(&imm),
                    "{} immediate {} out of range", stringify!($name), imm
                );
                self.items.push(Item::Fixed(Instr::$variant(rd, rs, imm)));
                self
            }
        )*
    };
}

macro_rules! shift {
    ($($(#[$doc:meta])* $name:ident => $variant:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            ///
            /// # Panics
            ///
            /// Panics if `shamt > 31`.
            pub fn $name(&mut self, rd: Reg, rs: Reg, shamt: u8) -> &mut Self {
                assert!(shamt < 32, "shift amount {} out of range", shamt);
                self.items.push(Item::Fixed(Instr::$variant(rd, rs, shamt)));
                self
            }
        )*
    };
}

macro_rules! branch {
    ($($(#[$doc:meta])* $name:ident => $cond:expr),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rs: Reg, rt: Reg, target: impl Into<String>) -> &mut Self {
                self.items.push(Item::BranchTo($cond, rs, rt, target.into()));
                self
            }
        )*
    };
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.labels.push((name.into(), self.items.len()));
        self
    }

    /// Appends a raw data word.
    pub fn word(&mut self, value: u32) -> &mut Self {
        self.items.push(Item::Word(value));
        self
    }

    /// Appends several raw data words.
    pub fn words(&mut self, values: &[u32]) -> &mut Self {
        for v in values {
            self.items.push(Item::Word(*v));
        }
        self
    }

    /// Pads with `nop`s so the next item starts at a multiple of
    /// `words` (relative to the assembly origin, which must itself be
    /// aligned accordingly). Used to keep polling loops inside a single
    /// instruction-cache line so no refill can interrupt a poll run.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn align(&mut self, words: u32) -> &mut Self {
        assert!(words > 0, "alignment must be non-zero");
        self.items.push(Item::Align(words));
        self
    }

    /// Appends an arbitrary pre-built instruction.
    pub fn instr(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item::Fixed(instr));
        self
    }

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.items.push(Item::Fixed(Instr::Nop));
        self
    }

    /// `halt` — stops the core.
    pub fn halt(&mut self) -> &mut Self {
        self.items.push(Item::Fixed(Instr::Halt));
        self
    }

    rrr! {
        /// `rd = rs + rt`
        add => Add,
        /// `rd = rs - rt`
        sub => Sub,
        /// `rd = rs & rt`
        and => And,
        /// `rd = rs | rt`
        or => Or,
        /// `rd = rs ^ rt`
        xor => Xor,
        /// `rd = rs << (rt & 31)`
        sll => Sll,
        /// `rd = rs >> (rt & 31)` (logical)
        srl => Srl,
        /// `rd = rs >> (rt & 31)` (arithmetic)
        sra => Sra,
        /// `rd = rs * rt`
        mul => Mul,
        /// `rd = (rs < rt) ? 1 : 0` (signed)
        slt => Slt,
        /// `rd = (rs < rt) ? 1 : 0` (unsigned)
        sltu => Sltu,
    }

    rri! {
        /// `rd = rs + imm`
        addi => Addi,
        /// `rd = rs & imm`
        andi => Andi,
        /// `rd = rs | imm`
        ori => Ori,
        /// `rd = rs ^ imm`
        xori => Xori,
        /// `rd = (rs < imm) ? 1 : 0` (signed)
        slti => Slti,
        /// `rd = mem[rs + imm]`
        ldw => Ldw,
        /// `mem[rs + imm] = rd`
        stw => Stw,
    }

    shift! {
        /// `rd = rs << shamt`
        slli => Slli,
        /// `rd = rs >> shamt` (logical)
        srli => Srli,
        /// `rd = rs >> shamt` (arithmetic)
        srai => Srai,
    }

    /// `rd = imm16` (zero-extended).
    pub fn movi(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.items.push(Item::Fixed(Instr::Movi(rd, imm)));
        self
    }

    /// `rd = (rd & 0xFFFF) | (imm16 << 16)`.
    pub fn movhi(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.items.push(Item::Fixed(Instr::Movhi(rd, imm)));
        self
    }

    /// Loads a full 32-bit constant; always expands to `movi` + `movhi`
    /// (two instructions, two cycles) so program sizes are predictable.
    pub fn li(&mut self, rd: Reg, value: u32) -> &mut Self {
        self.movi(rd, (value & 0xFFFF) as u16);
        self.movhi(rd, (value >> 16) as u16);
        self
    }

    /// Loads the absolute address of `label`; expands like [`Asm::li`].
    pub fn li_label(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::LiLabel(rd, label.into()));
        self
    }

    /// `rd = rs` (encoded as `add rd, rs, r0`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.add(rd, rs, R0)
    }

    branch! {
        /// Branch if `rs == rt`.
        beq => Cond::Eq,
        /// Branch if `rs != rt`.
        bne => Cond::Ne,
        /// Branch if `rs < rt` (signed).
        blt => Cond::Lt,
        /// Branch if `rs >= rt` (signed).
        bge => Cond::Ge,
        /// Branch if `rs < rt` (unsigned).
        bltu => Cond::Ltu,
        /// Branch if `rs >= rt` (unsigned).
        bgeu => Cond::Geu,
    }

    /// Unconditional jump to `target`.
    pub fn j(&mut self, target: impl Into<String>) -> &mut Self {
        self.items.push(Item::JumpTo {
            link: false,
            target: target.into(),
        });
        self
    }

    /// Jump to `target`, leaving the return address in `r15`.
    pub fn jal(&mut self, target: impl Into<String>) -> &mut Self {
        self.items.push(Item::JumpTo {
            link: true,
            target: target.into(),
        });
        self
    }

    /// Jump to the address in `rs`.
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.items.push(Item::Fixed(Instr::Jr(rs)));
        self
    }

    /// The current size of the program in words (before assembly),
    /// assuming an alignment-compatible origin.
    pub fn size_words(&self) -> u32 {
        let mut pos = 0;
        for item in &self.items {
            pos += item.size_words_at(pos);
        }
        pos
    }

    /// Assembles the program at byte address `origin`.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for duplicate or unknown labels,
    /// out-of-range branch offsets, or a misaligned origin.
    pub fn assemble(&self, origin: u32) -> Result<Program, AsmError> {
        if !origin.is_multiple_of(4) {
            return Err(AsmError::MisalignedOrigin(origin));
        }
        // Pass 1: label addresses.
        let mut offsets = Vec::with_capacity(self.items.len());
        let mut pos: u32 = 0;
        for item in &self.items {
            offsets.push(pos);
            pos += item.size_words_at(pos);
        }
        offsets.push(pos);
        let mut labels: HashMap<String, u32> = HashMap::new();
        for (name, idx) in &self.labels {
            let addr = origin + offsets[*idx] * 4;
            if labels.insert(name.clone(), addr).is_some() {
                return Err(AsmError::DuplicateLabel(name.clone()));
            }
        }
        // Pass 2: emit.
        let lookup = |name: &String| -> Result<u32, AsmError> {
            labels
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::UnknownLabel(name.clone()))
        };
        let mut words = Vec::with_capacity(pos as usize);
        for (idx, item) in self.items.iter().enumerate() {
            let here = origin + offsets[idx] * 4;
            match item {
                Item::Fixed(instr) => words.push(encode(instr)),
                Item::Word(w) => words.push(*w),
                Item::Align(a) => {
                    let pad = (a - offsets[idx] % a) % a;
                    for _ in 0..pad {
                        words.push(encode(&Instr::Nop));
                    }
                }
                Item::LiLabel(rd, name) => {
                    let addr = lookup(name)?;
                    words.push(encode(&Instr::Movi(*rd, (addr & 0xFFFF) as u16)));
                    words.push(encode(&Instr::Movhi(*rd, (addr >> 16) as u16)));
                }
                Item::BranchTo(cond, rs, rt, name) => {
                    let target = lookup(name)?;
                    let off = instr_offset(here, target);
                    if !IMM18_RANGE.contains(&(off as i32)) || i64::from(off as i32) != off {
                        return Err(AsmError::OffsetOutOfRange {
                            label: name.clone(),
                            offset: off,
                        });
                    }
                    words.push(encode(&Instr::Branch(*cond, *rs, *rt, off as i32)));
                }
                Item::JumpTo { link, target: name } => {
                    let target = lookup(name)?;
                    let off = instr_offset(here, target);
                    if !OFF26_RANGE.contains(&(off as i32)) || i64::from(off as i32) != off {
                        return Err(AsmError::OffsetOutOfRange {
                            label: name.clone(),
                            offset: off,
                        });
                    }
                    let instr = if *link {
                        Instr::Jal(off as i32)
                    } else {
                        Instr::J(off as i32)
                    };
                    words.push(encode(&instr));
                }
            }
        }
        Ok(Program {
            origin,
            words,
            labels,
        })
    }
}

/// Offset in instructions from the instruction *after* `here` to `target`.
fn instr_offset(here: u32, target: u32) -> i64 {
    (i64::from(target) - (i64::from(here) + 4)) / 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{decode, R1, R2, R3};

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        a.li(R1, 0); // 2 words: 0x0, 0x4
        a.label("top"); // 0x8
        a.addi(R1, R1, 1); // 0x8
        a.beq(R1, R2, "done"); // 0xC
        a.j("top"); // 0x10
        a.label("done"); // 0x14
        a.halt(); // 0x14
        let p = a.assemble(0).unwrap();
        assert_eq!(p.label("top"), Some(8));
        assert_eq!(p.label("done"), Some(0x14));
        // beq at 0xC: offset = (0x14 - 0x10)/4 = 1
        assert_eq!(
            decode(p.words()[3]).unwrap(),
            Instr::Branch(Cond::Eq, R1, R2, 1)
        );
        // j at 0x10: offset = (0x8 - 0x14)/4 = -3
        assert_eq!(decode(p.words()[4]).unwrap(), Instr::J(-3));
    }

    #[test]
    fn li_expands_to_two_instructions() {
        let mut a = Asm::new();
        a.li(R3, 0xDEAD_BEEF);
        let p = a.assemble(0).unwrap();
        assert_eq!(p.words().len(), 2);
        assert_eq!(decode(p.words()[0]).unwrap(), Instr::Movi(R3, 0xBEEF));
        assert_eq!(decode(p.words()[1]).unwrap(), Instr::Movhi(R3, 0xDEAD));
    }

    #[test]
    fn li_label_resolves_to_absolute_address() {
        let mut a = Asm::new();
        a.li_label(R1, "data");
        a.halt();
        a.label("data");
        a.word(42);
        let p = a.assemble(0x0100_0000).unwrap();
        assert_eq!(p.label("data"), Some(0x0100_000C));
        assert_eq!(decode(p.words()[0]).unwrap(), Instr::Movi(R1, 0x000C));
        assert_eq!(decode(p.words()[1]).unwrap(), Instr::Movhi(R1, 0x0100));
        assert_eq!(p.words()[3], 42);
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut a = Asm::new();
        a.label("x").nop().label("x");
        assert_eq!(
            a.assemble(0).unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn unknown_label_is_error() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble(0).unwrap_err(),
            AsmError::UnknownLabel("nowhere".into())
        );
    }

    #[test]
    fn misaligned_origin_is_error() {
        let mut a = Asm::new();
        a.nop();
        assert_eq!(a.assemble(2).unwrap_err(), AsmError::MisalignedOrigin(2));
    }

    #[test]
    fn branch_out_of_range_is_error() {
        let mut a = Asm::new();
        a.label("top");
        for _ in 0..(1 << 17) + 2 {
            a.nop();
        }
        a.beq(R1, R2, "top");
        assert!(matches!(
            a.assemble(0).unwrap_err(),
            AsmError::OffsetOutOfRange { .. }
        ));
    }

    #[test]
    fn size_words_accounts_for_li_expansion() {
        let mut a = Asm::new();
        a.li(R1, 5).nop().word(7);
        assert_eq!(a.size_words(), 4);
    }

    #[test]
    fn label_at_end_of_program_is_valid() {
        let mut a = Asm::new();
        a.nop();
        a.label("end");
        let p = a.assemble(0x100).unwrap();
        assert_eq!(p.label("end"), Some(0x104));
        assert_eq!(p.size_bytes(), 4);
    }

    #[test]
    fn data_words_are_emitted_verbatim() {
        let mut a = Asm::new();
        a.words(&[1, 2, 3]);
        let p = a.assemble(0).unwrap();
        assert_eq!(p.words(), &[1, 2, 3]);
    }
}
