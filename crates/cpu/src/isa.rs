//! The Srisc instruction set: in-memory form, binary encoding, decoding.
//!
//! Srisc is a 32-bit word-addressed load/store machine with sixteen
//! general-purpose registers (`r0` reads as zero; writes to it are
//! discarded). Every instruction encodes to exactly one 32-bit word, so
//! programs can be stored in simulated memory and fetched/decoded
//! cycle-by-cycle like a real instruction-set simulator would.
//!
//! # Encoding
//!
//! Bits `[31:26]` hold the opcode. The remaining fields depend on the
//! format:
//!
//! | format | fields |
//! |--------|--------|
//! | R-type ALU | `rd[25:22] rs[21:18] rt[17:14]` |
//! | I-type ALU / memory | `rd[25:22] rs[21:18] imm18[17:0]` (signed; shifts use a 5-bit shift amount) |
//! | move-immediate | `rd[25:22] imm16[15:0]` |
//! | branch | `rs[25:22] rt[21:18] off18[17:0]` (signed instruction offset) |
//! | jump | `off26[25:0]` (signed instruction offset) |
//! | jump-register | `rs[25:22]` |
//!
//! Branch/jump offsets are counted in *instructions*, relative to the
//! instruction following the branch.

use std::fmt;

/// A general-purpose register, `r0`–`r15`. `r0` is hardwired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub const fn new(n: u8) -> Self {
        assert!(n < 16, "Srisc has registers r0..r15");
        Reg(n)
    }

    /// The register number, `0..=15`.
    pub const fn num(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// `r0`: hardwired zero.
pub const R0: Reg = Reg::new(0);
/// `r1`, caller-saved scratch by convention.
pub const R1: Reg = Reg::new(1);
/// `r2`.
pub const R2: Reg = Reg::new(2);
/// `r3`.
pub const R3: Reg = Reg::new(3);
/// `r4`.
pub const R4: Reg = Reg::new(4);
/// `r5`.
pub const R5: Reg = Reg::new(5);
/// `r6`.
pub const R6: Reg = Reg::new(6);
/// `r7`.
pub const R7: Reg = Reg::new(7);
/// `r8`.
pub const R8: Reg = Reg::new(8);
/// `r9`.
pub const R9: Reg = Reg::new(9);
/// `r10`.
pub const R10: Reg = Reg::new(10);
/// `r11`.
pub const R11: Reg = Reg::new(11);
/// `r12`.
pub const R12: Reg = Reg::new(12);
/// `r13`, stack pointer by convention.
pub const R13: Reg = Reg::new(13);
/// `r14`, platform scratch by convention.
pub const R14: Reg = Reg::new(14);
/// `r15`, link register (written by `jal`).
pub const R15: Reg = Reg::new(15);

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `rs == rt`
    Eq,
    /// `rs != rt`
    Ne,
    /// `rs < rt`, signed
    Lt,
    /// `rs >= rt`, signed
    Ge,
    /// `rs < rt`, unsigned
    Ltu,
    /// `rs >= rt`, unsigned
    Geu,
}

impl Cond {
    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }
}

/// A decoded Srisc instruction.
///
/// Construct these through the [`Asm`](crate::Asm) DSL for real programs;
/// direct construction is used in tests and by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop the core; records the completion cycle.
    Halt,
    /// `rd = rs + rt`
    Add(Reg, Reg, Reg),
    /// `rd = rs - rt`
    Sub(Reg, Reg, Reg),
    /// `rd = rs & rt`
    And(Reg, Reg, Reg),
    /// `rd = rs | rt`
    Or(Reg, Reg, Reg),
    /// `rd = rs ^ rt`
    Xor(Reg, Reg, Reg),
    /// `rd = rs << (rt & 31)`
    Sll(Reg, Reg, Reg),
    /// `rd = rs >> (rt & 31)` (logical)
    Srl(Reg, Reg, Reg),
    /// `rd = rs >> (rt & 31)` (arithmetic)
    Sra(Reg, Reg, Reg),
    /// `rd = rs * rt` (low 32 bits)
    Mul(Reg, Reg, Reg),
    /// `rd = (rs < rt) ? 1 : 0`, signed
    Slt(Reg, Reg, Reg),
    /// `rd = (rs < rt) ? 1 : 0`, unsigned
    Sltu(Reg, Reg, Reg),
    /// `rd = rs + imm` (signed 18-bit immediate)
    Addi(Reg, Reg, i32),
    /// `rd = rs & imm` (immediate sign-extended)
    Andi(Reg, Reg, i32),
    /// `rd = rs | imm` (immediate sign-extended)
    Ori(Reg, Reg, i32),
    /// `rd = rs ^ imm` (immediate sign-extended)
    Xori(Reg, Reg, i32),
    /// `rd = rs << shamt`
    Slli(Reg, Reg, u8),
    /// `rd = rs >> shamt` (logical)
    Srli(Reg, Reg, u8),
    /// `rd = rs >> shamt` (arithmetic)
    Srai(Reg, Reg, u8),
    /// `rd = (rs < imm) ? 1 : 0`, signed
    Slti(Reg, Reg, i32),
    /// `rd = imm16` (zero-extended)
    Movi(Reg, u16),
    /// `rd = (rd & 0xFFFF) | (imm16 << 16)`
    Movhi(Reg, u16),
    /// `rd = mem[rs + imm]` (word)
    Ldw(Reg, Reg, i32),
    /// `mem[rs + imm] = rd` (word)
    Stw(Reg, Reg, i32),
    /// Conditional branch; offset counted in instructions from the next
    /// instruction.
    Branch(Cond, Reg, Reg, i32),
    /// Unconditional jump; offset as for branches (26-bit signed).
    J(i32),
    /// Jump and link: `r15 = return address`, then jump.
    Jal(i32),
    /// Jump to the address in `rs`.
    Jr(Reg),
}

/// Error produced when decoding an invalid instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Srisc instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const IMM18_MIN: i32 = -(1 << 17);
const IMM18_MAX: i32 = (1 << 17) - 1;
const OFF26_MIN: i32 = -(1 << 25);
const OFF26_MAX: i32 = (1 << 25) - 1;

/// Valid range of 18-bit signed immediates/offsets: `-131072..=131071`.
pub const IMM18_RANGE: std::ops::RangeInclusive<i32> = IMM18_MIN..=IMM18_MAX;
/// Valid range of 26-bit signed jump offsets.
pub const OFF26_RANGE: std::ops::RangeInclusive<i32> = OFF26_MIN..=OFF26_MAX;

mod op {
    pub const NOP: u32 = 0;
    pub const HALT: u32 = 1;
    pub const ADD: u32 = 2;
    pub const SUB: u32 = 3;
    pub const AND: u32 = 4;
    pub const OR: u32 = 5;
    pub const XOR: u32 = 6;
    pub const SLL: u32 = 7;
    pub const SRL: u32 = 8;
    pub const SRA: u32 = 9;
    pub const MUL: u32 = 10;
    pub const SLT: u32 = 11;
    pub const SLTU: u32 = 12;
    pub const ADDI: u32 = 13;
    pub const ANDI: u32 = 14;
    pub const ORI: u32 = 15;
    pub const XORI: u32 = 16;
    pub const SLLI: u32 = 17;
    pub const SRLI: u32 = 18;
    pub const SRAI: u32 = 19;
    pub const SLTI: u32 = 20;
    pub const MOVI: u32 = 21;
    pub const MOVHI: u32 = 22;
    pub const LDW: u32 = 23;
    pub const STW: u32 = 24;
    pub const BEQ: u32 = 25;
    pub const BNE: u32 = 26;
    pub const BLT: u32 = 27;
    pub const BGE: u32 = 28;
    pub const BLTU: u32 = 29;
    pub const BGEU: u32 = 30;
    pub const J: u32 = 31;
    pub const JAL: u32 = 32;
    pub const JR: u32 = 33;
}

fn imm18(v: i32) -> u32 {
    assert!(
        (IMM18_MIN..=IMM18_MAX).contains(&v),
        "immediate {v} out of 18-bit signed range"
    );
    (v as u32) & 0x3FFFF
}

fn off26(v: i32) -> u32 {
    assert!(
        (OFF26_MIN..=OFF26_MAX).contains(&v),
        "jump offset {v} out of 26-bit signed range"
    );
    (v as u32) & 0x03FF_FFFF
}

fn sext18(v: u32) -> i32 {
    ((v << 14) as i32) >> 14
}

fn sext26(v: u32) -> i32 {
    ((v << 6) as i32) >> 6
}

fn r(op: u32, rd: Reg, rs: Reg, rt: Reg) -> u32 {
    (op << 26)
        | (u32::from(rd.num()) << 22)
        | (u32::from(rs.num()) << 18)
        | (u32::from(rt.num()) << 14)
}

fn i(op: u32, rd: Reg, rs: Reg, imm: i32) -> u32 {
    (op << 26) | (u32::from(rd.num()) << 22) | (u32::from(rs.num()) << 18) | imm18(imm)
}

fn sh(op: u32, rd: Reg, rs: Reg, shamt: u8) -> u32 {
    assert!(shamt < 32, "shift amount {shamt} out of range");
    (op << 26) | (u32::from(rd.num()) << 22) | (u32::from(rs.num()) << 18) | u32::from(shamt)
}

/// Encodes an instruction to its 32-bit binary form.
///
/// # Panics
///
/// Panics if an immediate, offset or shift amount is out of range for its
/// field. The [`Asm`](crate::Asm) DSL validates ranges before encoding.
pub fn encode(instr: &Instr) -> u32 {
    use Instr::*;
    match *instr {
        Nop => op::NOP << 26,
        Halt => op::HALT << 26,
        Add(rd, rs, rt) => r(op::ADD, rd, rs, rt),
        Sub(rd, rs, rt) => r(op::SUB, rd, rs, rt),
        And(rd, rs, rt) => r(op::AND, rd, rs, rt),
        Or(rd, rs, rt) => r(op::OR, rd, rs, rt),
        Xor(rd, rs, rt) => r(op::XOR, rd, rs, rt),
        Sll(rd, rs, rt) => r(op::SLL, rd, rs, rt),
        Srl(rd, rs, rt) => r(op::SRL, rd, rs, rt),
        Sra(rd, rs, rt) => r(op::SRA, rd, rs, rt),
        Mul(rd, rs, rt) => r(op::MUL, rd, rs, rt),
        Slt(rd, rs, rt) => r(op::SLT, rd, rs, rt),
        Sltu(rd, rs, rt) => r(op::SLTU, rd, rs, rt),
        Addi(rd, rs, imm) => i(op::ADDI, rd, rs, imm),
        Andi(rd, rs, imm) => i(op::ANDI, rd, rs, imm),
        Ori(rd, rs, imm) => i(op::ORI, rd, rs, imm),
        Xori(rd, rs, imm) => i(op::XORI, rd, rs, imm),
        Slli(rd, rs, shamt) => sh(op::SLLI, rd, rs, shamt),
        Srli(rd, rs, shamt) => sh(op::SRLI, rd, rs, shamt),
        Srai(rd, rs, shamt) => sh(op::SRAI, rd, rs, shamt),
        Slti(rd, rs, imm) => i(op::SLTI, rd, rs, imm),
        Movi(rd, imm) => (op::MOVI << 26) | (u32::from(rd.num()) << 22) | u32::from(imm),
        Movhi(rd, imm) => (op::MOVHI << 26) | (u32::from(rd.num()) << 22) | u32::from(imm),
        Ldw(rd, rs, imm) => i(op::LDW, rd, rs, imm),
        Stw(rd, rs, imm) => i(op::STW, rd, rs, imm),
        Branch(cond, rs, rt, off) => {
            let opc = match cond {
                Cond::Eq => op::BEQ,
                Cond::Ne => op::BNE,
                Cond::Lt => op::BLT,
                Cond::Ge => op::BGE,
                Cond::Ltu => op::BLTU,
                Cond::Geu => op::BGEU,
            };
            (opc << 26) | (u32::from(rs.num()) << 22) | (u32::from(rt.num()) << 18) | imm18(off)
        }
        J(off) => (op::J << 26) | off26(off),
        Jal(off) => (op::JAL << 26) | off26(off),
        Jr(rs) => (op::JR << 26) | (u32::from(rs.num()) << 22),
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode is unknown or a shift amount is
/// out of range. (All register fields are 4 bits wide, so they are always
/// valid.)
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    use Instr::*;
    let opc = word >> 26;
    let rd = Reg::new(((word >> 22) & 0xF) as u8);
    let rs = Reg::new(((word >> 18) & 0xF) as u8);
    let rt = Reg::new(((word >> 14) & 0xF) as u8);
    let imm = sext18(word & 0x3FFFF);
    let imm16 = (word & 0xFFFF) as u16;
    let shamt = word & 0x3FFFF;
    let shift = || -> Result<u8, DecodeError> {
        if shamt < 32 {
            Ok(shamt as u8)
        } else {
            Err(DecodeError { word })
        }
    };
    Ok(match opc {
        op::NOP => Nop,
        op::HALT => Halt,
        op::ADD => Add(rd, rs, rt),
        op::SUB => Sub(rd, rs, rt),
        op::AND => And(rd, rs, rt),
        op::OR => Or(rd, rs, rt),
        op::XOR => Xor(rd, rs, rt),
        op::SLL => Sll(rd, rs, rt),
        op::SRL => Srl(rd, rs, rt),
        op::SRA => Sra(rd, rs, rt),
        op::MUL => Mul(rd, rs, rt),
        op::SLT => Slt(rd, rs, rt),
        op::SLTU => Sltu(rd, rs, rt),
        op::ADDI => Addi(rd, rs, imm),
        op::ANDI => Andi(rd, rs, imm),
        op::ORI => Ori(rd, rs, imm),
        op::XORI => Xori(rd, rs, imm),
        op::SLLI => Slli(rd, rs, shift()?),
        op::SRLI => Srli(rd, rs, shift()?),
        op::SRAI => Srai(rd, rs, shift()?),
        op::SLTI => Slti(rd, rs, imm),
        op::MOVI => Movi(rd, imm16),
        op::MOVHI => Movhi(rd, imm16),
        op::LDW => Ldw(rd, rs, imm),
        op::STW => Stw(rd, rs, imm),
        op::BEQ | op::BNE | op::BLT | op::BGE | op::BLTU | op::BGEU => {
            let cond = match opc {
                op::BEQ => Cond::Eq,
                op::BNE => Cond::Ne,
                op::BLT => Cond::Lt,
                op::BGE => Cond::Ge,
                op::BLTU => Cond::Ltu,
                _ => Cond::Geu,
            };
            // Branch packs rs in the rd field and rt in the rs field.
            Branch(cond, rd, rs, imm)
        }
        op::J => J(sext26(word & 0x03FF_FFFF)),
        op::JAL => Jal(sext26(word & 0x03FF_FFFF)),
        op::JR => Jr(rd),
        _ => return Err(DecodeError { word }),
    })
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
            Add(d, s, t) => write!(f, "add {d}, {s}, {t}"),
            Sub(d, s, t) => write!(f, "sub {d}, {s}, {t}"),
            And(d, s, t) => write!(f, "and {d}, {s}, {t}"),
            Or(d, s, t) => write!(f, "or {d}, {s}, {t}"),
            Xor(d, s, t) => write!(f, "xor {d}, {s}, {t}"),
            Sll(d, s, t) => write!(f, "sll {d}, {s}, {t}"),
            Srl(d, s, t) => write!(f, "srl {d}, {s}, {t}"),
            Sra(d, s, t) => write!(f, "sra {d}, {s}, {t}"),
            Mul(d, s, t) => write!(f, "mul {d}, {s}, {t}"),
            Slt(d, s, t) => write!(f, "slt {d}, {s}, {t}"),
            Sltu(d, s, t) => write!(f, "sltu {d}, {s}, {t}"),
            Addi(d, s, v) => write!(f, "addi {d}, {s}, {v}"),
            Andi(d, s, v) => write!(f, "andi {d}, {s}, {v}"),
            Ori(d, s, v) => write!(f, "ori {d}, {s}, {v}"),
            Xori(d, s, v) => write!(f, "xori {d}, {s}, {v}"),
            Slli(d, s, v) => write!(f, "slli {d}, {s}, {v}"),
            Srli(d, s, v) => write!(f, "srli {d}, {s}, {v}"),
            Srai(d, s, v) => write!(f, "srai {d}, {s}, {v}"),
            Slti(d, s, v) => write!(f, "slti {d}, {s}, {v}"),
            Movi(d, v) => write!(f, "movi {d}, {v:#x}"),
            Movhi(d, v) => write!(f, "movhi {d}, {v:#x}"),
            Ldw(d, s, v) => write!(f, "ldw {d}, [{s}{v:+}]"),
            Stw(d, s, v) => write!(f, "stw {d}, [{s}{v:+}]"),
            Branch(c, s, t, off) => write!(f, "{} {s}, {t}, {off:+}", c.mnemonic()),
            J(off) => write!(f, "j {off:+}"),
            Jal(off) => write!(f, "jal {off:+}"),
            Jr(s) => write!(f, "jr {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        use Instr::*;
        vec![
            Nop,
            Halt,
            Add(R1, R2, R3),
            Sub(R15, R0, R7),
            And(R4, R4, R4),
            Or(R1, R2, R3),
            Xor(R9, R10, R11),
            Sll(R1, R2, R3),
            Srl(R1, R2, R3),
            Sra(R1, R2, R3),
            Mul(R5, R6, R7),
            Slt(R1, R2, R3),
            Sltu(R1, R2, R3),
            Addi(R1, R2, -1),
            Addi(R1, R2, IMM18_MAX),
            Addi(R1, R2, IMM18_MIN),
            Andi(R1, R2, 0xFF),
            Ori(R1, R2, 0x7F),
            Xori(R1, R2, -3),
            Slli(R1, R2, 31),
            Srli(R1, R2, 0),
            Srai(R1, R2, 17),
            Slti(R1, R2, -42),
            Movi(R3, 0xFFFF),
            Movhi(R3, 0x0102),
            Ldw(R1, R13, 64),
            Stw(R2, R13, -64),
            Branch(Cond::Eq, R1, R2, -5),
            Branch(Cond::Ne, R1, R0, 100),
            Branch(Cond::Lt, R3, R4, 0),
            Branch(Cond::Ge, R3, R4, 1),
            Branch(Cond::Ltu, R3, R4, -1),
            Branch(Cond::Geu, R3, R4, 2),
            J(-1000),
            Jal(1000),
            Jr(R15),
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for instr in all_sample_instrs() {
            let word = encode(&instr);
            let back = decode(word).unwrap_or_else(|e| panic!("{instr}: {e}"));
            assert_eq!(back, instr, "round trip failed for {instr} ({word:#010x})");
        }
    }

    #[test]
    fn distinct_instructions_encode_distinctly() {
        let words: Vec<u32> = all_sample_instrs().iter().map(encode).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), words.len(), "encoding collision");
    }

    #[test]
    fn unknown_opcode_is_error() {
        let word = 63 << 26;
        assert_eq!(decode(word), Err(DecodeError { word }));
    }

    #[test]
    fn oversized_shift_amount_is_error() {
        // SLLI with shamt field = 32.
        let word = (17 << 26) | 32;
        assert!(decode(word).is_err());
    }

    #[test]
    #[should_panic(expected = "out of 18-bit signed range")]
    fn encode_rejects_oversized_immediate() {
        let _ = encode(&Instr::Addi(R1, R1, 1 << 17));
    }

    #[test]
    #[should_panic(expected = "shift amount")]
    fn encode_rejects_oversized_shift() {
        let _ = encode(&Instr::Slli(R1, R1, 32));
    }

    #[test]
    fn cond_eval_covers_signedness() {
        assert!(Cond::Lt.eval(u32::MAX, 0), "-1 < 0 signed");
        assert!(!Cond::Ltu.eval(u32::MAX, 0), "max !< 0 unsigned");
        assert!(Cond::Ge.eval(0, u32::MAX), "0 >= -1 signed");
        assert!(Cond::Geu.eval(u32::MAX, 1));
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Instr::Add(R1, R2, R3).to_string(), "add r1, r2, r3");
        assert_eq!(Instr::Ldw(R1, R13, 8).to_string(), "ldw r1, [r13+8]");
        assert_eq!(
            Instr::Branch(Cond::Ne, R1, R0, -2).to_string(),
            "bne r1, r0, -2"
        );
    }

    #[test]
    fn r0_is_reg_zero() {
        assert_eq!(R0.num(), 0);
        assert_eq!(R15.num(), 15);
    }

    #[test]
    #[should_panic(expected = "r0..r15")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }
}
