//! Property-based tests for the Srisc ISA, assembler, caches and the
//! cycle-true core (differential against the functional interpreter).

use std::rc::Rc;

use ntg_cpu::asm::Asm;
use ntg_cpu::cache::{Cache, CacheConfig};
use ntg_cpu::interp::{Interp, InterpStop};
use ntg_cpu::isa::{decode, encode, Cond, Instr, Reg};
use ntg_cpu::{CpuConfig, CpuCore};
use ntg_mem::{AddressMap, MemoryDevice, RegionKind};
use ntg_ocp::{channel, MasterId, SlaveId};
use ntg_sim::Component;
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Ltu),
        Just(Cond::Geu),
    ]
}

fn imm18() -> impl Strategy<Value = i32> {
    -(1i32 << 17)..(1 << 17)
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Add(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Sub(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::And(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Or(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Xor(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Sll(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Srl(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Sra(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Mul(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Slt(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Sltu(d, s, t)),
        (reg(), reg(), imm18()).prop_map(|(d, s, i)| Instr::Addi(d, s, i)),
        (reg(), reg(), imm18()).prop_map(|(d, s, i)| Instr::Andi(d, s, i)),
        (reg(), reg(), imm18()).prop_map(|(d, s, i)| Instr::Ori(d, s, i)),
        (reg(), reg(), imm18()).prop_map(|(d, s, i)| Instr::Xori(d, s, i)),
        (reg(), reg(), 0u8..32).prop_map(|(d, s, sh)| Instr::Slli(d, s, sh)),
        (reg(), reg(), 0u8..32).prop_map(|(d, s, sh)| Instr::Srli(d, s, sh)),
        (reg(), reg(), 0u8..32).prop_map(|(d, s, sh)| Instr::Srai(d, s, sh)),
        (reg(), reg(), imm18()).prop_map(|(d, s, i)| Instr::Slti(d, s, i)),
        (reg(), any::<u16>()).prop_map(|(d, i)| Instr::Movi(d, i)),
        (reg(), any::<u16>()).prop_map(|(d, i)| Instr::Movhi(d, i)),
        (reg(), reg(), imm18()).prop_map(|(d, s, i)| Instr::Ldw(d, s, i)),
        (reg(), reg(), imm18()).prop_map(|(d, s, i)| Instr::Stw(d, s, i)),
        (cond(), reg(), reg(), imm18()).prop_map(|(c, s, t, o)| Instr::Branch(c, s, t, o)),
        (-(1i32 << 25)..(1 << 25)).prop_map(Instr::J),
        (-(1i32 << 25)..(1 << 25)).prop_map(Instr::Jal),
        reg().prop_map(Instr::Jr),
    ]
}

proptest! {
    /// Every valid instruction encodes and decodes back to itself.
    #[test]
    fn isa_round_trip(instr in any_instr()) {
        prop_assert_eq!(decode(encode(&instr)), Ok(instr));
    }

    /// Arbitrary words either decode to something that re-encodes to the
    /// canonical form of the same instruction, or they are rejected —
    /// never a panic.
    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            // Re-encoding then re-decoding is a fixpoint.
            let canon = encode(&instr);
            prop_assert_eq!(decode(canon), Ok(instr));
        }
    }
}

/// A straight-line register program (no control flow, no memory): the
/// cycle-true core and the interpreter must agree on every register.
fn alu_only() -> impl Strategy<Value = Vec<Instr>> {
    let op = prop_oneof![
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Add(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Sub(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Mul(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Xor(d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Instr::Sltu(d, s, t)),
        (reg(), reg(), 0u8..32).prop_map(|(d, s, sh)| Instr::Slli(d, s, sh)),
        (reg(), reg(), 0u8..32).prop_map(|(d, s, sh)| Instr::Srai(d, s, sh)),
        (reg(), reg(), imm18()).prop_map(|(d, s, i)| Instr::Addi(d, s, i)),
        (reg(), any::<u16>()).prop_map(|(d, i)| Instr::Movi(d, i)),
        (reg(), any::<u16>()).prop_map(|(d, i)| Instr::Movhi(d, i)),
    ];
    prop::collection::vec(op, 1..60)
}

/// Word offsets (within a small private data window) for load/store mixes.
fn mem_ops() -> impl Strategy<Value = Vec<(bool, Reg, u32)>> {
    // Value registers r3..r12 only: r1 is the seed counter, r2 the base
    // pointer — clobbering those would make the access pattern depend on
    // loaded data and eventually fault on misalignment.
    let value_reg = (3u8..13).prop_map(Reg::new);
    prop::collection::vec((any::<bool>(), value_reg, 0u32..32), 1..30)
}

const PRIV: u32 = 0;
const DATA: u32 = 0x4000;

fn run_both(program: &ntg_cpu::Program) -> (Interp, CpuCore) {
    // Functional model (same initial stack pointer as the core).
    let mut interp = Interp::new();
    interp.load(program);
    interp.set_reg(Reg::new(13), 0x8000);
    let stop = interp.run(1_000_000);
    assert_eq!(stop, InterpStop::Halted, "interpreter must halt");

    // Cycle-true core with a direct-wired memory.
    let mut map = AddressMap::new();
    map.add("p", PRIV, 0x1_0000, SlaveId(0), RegionKind::PrivateMemory)
        .unwrap();
    let (mport, sport) = channel("cpu", MasterId(0));
    let mut mem = MemoryDevice::new("ram", PRIV, 0x1_0000, sport);
    mem.load_words(program.entry(), program.words());
    let mut cpu = CpuCore::new(
        "cpu",
        mport,
        Rc::new(map),
        CpuConfig {
            icache: CacheConfig::tiny(),
            dcache: CacheConfig::tiny(),
        },
        program.entry(),
        0x8000,
    );
    for now in 0..5_000_000u64 {
        cpu.tick(now);
        mem.tick(now);
        if cpu.halted() {
            break;
        }
    }
    assert!(cpu.halted(), "cycle-true core must halt");
    assert!(
        cpu.fault().is_none(),
        "no faults expected: {:?}",
        cpu.fault()
    );
    (interp, cpu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential: random ALU programs produce identical register
    /// files on the interpreter and the cycle-true core.
    #[test]
    fn alu_programs_agree(instrs in alu_only()) {
        let mut a = Asm::new();
        for i in &instrs {
            a.instr(*i);
        }
        a.halt();
        let program = a.assemble(PRIV).unwrap();
        let (interp, cpu) = run_both(&program);
        for r in 0..16u8 {
            prop_assert_eq!(
                interp.reg(Reg::new(r)),
                cpu.regs()[r as usize],
                "register r{} differs", r
            );
        }
    }

    /// Differential: random load/store mixes against a private data
    /// window leave identical memory and registers (write-through cache
    /// vs flat memory).
    #[test]
    fn memory_programs_agree(seed in any::<u16>(), ops in mem_ops()) {
        let mut a = Asm::new();
        // Seed a value register and the base pointer.
        a.li(Reg::new(1), u32::from(seed));
        a.li(Reg::new(2), DATA);
        for (is_store, r, word_off) in &ops {
            let off = (*word_off * 4) as i32;
            if *is_store {
                a.stw(*r, Reg::new(2), off);
            } else {
                a.ldw(*r, Reg::new(2), off);
            }
            // Mutate something between accesses so values vary.
            a.addi(Reg::new(1), Reg::new(1), 7);
        }
        a.halt();
        let program = a.assemble(PRIV).unwrap();
        let (interp, cpu) = run_both(&program);
        for r in 0..16u8 {
            prop_assert_eq!(interp.reg(Reg::new(r)), cpu.regs()[r as usize]);
        }
    }

    /// The cache behaves exactly like a flat array seen through
    /// fills/updates: random fill/read/write sequences never return a
    /// value that differs from the reference model.
    #[test]
    fn cache_matches_flat_model(
        ops in prop::collection::vec((0u8..3, 0u32..64, any::<u32>()), 1..200)
    ) {
        let cfg = CacheConfig { sets: 4, ways: 2, words_per_line: 4 };
        let mut cache = Cache::new(cfg);
        let mut flat = [0u32; 64]; // backing memory model, word-addressed
        for (kind, word, value) in ops {
            let addr = word * 4;
            match kind {
                0 => {
                    // Fill the line containing `addr` from the model.
                    let base = cache.line_addr(addr);
                    let w0 = (base / 4) as usize;
                    let line: Vec<u32> = flat[w0..w0 + 4].to_vec();
                    cache.fill(base, &line);
                }
                1 => {
                    // Read: if present, must match the model.
                    if let Some(got) = cache.read(addr) {
                        prop_assert_eq!(got, flat[word as usize]);
                    }
                }
                _ => {
                    // Write-through: update model, update cache if present.
                    flat[word as usize] = value;
                    cache.write_update(addr, value);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Assembler: label targets always resolve to the labelled
    /// instruction, wherever the label sits and however much padding
    /// `align` inserts.
    #[test]
    fn assembler_alignment_preserves_semantics(
        pre in 0usize..7,
        align in prop::sample::select(vec![1u32, 2, 4, 8]),
        value in any::<u16>(),
    ) {
        let mut a = Asm::new();
        for _ in 0..pre {
            a.nop();
        }
        a.align(align);
        a.label("target");
        a.movi(Reg::new(1), value);
        a.halt();
        a.j("target"); // unreachable, but must still resolve
        let p = a.assemble(0).unwrap();
        let target = p.label("target").unwrap();
        prop_assert_eq!(target % (align * 4), 0, "label must be aligned");
        // Run it: reaches halt with r1 = value.
        let mut i = Interp::new();
        i.load(&p);
        prop_assert_eq!(i.run(100), InterpStop::Halted);
        prop_assert_eq!(i.reg(Reg::new(1)), u32::from(value));
    }
}
