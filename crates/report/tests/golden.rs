//! Golden-file determinism: `ntg-report` output on the checked-in
//! mini-campaign (canonical JSONL + timings + metrics sidecars) must
//! be byte-identical to the checked-in goldens. Regenerate with:
//!
//! ```text
//! cargo run -p ntg-report --bin ntg-report -- \
//!     crates/report/tests/data/mini.jsonl \
//!     --md crates/report/tests/golden/mini.md \
//!     --csv crates/report/tests/golden
//! ```

use std::fs;
use std::path::PathBuf;

use ntg_report::{load_campaign, pareto, rank, render, saturation, table2, Campaign, RankAxis};

fn testdata(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(rel)
}

fn golden(name: &str) -> String {
    fs::read_to_string(testdata(&format!("golden/{name}"))).unwrap()
}

fn mini() -> Campaign {
    load_campaign(&testdata("data/mini.jsonl")).unwrap()
}

#[test]
fn mini_campaign_joins_both_sidecars() {
    let c = mini();
    assert_eq!(c.jobs.len(), 12);
    assert!(c.has_timings && c.has_metrics);
    assert!(c.jobs.iter().all(|j| j.wall_secs > 0.0));
    assert!(c.jobs.iter().all(|j| j.metrics.is_some()));
}

#[test]
fn markdown_matches_the_golden_byte_for_byte() {
    let c = mini();
    let md = render::markdown(&c);
    assert_eq!(md, golden("mini.md"));
    // And a second render of the same campaign is identical.
    assert_eq!(md, render::markdown(&c));
}

#[test]
fn csvs_match_the_goldens_byte_for_byte() {
    let c = mini();
    assert_eq!(render::csv_table2(&table2(&c)), golden("table2.csv"));
    let rankings = [
        rank(&c, RankAxis::Cycles),
        rank(&c, RankAxis::WallSecs),
        rank(&c, RankAxis::ErrorPct),
    ];
    assert_eq!(render::csv_rankings(&rankings), golden("rankings.csv"));
    assert_eq!(render::csv_pareto(&pareto(&c)), golden("pareto.csv"));
    assert_eq!(
        render::csv_saturation(&saturation(&c)),
        golden("saturation.csv")
    );
}

/// The synthetic mini-campaign (8 jobs: 2 fabrics × 2 patterns ×
/// 2 rates of Bernoulli traffic at 4 cores). Regenerate with:
///
/// ```text
/// cargo run -p ntg-serve --bin ntg-sweep -- \
///     --name synmini --workloads synthetic:64 --cores 4 \
///     --fabrics xpipes,crossbar --masters synthetic \
///     --patterns uniform,transpose --shapes bernoulli \
///     --rates 0.05,0.2 --seed 7 --threads 1 --no-store --quiet \
///     --out crates/report/tests/data/synmini.jsonl
/// cargo run -p ntg-report --bin ntg-report -- \
///     crates/report/tests/data/synmini.jsonl \
///     --md crates/report/tests/golden/synmini/report.md \
///     --csv crates/report/tests/golden/synmini
/// ```
fn synmini() -> Campaign {
    load_campaign(&testdata("data/synmini.jsonl")).unwrap()
}

#[test]
fn synthetic_campaign_carries_canonical_injection_rates() {
    let c = synmini();
    assert_eq!(c.jobs.len(), 8);
    assert!(c.jobs.iter().all(|j| j.master == "synthetic"));
    assert!(c
        .jobs
        .iter()
        .all(|j| j.offered_rate.is_some() && j.accepted_rate.is_some()));
}

#[test]
fn synthetic_saturation_view_matches_the_goldens() {
    let c = synmini();
    assert_eq!(render::markdown(&c), golden("synmini/report.md"));
    let rows = saturation(&c);
    assert_eq!(
        render::csv_saturation(&rows),
        golden("synmini/saturation.csv")
    );
    // Every low-rate point keeps up; every 0.2 point is past the knee.
    for r in &rows {
        let expect = r.mode.contains("@0.2/");
        assert_eq!(r.saturated, Some(expect), "{}|{}", r.interconnect, r.mode);
    }
}

#[test]
fn table2_view_reproduces_the_campaign_error_columns() {
    // The error % in the report must be exactly the canonical
    // `error_pct` the campaign engine derived — the report never
    // recomputes what the canonical file already pins.
    let c = mini();
    for row in table2(&c) {
        let job = c
            .jobs
            .iter()
            .find(|j| {
                j.workload == row.workload
                    && j.cores == row.cores
                    && j.interconnect == row.interconnect
                    && j.master == row.master
            })
            .unwrap();
        assert_eq!(row.error_pct, job.error_pct);
        assert_eq!(row.cycles, job.cycles);
    }
}
