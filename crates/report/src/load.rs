//! Loading a campaign and joining its sidecars.
//!
//! The canonical file is required; the `.timings.jsonl` and
//! `.metrics.jsonl` sidecars are joined in when present (a campaign
//! copied without its sidecars still reports, just without gain/wall
//! columns or utilization annotations).

use std::fs;
use std::path::Path;

use ntg_explore::{
    metrics_path, parse_results, timings_path, CampaignHeader, JobMetrics, JobResult, Json,
};

/// A fully-joined campaign: canonical results with wall times and
/// observability metrics patched in by job id.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The canonical file's header.
    pub header: CampaignHeader,
    /// Results in file (= job id) order. `wall_secs`/`skipped_cycles`/
    /// `ticked_cycles` are filled from the timings sidecar and
    /// `metrics` from the metrics sidecar, when those were found.
    pub jobs: Vec<JobResult>,
    /// Whether a timings sidecar was joined (gain columns need it).
    pub has_timings: bool,
    /// Whether a metrics sidecar was joined (utilization needs it).
    pub has_metrics: bool,
}

/// Loads `path` (a canonical campaign JSONL) and joins its sidecars
/// from the conventional adjacent paths.
///
/// # Errors
///
/// Returns a message if the canonical file is unreadable or malformed,
/// or if a sidecar that *is* present fails to parse (a present but
/// corrupt sidecar is an error, not a silent downgrade).
pub fn load_campaign(path: &Path) -> Result<Campaign, String> {
    let canonical =
        fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let read_opt = |p: &Path| -> Result<Option<String>, String> {
        if p.exists() {
            fs::read_to_string(p)
                .map(Some)
                .map_err(|e| format!("read {}: {e}", p.display()))
        } else {
            Ok(None)
        }
    };
    let timings = read_opt(&timings_path(path))?;
    let metrics = read_opt(&metrics_path(path))?;
    load_campaign_parts(&canonical, timings.as_deref(), metrics.as_deref())
}

/// Joins already-read file contents (see [`load_campaign`]).
///
/// # Errors
///
/// Returns a message describing the first malformation.
pub fn load_campaign_parts(
    canonical: &str,
    timings: Option<&str>,
    metrics: Option<&str>,
) -> Result<Campaign, String> {
    let loaded = parse_results(canonical, false)?;
    let mut jobs = loaded.results;
    jobs.sort_by_key(|j| j.id);

    let index_of = |jobs: &[JobResult], id: usize| jobs.binary_search_by_key(&id, |j| j.id).ok();

    if let Some(text) = timings {
        for (n, line) in text.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("timings line {}: {e}", n + 1))?;
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("timings line {}: missing `id`", n + 1))?
                as usize;
            if let Some(i) = index_of(&jobs, id) {
                jobs[i].wall_secs = v.get("wall_secs").and_then(Json::as_f64).unwrap_or(0.0);
                jobs[i].skipped_cycles =
                    v.get("skipped_cycles").and_then(Json::as_u64).unwrap_or(0);
                jobs[i].ticked_cycles = v.get("ticked_cycles").and_then(Json::as_u64).unwrap_or(0);
                jobs[i].visited_component_cycles = v
                    .get("visited_component_cycles")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                jobs[i].total_component_cycles = v
                    .get("total_component_cycles")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
            }
        }
    }

    if let Some(text) = metrics {
        for (n, line) in text.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let (id, _key, m) =
                JobMetrics::parse_line(line).map_err(|e| format!("metrics line {}: {e}", n + 1))?;
            if let Some(i) = index_of(&jobs, id) {
                jobs[i].metrics = Some(m);
            }
        }
    }

    Ok(Campaign {
        header: loaded.header,
        jobs,
        has_timings: timings.is_some(),
        has_metrics: metrics.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANONICAL: &str = concat!(
        "{\"campaign\":\"t\",\"fingerprint\":\"00000000000000ab\",\"jobs\":2}\n",
        "{\"id\":0,\"key\":\"w|2P|amba|cpu|-\",\"workload\":\"w\",\"cores\":2,\
         \"interconnect\":\"amba\",\"master\":\"cpu\",\"mode\":null,\
         \"seed\":\"0000000000000001\",\"completed\":true,\"cycles\":100,\
         \"sim_cycles\":110,\"transactions\":5,\"latency_mean\":null,\
         \"latency_max\":null,\"verified\":true,\"error_pct\":null,\
         \"trace_cache_hit\":null,\"image_cache_hit\":null,\"error\":null}\n",
        "{\"id\":1,\"key\":\"w|2P|amba|tg|reactive\",\"workload\":\"w\",\"cores\":2,\
         \"interconnect\":\"amba\",\"master\":\"tg\",\"mode\":\"reactive\",\
         \"seed\":\"0000000000000002\",\"completed\":true,\"cycles\":102,\
         \"sim_cycles\":110,\"transactions\":5,\"latency_mean\":null,\
         \"latency_max\":null,\"verified\":true,\"error_pct\":2.0,\
         \"trace_cache_hit\":false,\"image_cache_hit\":false,\"error\":null}\n",
    );

    #[test]
    fn canonical_alone_loads_without_sidecars() {
        let c = load_campaign_parts(CANONICAL, None, None).unwrap();
        assert_eq!(c.jobs.len(), 2);
        assert!(!c.has_timings);
        assert!(!c.has_metrics);
        assert_eq!(c.jobs[1].wall_secs, 0.0);
        assert!(c.jobs[1].metrics.is_none());
    }

    #[test]
    fn sidecars_join_by_job_id() {
        let timings = "{\"campaign\":\"t\",\"threads\":1,\"wall_secs\":3.0}\n\
             {\"id\":1,\"key\":\"w|2P|amba|tg|reactive\",\"wall_secs\":0.5,\
             \"skipped_cycles\":40,\"ticked_cycles\":70,\
             \"visited_component_cycles\":150,\"total_component_cycles\":440}\n";
        let metrics = "{\"campaign\":\"t\",\"fingerprint\":\"00000000000000ab\"}\n".to_string()
            + &ntg_explore::JobMetrics {
                fabric_utilization_cycles: 55,
                busy_window_cycles: 16,
                ..Default::default()
            }
            .render_line(1, "w|2P|amba|tg|reactive")
            + "\n";
        let c = load_campaign_parts(CANONICAL, Some(timings), Some(&metrics)).unwrap();
        assert!(c.has_timings && c.has_metrics);
        assert_eq!(c.jobs[1].wall_secs, 0.5);
        assert_eq!(c.jobs[1].skipped_cycles, 40);
        assert_eq!(c.jobs[1].visited_component_cycles, 150);
        assert_eq!(c.jobs[1].total_component_cycles, 440);
        assert_eq!(
            c.jobs[1]
                .metrics
                .as_ref()
                .unwrap()
                .fabric_utilization_cycles,
            55
        );
        assert!(c.jobs[0].metrics.is_none(), "no line for job 0");
    }

    #[test]
    fn corrupt_present_sidecar_is_an_error() {
        let err = load_campaign_parts(CANONICAL, Some("header\nnot json\n"), None).unwrap_err();
        assert!(err.contains("timings line"), "{err}");
    }
}
