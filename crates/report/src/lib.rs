//! Campaign analysis and reporting (`ntg-report`).
//!
//! The paper's evidence is observational: Table 2's cycle-error and
//! simulation-gain columns, Figure 2's transaction timelines, and the
//! §6 saturation argument (TG gain peaks, then declines as the bus
//! saturates). `ntg-sweep` produces the raw material — a canonical
//! campaign JSONL plus the `.timings.jsonl` and `.metrics.jsonl`
//! sidecars — and this crate turns it into those views:
//!
//! * [`load_campaign`] joins the three files by job id into a
//!   [`Campaign`];
//! * [`table2`] reproduces the paper's Table 2 per design point:
//!   reference (CPU) cycles vs TG cycles, completion-time error %, and
//!   simulation-time gain;
//! * [`rank`] orders configurations along one axis (completion cycles,
//!   host wall time, |error %|) with competition ranking for ties;
//! * [`pareto_frontier`] finds the non-dominated configurations in
//!   (cycles, wall time, |error %|) space;
//! * [`saturation`] tabulates gain vs core count annotated with the
//!   measured fabric utilization and arbitration-conflict density from
//!   the metrics sidecar — the §6 narrative as numbers;
//! * [`link_summaries`] condenses per-link traffic into a bounded view
//!   per job — the K hottest links plus a power-of-two busy-cycle
//!   histogram — so thousand-link meshes summarise to one row;
//! * [`render`] emits all of the above as deterministic markdown and
//!   CSV (byte-identical for identical inputs, so reports can be
//!   golden-tested and diffed in CI).
//!
//! Everything here is a pure function of the input files: no clocks,
//! no environment, no floating-point accumulation order dependent on
//! hashing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod load;
pub mod render;

pub use analysis::{
    link_summaries, pareto, pareto_frontier, rank, saturation, table2, LinkSummary, ParetoPoint,
    RankAxis, RankEntry, Ranking, SaturationRow, Table2Row,
};
pub use load::{load_campaign, load_campaign_parts, Campaign};
