//! Campaign analysis and reporting (`ntg-report`).
//!
//! The paper's evidence is observational: Table 2's cycle-error and
//! simulation-gain columns, Figure 2's transaction timelines, and the
//! §6 saturation argument (TG gain peaks, then declines as the bus
//! saturates). `ntg-sweep` produces the raw material — a canonical
//! campaign JSONL plus the `.timings.jsonl` and `.metrics.jsonl`
//! sidecars — and this crate turns it into those views:
//!
//! * [`load_campaign`] joins the three files by job id into a
//!   [`Campaign`];
//! * [`table2`] reproduces the paper's Table 2 per design point:
//!   reference (CPU) cycles vs TG cycles, completion-time error %, and
//!   simulation-time gain;
//! * [`rank`] orders configurations along one axis (completion cycles,
//!   host wall time, |error %|) with competition ranking for ties;
//! * [`pareto_frontier`] finds the non-dominated configurations in
//!   (cycles, wall time, |error %|) space;
//! * [`saturation`] tabulates gain vs core count annotated with the
//!   measured fabric utilization and arbitration-conflict density from
//!   the metrics sidecar — the §6 narrative as numbers;
//! * [`link_summaries`] condenses per-link traffic into a bounded view
//!   per job — the K hottest links plus a power-of-two busy-cycle
//!   histogram — so thousand-link meshes summarise to one row;
//! * [`render`] emits all of the above as deterministic markdown and
//!   CSV (byte-identical for identical inputs, so reports can be
//!   golden-tested and diffed in CI).
//!
//! Everything here is a pure function of the input files: no clocks,
//! no environment, no floating-point accumulation order dependent on
//! hashing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod load;
pub mod render;

pub use analysis::{
    link_summaries, pareto, pareto_frontier, rank, saturation, table2, LinkSummary, ParetoPoint,
    RankAxis, RankEntry, Ranking, SaturationRow, Table2Row,
};
pub use load::{load_campaign, load_campaign_parts, Campaign};

/// The view names [`render_view`] accepts, in presentation order.
pub const VIEW_NAMES: [&str; 5] = ["markdown", "table2", "rankings", "pareto", "saturation"];

/// Renders one named view straight from file *contents* — the
/// render-from-bytes entry point `ntg-serve` uses to answer
/// `GET /jobs/<id>/report/<view>` without touching the filesystem.
/// `markdown` is the full report; the other views are the
/// corresponding CSVs. Output is deterministic for identical inputs,
/// exactly like the file-based CLI path.
///
/// # Errors
///
/// Returns a message for an unknown view name or malformed campaign
/// content.
pub fn render_view(
    view: &str,
    canonical: &str,
    timings: Option<&str>,
    metrics: Option<&str>,
) -> Result<String, String> {
    let c = load_campaign_parts(canonical, timings, metrics)?;
    match view {
        "markdown" => Ok(render::markdown(&c)),
        "table2" => Ok(render::csv_table2(&table2(&c))),
        "rankings" => {
            let rankings = [
                rank(&c, RankAxis::Cycles),
                rank(&c, RankAxis::WallSecs),
                rank(&c, RankAxis::ErrorPct),
            ];
            Ok(render::csv_rankings(&rankings))
        }
        "pareto" => Ok(render::csv_pareto(&pareto(&c))),
        "saturation" => Ok(render::csv_saturation(&saturation(&c))),
        other => Err(format!(
            "unknown view `{other}` (expected one of: {})",
            VIEW_NAMES.join(", ")
        )),
    }
}
