//! Deterministic markdown and CSV rendering of campaign analyses.
//!
//! Output is a pure function of the loaded [`Campaign`]: fixed column
//! orders, fixed float precision, `-` for absent values. Identical
//! inputs render byte-identical documents, which is what lets CI diff
//! reports against checked-in goldens.

use std::fmt::Write as _;

use crate::analysis::{
    link_summaries, pareto, rank, saturation, table2, ParetoPoint, RankAxis, Ranking,
    SaturationRow, Table2Row,
};
use crate::load::Campaign;

/// Job keys contain `|`, which would end a markdown table cell.
fn md_cell(s: &str) -> String {
    s.replace('|', "\\|")
}

fn opt_u64(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
}

fn opt_f64(v: Option<f64>, decimals: usize) -> String {
    v.map(|x| format!("{x:.decimals$}"))
        .unwrap_or_else(|| "-".into())
}

fn opt_bool(v: Option<bool>) -> String {
    match v {
        Some(true) => "ok".into(),
        Some(false) => "MISMATCH".into(),
        None => "-".into(),
    }
}

/// Renders the full campaign report as one markdown document: summary,
/// Table-2 view, per-axis rankings, Pareto frontier, and saturation
/// curves.
pub fn markdown(c: &Campaign) -> String {
    let mut out = String::new();
    let failed = c.jobs.iter().filter(|j| j.error.is_some()).count();
    let _ = writeln!(out, "# Campaign `{}`", c.header.name);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} jobs (fingerprint `{:016x}`), {} failed. Sidecars: timings {}, metrics {}.",
        c.jobs.len(),
        c.header.fingerprint,
        failed,
        if c.has_timings { "joined" } else { "absent" },
        if c.has_metrics { "joined" } else { "absent" },
    );

    let _ = writeln!(out, "\n## Table 2 — completion time, error, and gain\n");
    let _ = writeln!(
        out,
        "| workload | cores | fabric | master | mode | ref cycles | cycles | err % | gain | verified |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
    for r in table2(c) {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            r.workload,
            r.cores,
            r.interconnect,
            r.master,
            r.mode,
            opt_u64(r.ref_cycles),
            opt_u64(r.cycles),
            opt_f64(r.error_pct, 2),
            opt_f64(r.gain, 2),
            opt_bool(r.verified),
        );
    }

    let _ = writeln!(out, "\n## Rankings\n");
    for axis in [RankAxis::Cycles, RankAxis::WallSecs, RankAxis::ErrorPct] {
        let r = rank(c, axis);
        let _ = writeln!(out, "### by {}\n", r.axis);
        if r.entries.is_empty() {
            let _ = writeln!(out, "(no job carries this value)");
        } else {
            let _ = writeln!(out, "| rank | configuration | {} |", r.axis);
            let _ = writeln!(out, "|---|---|---|");
            for e in &r.entries {
                let _ = writeln!(out, "| {} | {} | {:.4} |", e.rank, md_cell(&e.key), e.value);
            }
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "## Pareto frontier — cycles × wall s × |err %|\n");
    let points = pareto(c);
    if points.is_empty() {
        let _ = writeln!(out, "(needs jobs with cycles, wall time, and error %)");
    } else {
        let _ = writeln!(
            out,
            "| configuration | cycles | wall s | abs err % | frontier |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|");
        for p in &points {
            let _ = writeln!(
                out,
                "| {} | {:.0} | {:.4} | {:.2} | {} |",
                md_cell(&p.key),
                p.objectives[0],
                p.objectives[1],
                p.objectives[2],
                if p.on_frontier { "*" } else { "" },
            );
        }
    }

    let _ = writeln!(out, "\n## Saturation — load, latency, and gain\n");
    let rows = saturation(c);
    if rows.is_empty() {
        let _ = writeln!(out, "(no TG or synthetic jobs in this campaign)");
    } else {
        let _ = writeln!(
            out,
            "| workload | fabric | cores | traffic | gain | fabric util % | \
             conflicts/kcycle | offered | accepted | latency | sat |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|");
        for r in &rows {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                r.workload,
                r.interconnect,
                r.cores,
                md_cell(&r.mode),
                opt_f64(r.gain, 2),
                opt_f64(r.utilization_pct, 2),
                opt_f64(r.conflicts_per_kcycle, 3),
                opt_f64(r.offered_rate, 4),
                opt_f64(r.accepted_rate, 4),
                opt_f64(r.latency_mean, 2),
                sat_cell(r.saturated),
            );
        }
    }

    let _ = writeln!(out, "\n## Links — hottest links and busy-cycle spread\n");
    let sums = link_summaries(c, TOP_LINKS);
    if sums.is_empty() {
        let _ = writeln!(out, "(needs the metrics sidecar)");
    } else {
        // The visit column appears only when the timings sidecar carries
        // the O(active) scheduler's counters, so older campaigns render
        // unchanged.
        let visits = sums.iter().any(|s| s.visit_ratio().is_some());
        if visits {
            let _ = writeln!(
                out,
                "| configuration | links | hottest (link:busy) | spread (≤bound:links) | visited/total comp-cycles |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|");
        } else {
            let _ = writeln!(
                out,
                "| configuration | links | hottest (link:busy) | spread (≤bound:links) |"
            );
            let _ = writeln!(out, "|---|---|---|---|");
        }
        for s in &sums {
            let top: Vec<String> = s.top.iter().map(|(i, b)| format!("{i}:{b}")).collect();
            let hist: Vec<String> = s
                .histogram
                .iter()
                .map(|(ub, n)| format!("≤{ub}:{n}"))
                .collect();
            let _ = write!(
                out,
                "| {} | {} | {} | {} |",
                md_cell(&s.key),
                s.links,
                top.join(" "),
                hist.join(" "),
            );
            if visits {
                let cell = match s.visit_ratio() {
                    Some(r) => format!(
                        "{}/{} ({:.4})",
                        s.visited_component_cycles, s.total_component_cycles, r
                    ),
                    None => "-".into(),
                };
                let _ = write!(out, " {cell} |");
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// How many hottest links the report's link view lists per job. The
/// histogram column covers the rest, so a 16×16 mesh's links summarise
/// to one bounded row instead of hundreds of columns.
const TOP_LINKS: usize = 8;

/// Saturation flag cell: `SAT` past the knee, `ok` under it, `-`
/// without rate data.
fn sat_cell(v: Option<bool>) -> String {
    match v {
        Some(true) => "SAT".into(),
        Some(false) => "ok".into(),
        None => "-".into(),
    }
}

/// Renders the Table-2 view as CSV (header row first).
pub fn csv_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "workload,cores,fabric,master,mode,ref_cycles,cycles,error_pct,gain,verified\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            r.workload,
            r.cores,
            r.interconnect,
            r.master,
            r.mode,
            opt_u64(r.ref_cycles),
            opt_u64(r.cycles),
            opt_f64(r.error_pct, 4),
            opt_f64(r.gain, 4),
            opt_bool(r.verified),
        );
    }
    out
}

/// Renders rankings as one long-format CSV (`axis,rank,key,value`).
pub fn csv_rankings(rankings: &[Ranking]) -> String {
    let mut out = String::from("axis,rank,configuration,value\n");
    for r in rankings {
        for e in &r.entries {
            let _ = writeln!(out, "{},{},{},{:.4}", r.axis, e.rank, e.key, e.value);
        }
    }
    out
}

/// Renders the Pareto view as CSV.
pub fn csv_pareto(points: &[ParetoPoint]) -> String {
    let mut out = String::from("configuration,cycles,wall_secs,abs_error_pct,on_frontier\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{:.0},{:.6},{:.4},{}",
            p.key, p.objectives[0], p.objectives[1], p.objectives[2], p.on_frontier
        );
    }
    out
}

/// Renders saturation curves as CSV.
pub fn csv_saturation(rows: &[SaturationRow]) -> String {
    let mut out = String::from(
        "workload,fabric,cores,traffic,gain,fabric_utilization_pct,conflicts_per_kcycle,\
         offered_rate,accepted_rate,latency_mean,saturated\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            r.workload,
            r.interconnect,
            r.cores,
            r.mode,
            opt_f64(r.gain, 4),
            opt_f64(r.utilization_pct, 4),
            opt_f64(r.conflicts_per_kcycle, 4),
            opt_f64(r.offered_rate, 4),
            opt_f64(r.accepted_rate, 4),
            opt_f64(r.latency_mean, 4),
            r.saturated
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_explore::CampaignHeader;

    #[test]
    fn empty_campaign_still_renders_every_section() {
        let c = Campaign {
            header: CampaignHeader {
                name: "empty".into(),
                fingerprint: 0xabc,
                jobs: 0,
            },
            jobs: vec![],
            has_timings: false,
            has_metrics: false,
        };
        let md = markdown(&c);
        assert!(md.contains("# Campaign `empty`"));
        assert!(md.contains("## Table 2"));
        assert!(md.contains("## Rankings"));
        assert!(md.contains("## Pareto frontier"));
        assert!(md.contains("## Saturation"));
        assert!(md.contains("(no TG or synthetic jobs in this campaign)"));
        assert!(md.contains("## Links"));
        assert!(md.contains("(needs the metrics sidecar)"));
    }
}
