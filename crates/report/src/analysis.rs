//! Campaign analyses: Table-2 views, rankings, Pareto frontiers, and
//! saturation curves.
//!
//! Every function here is deterministic: inputs are walked in job-id
//! order, ties break lexicographically on the job key, and floating
//! point is only ever compared/divided, never accumulated in a
//! data-dependent order.

use ntg_explore::JobResult;

use crate::load::Campaign;

/// One row of the Table-2 view: a non-reference run (TG or stochastic)
/// against the CPU reference for the same (workload, cores,
/// interconnect) design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Workload spec string.
    pub workload: String,
    /// Core count.
    pub cores: usize,
    /// Interconnect under evaluation.
    pub interconnect: String,
    /// Master kind of the evaluated run (`tg` / `stochastic`).
    pub master: String,
    /// Translation mode (`-` for masters without one).
    pub mode: String,
    /// Reference (CPU) completion time in cycles.
    pub ref_cycles: Option<u64>,
    /// Evaluated run's completion time in cycles.
    pub cycles: Option<u64>,
    /// Completion-time error vs the reference, percent.
    pub error_pct: Option<f64>,
    /// Simulation-time gain: reference wall time / evaluated wall time.
    pub gain: Option<f64>,
    /// Golden-model verification outcome of the evaluated run.
    pub verified: Option<bool>,
}

/// Builds the Table-2 view: one row per non-CPU job, joined with its
/// CPU reference. Rows come out in job-id order.
pub fn table2(c: &Campaign) -> Vec<Table2Row> {
    let reference = |j: &JobResult| -> Option<&JobResult> {
        c.jobs.iter().find(|r| {
            r.master == "cpu"
                && r.workload == j.workload
                && r.cores == j.cores
                && r.interconnect == j.interconnect
        })
    };
    c.jobs
        .iter()
        .filter(|j| j.master != "cpu")
        .map(|j| {
            let cpu = reference(j);
            let ref_cycles = cpu.and_then(|r| r.cycles);
            let error_pct = j.error_pct.or_else(|| match (ref_cycles, j.cycles) {
                (Some(r), Some(t)) if r > 0 => Some((t as f64 - r as f64) / r as f64 * 100.0),
                _ => None,
            });
            let gain = match (cpu.map(|r| r.wall_secs), j.wall_secs) {
                (Some(r), t) if r > 0.0 && t > 0.0 => Some(r / t),
                _ => None,
            };
            Table2Row {
                workload: j.workload.clone(),
                cores: j.cores,
                interconnect: j.interconnect.clone(),
                master: j.master.clone(),
                mode: j.mode.clone().unwrap_or_else(|| "-".into()),
                ref_cycles,
                cycles: j.cycles,
                error_pct,
                gain,
                verified: j.verified,
            }
        })
        .collect()
}

/// The axis a [`Ranking`] orders configurations along. All axes rank
/// ascending: fewer cycles, less wall time, smaller |error| are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankAxis {
    /// Completion time in simulated cycles.
    Cycles,
    /// Host wall-clock seconds (needs the timings sidecar).
    WallSecs,
    /// Absolute completion-time error percent (non-CPU jobs only).
    ErrorPct,
}

impl RankAxis {
    /// Stable axis name used in report output.
    pub fn name(self) -> &'static str {
        match self {
            RankAxis::Cycles => "cycles",
            RankAxis::WallSecs => "wall_secs",
            RankAxis::ErrorPct => "abs_error_pct",
        }
    }

    fn value(self, j: &JobResult) -> Option<f64> {
        match self {
            RankAxis::Cycles => j.cycles.map(|c| c as f64),
            RankAxis::WallSecs => (j.wall_secs > 0.0).then_some(j.wall_secs),
            RankAxis::ErrorPct => j.error_pct.map(f64::abs),
        }
    }
}

/// One configuration's place in a [`Ranking`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankEntry {
    /// 1-based competition rank (ties share a rank; the next distinct
    /// value skips past them: 1, 1, 3).
    pub rank: usize,
    /// Job key of the configuration.
    pub key: String,
    /// The axis value.
    pub value: f64,
}

/// Configurations ordered along one axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    /// Which axis (see [`RankAxis::name`]).
    pub axis: &'static str,
    /// Best first. Jobs without a value on this axis are omitted.
    pub entries: Vec<RankEntry>,
}

/// Ranks every job that has a value on `axis`, best (smallest) first,
/// with competition ranking for exact ties. Ties order
/// lexicographically by key so output is deterministic.
pub fn rank(c: &Campaign, axis: RankAxis) -> Ranking {
    let mut scored: Vec<(f64, &str)> = c
        .jobs
        .iter()
        .filter_map(|j| axis.value(j).map(|v| (v, j.key.as_str())))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(b.1)));
    let mut entries: Vec<RankEntry> = Vec::with_capacity(scored.len());
    for (i, (value, key)) in scored.iter().enumerate() {
        let rank = if i > 0 && *value == scored[i - 1].0 {
            entries[i - 1].rank
        } else {
            i + 1
        };
        entries.push(RankEntry {
            rank,
            key: (*key).to_string(),
            value: *value,
        });
    }
    Ranking {
        axis: axis.name(),
        entries,
    }
}

/// A point in the cycles × wall-time × |error| objective space.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Job key of the configuration.
    pub key: String,
    /// Objective values, all minimized.
    pub objectives: Vec<f64>,
    /// Whether the point is on the Pareto frontier.
    pub on_frontier: bool,
}

/// Marks the non-dominated points among `points` (each a key plus a
/// vector of minimized objectives; all vectors must be the same
/// length). A point is dominated if some other point is no worse on
/// every objective and strictly better on at least one; exact
/// duplicates do not dominate each other, so ties stay on the
/// frontier. Output preserves input order.
pub fn pareto_frontier(points: &[(String, Vec<f64>)]) -> Vec<ParetoPoint> {
    let dominates = |a: &[f64], b: &[f64]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    points
        .iter()
        .map(|(key, obj)| ParetoPoint {
            key: key.clone(),
            objectives: obj.clone(),
            on_frontier: !points.iter().any(|(_, other)| dominates(other, obj)),
        })
        .collect()
}

/// Builds the campaign's Pareto view over (completion cycles, wall
/// seconds, |error %|) for every job that has all three values.
pub fn pareto(c: &Campaign) -> Vec<ParetoPoint> {
    let points: Vec<(String, Vec<f64>)> = c
        .jobs
        .iter()
        .filter_map(|j| match (j.cycles, j.wall_secs, j.error_pct) {
            (Some(cy), w, Some(e)) if w > 0.0 => Some((j.key.clone(), vec![cy as f64, w, e.abs()])),
            _ => None,
        })
        .collect();
    pareto_frontier(&points)
}

/// One point on a saturation curve. Two kinds of jobs land here:
///
/// - TG jobs: the paper's §6 view of how simulation gain and measured
///   fabric load evolve with core count (gain peaks, then falls off).
/// - Synthetic jobs: one point of a latency-vs-offered-load curve —
///   offered and accepted injection rates plus mean latency, with a
///   `saturated` flag once the fabric stops keeping up.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationRow {
    /// Workload spec string.
    pub workload: String,
    /// Interconnect under evaluation.
    pub interconnect: String,
    /// Core count.
    pub cores: usize,
    /// Traffic descriptor (`pattern+shape@rate/words` for synthetic
    /// jobs, translation mode for TG jobs, `-` otherwise).
    pub mode: String,
    /// Simulation-time gain of the TG run vs the CPU reference.
    pub gain: Option<f64>,
    /// Measured fabric occupancy as a percentage of simulated cycles
    /// (aggregate link-cycles; can exceed 100 on multi-link fabrics).
    pub utilization_pct: Option<f64>,
    /// Lost arbitration rounds per thousand simulated cycles.
    pub conflicts_per_kcycle: Option<f64>,
    /// Offered injection rate in packets/cycle/master (synthetic only).
    pub offered_rate: Option<f64>,
    /// Accepted injection rate in packets/cycle/master (synthetic only).
    pub accepted_rate: Option<f64>,
    /// Mean transaction latency in cycles.
    pub latency_mean: Option<f64>,
    /// Whether the design point is past saturation: the fabric accepted
    /// less than 99% of the offered load. `None` without rate data.
    pub saturated: Option<bool>,
}

/// Builds saturation curves in job-id order: one row per TG job
/// (joined with its CPU reference for gain) and one per synthetic job
/// (offered vs accepted rate plus latency, saturation flagged when
/// accepted falls below 99% of offered).
pub fn saturation(c: &Campaign) -> Vec<SaturationRow> {
    c.jobs
        .iter()
        .filter(|j| j.master == "tg" || j.master == "synthetic")
        .map(|j| {
            let cpu = c.jobs.iter().find(|r| {
                r.master == "cpu"
                    && r.workload == j.workload
                    && r.cores == j.cores
                    && r.interconnect == j.interconnect
            });
            let gain = match (cpu.map(|r| r.wall_secs), j.wall_secs) {
                (Some(r), t) if r > 0.0 && t > 0.0 => Some(r / t),
                _ => None,
            };
            let (utilization_pct, conflicts_per_kcycle) = match (&j.metrics, j.sim_cycles) {
                (Some(m), cycles) if cycles > 0 => (
                    Some(m.fabric_utilization_cycles as f64 / cycles as f64 * 100.0),
                    Some(m.conflicts as f64 / cycles as f64 * 1000.0),
                ),
                _ => (None, None),
            };
            let saturated = match (j.offered_rate, j.accepted_rate) {
                (Some(o), Some(a)) if o > 0.0 => Some(a < 0.99 * o),
                _ => None,
            };
            SaturationRow {
                workload: j.workload.clone(),
                interconnect: j.interconnect.clone(),
                cores: j.cores,
                mode: j.mode.clone().unwrap_or_else(|| "-".into()),
                gain,
                utilization_pct,
                conflicts_per_kcycle,
                offered_rate: j.offered_rate,
                accepted_rate: j.accepted_rate,
                latency_mean: j.latency_mean,
                saturated,
            }
        })
        .collect()
}

/// A bounded per-job summary of link traffic for the report's link
/// view. Big meshes carry thousands of link-cycle counters; this keeps
/// every row O(top-K): the K hottest links by busy cycles plus a
/// power-of-two histogram of busy cycles over *all* links.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSummary {
    /// Job key of the configuration.
    pub key: String,
    /// Total number of per-link records in the sidecar.
    pub links: usize,
    /// `(link index, busy cycles)`, hottest first; ties break on the
    /// lower index. At most K entries.
    pub top: Vec<(usize, u64)>,
    /// `(bucket upper bound, link count)` over busy cycles, ascending;
    /// bucket bounds are `0, 1, 3, 7, …, 2^k − 1` and empty buckets are
    /// omitted.
    pub histogram: Vec<(u64, usize)>,
    /// Component-cycles the engine actually executed for this job
    /// (timings sidecar; 0 when absent).
    pub visited_component_cycles: u64,
    /// The dense-scan denominator `components × cycles` (timings
    /// sidecar; 0 when absent).
    pub total_component_cycles: u64,
}

impl LinkSummary {
    /// Fraction of dense-scan component-cycles the engine actually
    /// executed — the O(active) scheduler's win on this job (1.0 means
    /// no win, small means mostly-idle components were skipped).
    /// `None` without timings-sidecar visit counters.
    pub fn visit_ratio(&self) -> Option<f64> {
        (self.total_component_cycles > 0)
            .then(|| self.visited_component_cycles as f64 / self.total_component_cycles as f64)
    }
}

/// Builds the link view: one bounded [`LinkSummary`] per job that has
/// link metrics, in job-id order.
pub fn link_summaries(c: &Campaign, top_k: usize) -> Vec<LinkSummary> {
    c.jobs
        .iter()
        .filter_map(|j| {
            let m = j.metrics.as_ref()?;
            let busy = &m.link_busy_cycles;
            if busy.is_empty() {
                return None;
            }
            let mut order: Vec<usize> = (0..busy.len()).collect();
            order.sort_by(|&a, &b| busy[b].cmp(&busy[a]).then(a.cmp(&b)));
            let top = order.iter().take(top_k).map(|&i| (i, busy[i])).collect();
            // Bucket a count into [2^k, 2^(k+1)) by its upper bound
            // 2^(k+1) − 1 (zero gets its own bucket).
            let bound = |v: u64| {
                if v == 0 {
                    0
                } else {
                    u64::MAX >> v.leading_zeros()
                }
            };
            let mut histogram: Vec<(u64, usize)> = Vec::new();
            for &v in busy {
                let b = bound(v);
                match histogram.iter_mut().find(|(ub, _)| *ub == b) {
                    Some((_, n)) => *n += 1,
                    None => histogram.push((b, 1)),
                }
            }
            histogram.sort_unstable_by_key(|&(ub, _)| ub);
            Some(LinkSummary {
                key: j.key.clone(),
                links: busy.len(),
                top,
                histogram,
                visited_component_cycles: j.visited_component_cycles,
                total_component_cycles: j.total_component_cycles,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_explore::CampaignHeader;

    fn job(id: usize, key: &str, cycles: Option<u64>, wall: f64, err: Option<f64>) -> JobResult {
        JobResult {
            id,
            key: key.into(),
            workload: "w".into(),
            cores: 2,
            interconnect: "amba".into(),
            master: "tg".into(),
            mode: Some("reactive".into()),
            seed: 0,
            completed: cycles.is_some(),
            cycles,
            sim_cycles: cycles.unwrap_or(0),
            transactions: 0,
            latency_mean: None,
            latency_max: None,
            verified: None,
            error_pct: err,
            offered_rate: None,
            accepted_rate: None,
            trace_cache_hit: None,
            image_cache_hit: None,
            error: None,
            wall_secs: wall,
            skipped_cycles: 0,
            ticked_cycles: 0,
            visited_component_cycles: 0,
            total_component_cycles: 0,
            metrics: None,
        }
    }

    fn campaign(jobs: Vec<JobResult>) -> Campaign {
        Campaign {
            header: CampaignHeader {
                name: "t".into(),
                fingerprint: 0,
                jobs: jobs.len(),
            },
            jobs,
            has_timings: true,
            has_metrics: false,
        }
    }

    #[test]
    fn link_summaries_bound_top_k_and_bucket_by_powers_of_two() {
        let mut j = job(0, "w|4P|xpipes:4x4|synthetic|uniform", Some(10), 0.0, None);
        j.metrics = Some(ntg_explore::JobMetrics {
            link_grants: vec![1; 6],
            link_stall_cycles: vec![0; 6],
            link_busy_cycles: vec![5, 900, 0, 900, 17, 1],
            ..Default::default()
        });
        let c = campaign(vec![j]);
        let s = &link_summaries(&c, 3)[0];
        assert_eq!(s.links, 6);
        // Hottest first, exact ties on the lower index, capped at K.
        assert_eq!(s.top, [(1, 900), (3, 900), (4, 17)]);
        // 0 → ≤0; 1 → ≤1; 5 → ≤7; 17 → ≤31; 900×2 → ≤1023.
        assert_eq!(s.histogram, [(0, 1), (1, 1), (7, 1), (31, 1), (1023, 2)]);
        // Jobs without metrics produce no row.
        let none = campaign(vec![job(0, "k", Some(1), 0.0, None)]);
        assert!(link_summaries(&none, 3).is_empty());
    }

    #[test]
    fn pareto_of_empty_input_is_empty() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn pareto_single_point_is_on_the_frontier() {
        let got = pareto_frontier(&[("a".into(), vec![1.0, 2.0])]);
        assert_eq!(got.len(), 1);
        assert!(got[0].on_frontier);
    }

    #[test]
    fn pareto_exact_ties_both_stay_on_the_frontier() {
        let got = pareto_frontier(&[
            ("a".into(), vec![1.0, 2.0]),
            ("b".into(), vec![1.0, 2.0]),
            ("c".into(), vec![2.0, 3.0]),
        ]);
        assert!(got[0].on_frontier && got[1].on_frontier);
        assert!(!got[2].on_frontier, "c is dominated by both ties");
    }

    #[test]
    fn pareto_trade_offs_keep_both_extremes() {
        let got = pareto_frontier(&[
            ("fast-wrong".into(), vec![1.0, 9.0]),
            ("slow-right".into(), vec![9.0, 1.0]),
            ("mediocre".into(), vec![5.0, 5.0]),
            ("dominated".into(), vec![9.0, 9.0]),
        ]);
        let on: Vec<&str> = got
            .iter()
            .filter(|p| p.on_frontier)
            .map(|p| p.key.as_str())
            .collect();
        assert_eq!(on, ["fast-wrong", "slow-right", "mediocre"]);
    }

    #[test]
    fn ranking_is_competition_style_on_ties() {
        let c = campaign(vec![
            job(0, "b", Some(100), 0.0, None),
            job(1, "a", Some(100), 0.0, None),
            job(2, "c", Some(200), 0.0, None),
            job(3, "d", None, 0.0, None), // no value: omitted
        ]);
        let r = rank(&c, RankAxis::Cycles);
        let got: Vec<(usize, &str)> = r.entries.iter().map(|e| (e.rank, e.key.as_str())).collect();
        // Ties share rank 1 (ordered by key) and `c` takes rank 3.
        assert_eq!(got, [(1, "a"), (1, "b"), (3, "c")]);
    }

    #[test]
    fn ranking_of_empty_campaign_is_empty() {
        let c = campaign(vec![]);
        assert!(rank(&c, RankAxis::WallSecs).entries.is_empty());
    }

    #[test]
    fn error_axis_ranks_by_absolute_value() {
        let c = campaign(vec![
            job(0, "under", Some(1), 0.0, Some(-4.0)),
            job(1, "over", Some(1), 0.0, Some(2.0)),
        ]);
        let r = rank(&c, RankAxis::ErrorPct);
        assert_eq!(r.entries[0].key, "over");
        assert_eq!(r.entries[0].value, 2.0);
        assert_eq!(r.entries[1].value, 4.0);
    }

    #[test]
    fn table2_joins_the_cpu_reference_and_computes_gain() {
        let mut cpu = job(0, "w|2P|amba|cpu|-", Some(1000), 2.0, None);
        cpu.master = "cpu".into();
        cpu.mode = None;
        let tg = job(1, "w|2P|amba|tg|reactive", Some(1040), 0.5, Some(4.0));
        let rows = table2(&campaign(vec![cpu, tg]));
        assert_eq!(rows.len(), 1, "cpu reference is not its own row");
        assert_eq!(rows[0].ref_cycles, Some(1000));
        assert_eq!(rows[0].error_pct, Some(4.0));
        assert_eq!(rows[0].gain, Some(4.0));
    }

    #[test]
    fn table2_without_reference_or_timings_degrades_to_none() {
        let tg = job(1, "w|2P|amba|tg|reactive", Some(1040), 0.0, None);
        let rows = table2(&campaign(vec![tg]));
        assert_eq!(rows[0].ref_cycles, None);
        assert_eq!(rows[0].error_pct, None);
        assert_eq!(rows[0].gain, None);
    }
}
