//! `ntg-report` — render campaign analyses from `ntg-sweep` output.
//!
//! ```text
//! ntg-report table2.jsonl                    # markdown report to stdout
//! ntg-report table2.jsonl --md report.md     # ... to a file
//! ntg-report table2.jsonl --csv out/         # table2/rankings/pareto/saturation CSVs
//! ```
//!
//! The canonical campaign file is required; the `.timings.jsonl` and
//! `.metrics.jsonl` sidecars next to it are joined automatically when
//! present (gain columns need timings, utilization needs metrics).

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use ntg_report::{load_campaign, pareto, rank, render, saturation, table2, RankAxis};

const USAGE: &str = "\
ntg-report — Table-2 views, rankings, Pareto frontiers, saturation curves

USAGE:
    ntg-report CAMPAIGN.jsonl [OPTIONS]

OPTIONS:
    --md PATH       write the markdown report to PATH instead of stdout
    --csv DIR       also write table2.csv, rankings.csv, pareto.csv and
                    saturation.csv into DIR (created if missing)
    -h, --help      this text

Sidecars (`CAMPAIGN.jsonl.timings.jsonl`, `CAMPAIGN.jsonl.metrics.jsonl`)
are joined automatically when present.
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ntg-report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut campaign: Option<PathBuf> = None;
    let mut md_out: Option<PathBuf> = None;
    let mut csv_dir: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--md" => md_out = Some(PathBuf::from(it.next().ok_or("--md needs a value")?)),
            "--csv" => csv_dir = Some(PathBuf::from(it.next().ok_or("--csv needs a value")?)),
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option `{flag}` (see --help)"));
            }
            path if campaign.is_none() => campaign = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected argument `{extra}` (see --help)")),
        }
    }
    let path = campaign.ok_or("give a campaign result file (see --help)")?;
    let c = load_campaign(&path)?;

    let md = render::markdown(&c);
    match &md_out {
        Some(p) => {
            fs::write(p, &md).map_err(|e| format!("write {}: {e}", p.display()))?;
            eprintln!("ntg-report: wrote {}", p.display());
        }
        None => print!("{md}"),
    }

    if let Some(dir) = &csv_dir {
        fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let rankings = [
            rank(&c, RankAxis::Cycles),
            rank(&c, RankAxis::WallSecs),
            rank(&c, RankAxis::ErrorPct),
        ];
        let files = [
            ("table2.csv", render::csv_table2(&table2(&c))),
            ("rankings.csv", render::csv_rankings(&rankings)),
            ("pareto.csv", render::csv_pareto(&pareto(&c))),
            ("saturation.csv", render::csv_saturation(&saturation(&c))),
        ];
        for (name, text) in files {
            let p = dir.join(name);
            fs::write(&p, text).map_err(|e| format!("write {}: {e}", p.display()))?;
            eprintln!("ntg-report: wrote {}", p.display());
        }
    }
    Ok(ExitCode::SUCCESS)
}
