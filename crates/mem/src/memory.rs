//! A word-addressed RAM slave with configurable access timing.

use ntg_ocp::{DataWords, LinkArena, OcpCmd, OcpRequest, OcpResponse, SlavePort};
use ntg_sim::{Activity, Component, Cycle};

enum State {
    Idle,
    Busy { done_at: Cycle },
}

/// A RAM slave device.
///
/// Services one transaction at a time. The device holds off *accepting* a
/// request until service completes (a real slave holding `SCmdAccept`
/// low): a request that becomes visible in cycle *t* is accepted — and
/// its read response pushed — in cycle
/// `t + wait_states + beats * beat_cycles`. Writes produce no response at
/// all; their acceptance is the completion signal the interconnect (and a
/// posted-write master) observes. While busy, the next request simply
/// stays asserted on the channel — exactly the "RD stalled at the slave
/// interface" behaviour the paper describes in Figure 2(a): from the
/// master's perspective the stall is part of the slave response time.
///
/// The device is word-addressed; sub-word accesses are not supported by
/// the platform. Out-of-range accesses produce an error response (writes
/// included, so the interconnect always sees the transaction terminate).
pub struct MemoryDevice {
    name: String,
    base: u32,
    words: Vec<u32>,
    wait_states: Cycle,
    beat_cycles: Cycle,
    port: SlavePort,
    state: State,
    reads: u64,
    writes: u64,
    errors: u64,
}

impl MemoryDevice {
    /// Default wait states before the first beat of a transaction.
    pub const DEFAULT_WAIT_STATES: Cycle = 1;
    /// Default extra cycles per data beat.
    pub const DEFAULT_BEAT_CYCLES: Cycle = 1;

    /// Creates a zero-initialised RAM of `size_bytes` at `base`,
    /// serviced through `port`, with default timing.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `size_bytes` is not word-aligned or the size is
    /// zero.
    pub fn new(name: impl Into<String>, base: u32, size_bytes: u32, port: SlavePort) -> Self {
        assert!(
            base.is_multiple_of(4) && size_bytes.is_multiple_of(4) && size_bytes > 0,
            "memory device must be word-aligned and non-empty"
        );
        Self {
            name: name.into(),
            base,
            words: vec![0; (size_bytes / 4) as usize],
            wait_states: Self::DEFAULT_WAIT_STATES,
            beat_cycles: Self::DEFAULT_BEAT_CYCLES,
            port,
            state: State::Idle,
            reads: 0,
            writes: 0,
            errors: 0,
        }
    }

    /// Overrides the wait states charged before the first beat.
    pub fn set_wait_states(&mut self, wait_states: Cycle) {
        self.wait_states = wait_states;
    }

    /// Overrides the cycles charged per data beat.
    ///
    /// # Panics
    ///
    /// Panics if `beat_cycles` is zero.
    pub fn set_beat_cycles(&mut self, beat_cycles: Cycle) {
        assert!(beat_cycles > 0, "beat must take at least one cycle");
        self.beat_cycles = beat_cycles;
    }

    /// The device's base byte address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The device's size in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Host-side (zero-time) word read, for loading checks and debugging.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unaligned or out of range.
    pub fn peek(&self, addr: u32) -> u32 {
        self.words[self.index(addr).expect("peek out of range")]
    }

    /// Host-side (zero-time) word write, for program/data loading.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unaligned or out of range.
    pub fn poke(&mut self, addr: u32, value: u32) {
        let idx = self.index(addr).expect("poke out of range");
        self.words[idx] = value;
    }

    /// Host-side bulk load of consecutive words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit in the device.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.poke(addr + (i as u32) * 4, *w);
        }
    }

    /// Number of read transactions serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write transactions serviced.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of error responses produced.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    fn index(&self, addr: u32) -> Option<usize> {
        if !addr.is_multiple_of(4) || addr < self.base {
            return None;
        }
        let idx = ((addr - self.base) / 4) as usize;
        (idx < self.words.len()).then_some(idx)
    }

    /// Applies the request to the array; returns the response to push, if
    /// any (writes complete silently — their acceptance is the signal).
    fn service(&mut self, req: &OcpRequest) -> Option<OcpResponse> {
        let beats = req.beats();
        // Validate the whole extent first so bursts never partially apply.
        let all_in_range = (0..beats).all(|b| self.index(req.addr + b * 4).is_some());
        if !all_in_range {
            self.errors += 1;
            return req
                .cmd
                .expects_response()
                .then(|| OcpResponse::error(req.tag));
        }
        match req.cmd {
            OcpCmd::Read | OcpCmd::BurstRead => {
                self.reads += 1;
                let data: DataWords = (0..beats)
                    .map(|b| {
                        let idx = self.index(req.addr + b * 4).expect("range checked");
                        self.words[idx]
                    })
                    .collect();
                Some(OcpResponse::ok(data, req.tag))
            }
            OcpCmd::Write | OcpCmd::BurstWrite => {
                self.writes += 1;
                for (b, w) in req.data.iter().enumerate() {
                    let idx = self
                        .index(req.addr + (b as u32) * 4)
                        .expect("range checked");
                    self.words[idx] = *w;
                }
                None
            }
        }
    }
}

impl Component<LinkArena> for MemoryDevice {
    fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        match &self.state {
            State::Idle => {
                if let Some((_, beats, _)) = self.port.peek_meta(net, now) {
                    let done_at = now + self.wait_states + Cycle::from(beats) * self.beat_cycles;
                    self.state = State::Busy { done_at };
                }
            }
            State::Busy { done_at } => {
                if now >= *done_at {
                    self.state = State::Idle;
                    let req = self
                        .port
                        .accept_request(net, now)
                        .expect("request stays asserted during service");
                    if let Some(resp) = self.service(&req) {
                        self.port.push_response(net, resp, now);
                    }
                }
            }
        }
    }

    #[inline]
    fn is_idle(&self, net: &LinkArena) -> bool {
        matches!(self.state, State::Idle) && self.port.is_quiet(net)
    }

    // Ticks before `done_at` and idle ticks with no visible request have
    // no side effects, so the default no-op `skip` is exact. A `Drained`
    // hint is safe even though a master may later assert a request: hints
    // are re-polled before every jump, and a master able to assert is
    // itself not drained, so it bounds the horizon.
    #[inline]
    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        match self.state {
            State::Busy { done_at } if done_at > now => Activity::IdleUntil(done_at),
            State::Busy { .. } => Activity::Busy,
            State::Idle => match self.port.request_visible_at(net) {
                Some(at) if at > now => Activity::IdleUntil(at),
                Some(_) => Activity::Busy,
                None if self.port.is_quiet(net) => Activity::Drained,
                // Not quiet without a request: a produced response or
                // acceptance is queued for the fabric to collect. The
                // device itself does nothing until then.
                None => Activity::waiting(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_ocp::{MasterId, OcpStatus};

    /// Runs a read to completion; returns the response and consume cycle.
    fn run_one(
        net: &mut LinkArena,
        mem: &mut MemoryDevice,
        master: &ntg_ocp::MasterPort,
        req: OcpRequest,
        start: Cycle,
    ) -> (OcpResponse, Cycle) {
        master.assert_request(net, req, start);
        for now in start..start + 100 {
            mem.tick(now, net);
            if let Some(resp) = master.take_response(net, now) {
                return (resp, now);
            }
        }
        panic!("no response within 100 cycles");
    }

    /// Runs a (posted) write until acceptance; returns the accept-visible
    /// cycle.
    fn run_write(
        net: &mut LinkArena,
        mem: &mut MemoryDevice,
        master: &ntg_ocp::MasterPort,
        req: OcpRequest,
        start: Cycle,
    ) -> Cycle {
        master.assert_request(net, req, start);
        for now in start..start + 100 {
            mem.tick(now, net);
            if master.take_accept(net, now).is_some() {
                return now;
            }
        }
        panic!("write not accepted within 100 cycles");
    }

    fn device() -> (LinkArena, MemoryDevice, ntg_ocp::MasterPort) {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("mem", MasterId(0));
        (net, MemoryDevice::new("ram", 0x1000, 0x100, s), m)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (mut net, mut mem, m) = device();
        run_write(&mut net, &mut mem, &m, OcpRequest::write(0x1010, 0xDEAD), 0);
        let (r, _) = run_one(&mut net, &mut mem, &m, OcpRequest::read(0x1010), 20);
        assert_eq!(r.data, vec![0xDEAD]);
        assert_eq!(r.status, OcpStatus::Ok);
    }

    #[test]
    fn write_acceptance_is_delayed_until_service_completes() {
        let (mut net, mut mem, m) = device();
        // assert @0 → visible @1 → service done and accepted @3 →
        // acceptance visible @4.
        let at = run_write(&mut net, &mut mem, &m, OcpRequest::write(0x1000, 1), 0);
        assert_eq!(at, 4);
    }

    #[test]
    fn single_read_latency_matches_timing_model() {
        let (mut net, mut mem, m) = device();
        // assert at 0 → visible at 1 → accepted at 1 →
        // response pushed at 1 + wait(1) + beats(1)*beat(1) = 3 →
        // consumed at 4.
        let (_, consumed_at) = run_one(&mut net, &mut mem, &m, OcpRequest::read(0x1000), 0);
        assert_eq!(consumed_at, 4);
    }

    #[test]
    fn burst_read_charges_per_beat() {
        let (mut net, mut mem, m) = device();
        mem.load_words(0x1000, &[1, 2, 3, 4]);
        let (resp, consumed_at) =
            run_one(&mut net, &mut mem, &m, OcpRequest::burst_read(0x1000, 4), 0);
        assert_eq!(resp.data, vec![1, 2, 3, 4]);
        // accept at 1, done at 1 + 1 + 4 = 6, consumed at 7.
        assert_eq!(consumed_at, 7);
    }

    #[test]
    fn burst_write_applies_all_beats() {
        let (mut net, mut mem, m) = device();
        run_write(
            &mut net,
            &mut mem,
            &m,
            OcpRequest::burst_write(0x1020, vec![10, 11, 12]),
            0,
        );
        assert_eq!(mem.peek(0x1020), 10);
        assert_eq!(mem.peek(0x1024), 11);
        assert_eq!(mem.peek(0x1028), 12);
        assert_eq!(mem.writes(), 1);
    }

    #[test]
    fn out_of_range_burst_write_touches_nothing() {
        let (mut net, mut mem, m) = device();
        mem.poke(0x10FC, 7);
        run_write(
            &mut net,
            &mut mem,
            &m,
            OcpRequest::burst_write(0x10FC, vec![1, 2]),
            0,
        );
        assert_eq!(mem.peek(0x10FC), 7, "partial burst must not apply");
        assert_eq!(mem.errors(), 1);
    }

    #[test]
    fn out_of_range_read_is_error_response() {
        let (mut net, mut mem, m) = device();
        let (resp, _) = run_one(&mut net, &mut mem, &m, OcpRequest::burst_read(0x10FC, 2), 0);
        assert_eq!(resp.status, OcpStatus::Error);
        assert_eq!(mem.errors(), 1);
    }

    #[test]
    fn below_base_is_error() {
        let (mut net, mut mem, m) = device();
        let (resp, _) = run_one(&mut net, &mut mem, &m, OcpRequest::read(0x0FFC), 0);
        assert_eq!(resp.status, OcpStatus::Error);
    }

    #[test]
    fn busy_device_delays_second_request() {
        let (mut net, mut mem, m) = device();
        // First transaction occupies the device; the second is asserted as
        // soon as the first is accepted, and must wait.
        m.assert_request(&mut net, OcpRequest::read(0x1000), 0);
        let mut first_resp_at = None;
        let mut second_asserted = false;
        let mut second_resp_at = None;
        for now in 0..40 {
            mem.tick(now, &mut net);
            m.take_accept(&mut net, now);
            if m.take_response(&mut net, now).is_some() {
                if first_resp_at.is_none() {
                    first_resp_at = Some(now);
                } else {
                    second_resp_at = Some(now);
                    break;
                }
            }
            if !second_asserted && !m.request_pending(&net) {
                m.assert_request(&mut net, OcpRequest::read(0x1004), now);
                second_asserted = true;
            }
        }
        let first = first_resp_at.expect("first response");
        let second = second_resp_at.expect("second response");
        assert!(
            second >= first + 3,
            "second transaction must be serialised after the first ({first} vs {second})"
        );
    }

    #[test]
    fn is_idle_reflects_outstanding_work() {
        let (mut net, mut mem, m) = device();
        assert!(mem.is_idle(&net));
        m.assert_request(&mut net, OcpRequest::read(0x1000), 0);
        assert!(!mem.is_idle(&net), "pending request keeps device busy");
        for now in 0..10 {
            mem.tick(now, &mut net);
            m.take_accept(&mut net, now);
            m.take_response(&mut net, now);
        }
        assert!(mem.is_idle(&net));
    }

    #[test]
    fn custom_wait_states_lengthen_service() {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("mem", MasterId(0));
        let mut mem = MemoryDevice::new("slow", 0x0, 0x100, s);
        mem.set_wait_states(10);
        let (_, consumed_at) = run_one(&mut net, &mut mem, &m, OcpRequest::read(0x0), 0);
        assert_eq!(consumed_at, 13); // 1 (accept) + 10 + 1 + 1 (visibility)
    }
}
