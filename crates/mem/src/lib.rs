//! Memory-side devices for the `ntg` platform: address decoding, RAM
//! slaves and the hardware semaphore bank.
//!
//! The MPARM platform the paper builds on exposes two kinds of memory to
//! each master — private (one owner) and shared (visible to all) — plus a
//! bank of hardware semaphores used for inter-processor synchronisation.
//! All three are OCP slaves behind the interconnect; this crate implements
//! them:
//!
//! * [`AddressMap`] — the system's memory map: named regions with a target
//!   slave, a cacheability attribute (shared memory and semaphores are
//!   never cached — MPARM has no cache coherence) and a *pollable* flag
//!   that the trace-to-TG translator uses to recognise synchronisation
//!   polling (the paper's §3 requirement that the TG "must be able to
//!   recognize polling accesses, i.e. a knowledge of what addressing
//!   ranges represent pollable resources").
//! * [`MemoryDevice`] — a word-addressed RAM slave with configurable wait
//!   states and per-beat burst timing.
//! * [`SemaphoreBank`] — test-and-set cells: a read returns the current
//!   value and atomically clears the cell, so a read of `1` means the
//!   lock was acquired; writing `1` releases it. This matches the paper's
//!   Figure 2(b)/Figure 3 polling traces (failed polls read `0`, the
//!   successful poll reads `1`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod map;
mod memory;
mod semaphore;

pub use map::{AddressMap, MapError, Region, RegionKind};
pub use memory::MemoryDevice;
pub use semaphore::SemaphoreBank;
