//! The system address map: regions, attributes and decoding.

use std::fmt;

use ntg_ocp::SlaveId;

/// What kind of resource a region exposes; determines default attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Memory owned by exactly one master. Cacheable, not pollable.
    PrivateMemory,
    /// Memory visible to all masters. Uncached (no coherence), not
    /// pollable.
    SharedMemory,
    /// Hardware semaphores. Uncached and pollable.
    Semaphore,
    /// Shared synchronisation flags/mailboxes polled by masters (barrier
    /// flags and similar). Uncached and pollable.
    SyncFlags,
}

impl RegionKind {
    /// Whether masters may cache data from this kind of region.
    pub fn cacheable(self) -> bool {
        matches!(self, RegionKind::PrivateMemory)
    }

    /// Whether the trace translator must treat repeated reads in this
    /// region as reactive polling.
    pub fn pollable(self) -> bool {
        matches!(self, RegionKind::Semaphore | RegionKind::SyncFlags)
    }
}

/// One named address range mapped to a slave.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    /// Human-readable name ("private0", "shared", "sem", …).
    pub name: String,
    /// First byte address. Word aligned.
    pub base: u32,
    /// Size in bytes. Word aligned, non-zero.
    pub size: u32,
    /// The slave that services accesses in this range.
    pub slave: SlaveId,
    /// The resource kind (determines cacheable/pollable attributes).
    pub kind: RegionKind,
}

impl Region {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    /// The first address *after* the region.
    pub fn end(&self) -> u64 {
        u64::from(self.base) + u64::from(self.size)
    }
}

/// Errors returned when constructing an [`AddressMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Region base or size was not word-aligned, or size was zero.
    Misaligned {
        /// The offending region's name.
        region: String,
    },
    /// Two regions overlap.
    Overlap {
        /// Name of the first overlapping region.
        a: String,
        /// Name of the second overlapping region.
        b: String,
    },
    /// The region would extend beyond the 32-bit address space.
    OutOfAddressSpace {
        /// The offending region's name.
        region: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Misaligned { region } => {
                write!(f, "region {region} is misaligned or empty")
            }
            MapError::Overlap { a, b } => write!(f, "regions {a} and {b} overlap"),
            MapError::OutOfAddressSpace { region } => {
                write!(f, "region {region} exceeds the 32-bit address space")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// The full system memory map.
///
/// Regions are validated (aligned, in-range, non-overlapping) as they are
/// added, so a constructed map always decodes unambiguously.
///
/// # Example
///
/// ```
/// use ntg_mem::{AddressMap, RegionKind};
/// use ntg_ocp::SlaveId;
///
/// let mut map = AddressMap::new();
/// map.add("private0", 0x0100_0000, 0x10_0000, SlaveId(0),
///         RegionKind::PrivateMemory)?;
/// map.add("sem", 0x1A00_0000, 0x400, SlaveId(1), RegionKind::Semaphore)?;
///
/// assert_eq!(map.slave_for(0x0100_0004), Some(SlaveId(0)));
/// assert!(map.is_pollable(0x1A00_0000));
/// assert!(!map.is_cacheable(0x1A00_0000));
/// # Ok::<(), ntg_mem::MapError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddressMap {
    regions: Vec<Region>,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a region after validating alignment and overlap.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] if the region is misaligned, empty, leaves
    /// the 32-bit address space, or overlaps an existing region.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        base: u32,
        size: u32,
        slave: SlaveId,
        kind: RegionKind,
    ) -> Result<(), MapError> {
        let name = name.into();
        if !base.is_multiple_of(4) || !size.is_multiple_of(4) || size == 0 {
            return Err(MapError::Misaligned { region: name });
        }
        if u64::from(base) + u64::from(size) > 1 << 32 {
            return Err(MapError::OutOfAddressSpace { region: name });
        }
        let region = Region {
            name,
            base,
            size,
            slave,
            kind,
        };
        for r in &self.regions {
            let disjoint = region.end() <= u64::from(r.base) || u64::from(region.base) >= r.end();
            if !disjoint {
                return Err(MapError::Overlap {
                    a: r.name.clone(),
                    b: region.name,
                });
            }
        }
        self.regions.push(region);
        Ok(())
    }

    /// Finds the region containing `addr`.
    pub fn decode(&self, addr: u32) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// The slave servicing `addr`, if mapped.
    pub fn slave_for(&self, addr: u32) -> Option<SlaveId> {
        self.decode(addr).map(|r| r.slave)
    }

    /// Whether `addr` is mapped and may be cached by masters.
    pub fn is_cacheable(&self, addr: u32) -> bool {
        self.decode(addr).is_some_and(|r| r.kind.cacheable())
    }

    /// Whether `addr` is mapped and belongs to a pollable region.
    pub fn is_pollable(&self, addr: u32) -> bool {
        self.decode(addr).is_some_and(|r| r.kind.pollable())
    }

    /// Iterates over all regions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }

    /// The `(base, size)` pairs of every pollable region — the "platform
    /// knowledge" handed to the trace-to-TG translator.
    pub fn pollable_ranges(&self) -> Vec<(u32, u32)> {
        self.regions
            .iter()
            .filter(|r| r.kind.pollable())
            .map(|r| (r.base, r.size))
            .collect()
    }

    /// Whether a whole (possibly burst) access `[addr, addr + bytes)` sits
    /// inside a single region.
    pub fn covers(&self, addr: u32, bytes: u32) -> bool {
        self.decode(addr)
            .is_some_and(|r| u64::from(addr) + u64::from(bytes) <= r.end() && addr >= r.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        let mut m = AddressMap::new();
        m.add("p0", 0x1000, 0x1000, SlaveId(0), RegionKind::PrivateMemory)
            .unwrap();
        m.add(
            "shared",
            0x8000,
            0x1000,
            SlaveId(1),
            RegionKind::SharedMemory,
        )
        .unwrap();
        m.add("sem", 0xA000, 0x100, SlaveId(2), RegionKind::Semaphore)
            .unwrap();
        m.add("sync", 0xB000, 0x100, SlaveId(1), RegionKind::SyncFlags)
            .unwrap();
        m
    }

    #[test]
    fn decode_hits_and_misses() {
        let m = map();
        assert_eq!(m.decode(0x1000).unwrap().name, "p0");
        assert_eq!(m.decode(0x1FFC).unwrap().name, "p0");
        assert!(m.decode(0x2000).is_none());
        assert!(m.decode(0x0FFC).is_none());
        assert_eq!(m.slave_for(0x8000), Some(SlaveId(1)));
        assert_eq!(m.slave_for(0xFFFF_FFFC), None);
    }

    #[test]
    fn attributes_follow_region_kind() {
        let m = map();
        assert!(m.is_cacheable(0x1000));
        assert!(!m.is_cacheable(0x8000), "shared memory is uncached");
        assert!(!m.is_pollable(0x8000));
        assert!(m.is_pollable(0xA000));
        assert!(m.is_pollable(0xB000), "sync flags are pollable");
        assert!(!m.is_cacheable(0xA000));
    }

    #[test]
    fn pollable_ranges_lists_sem_and_sync() {
        let m = map();
        assert_eq!(m.pollable_ranges(), vec![(0xA000, 0x100), (0xB000, 0x100)]);
    }

    #[test]
    fn overlap_rejected() {
        let mut m = map();
        let err = m
            .add("bad", 0x1800, 0x1000, SlaveId(3), RegionKind::SharedMemory)
            .unwrap_err();
        assert!(matches!(err, MapError::Overlap { .. }));
        // Adjacent is fine.
        m.add("ok", 0x2000, 0x100, SlaveId(3), RegionKind::SharedMemory)
            .unwrap();
    }

    #[test]
    fn misaligned_and_empty_rejected() {
        let mut m = AddressMap::new();
        assert!(matches!(
            m.add("x", 0x2, 0x100, SlaveId(0), RegionKind::SharedMemory),
            Err(MapError::Misaligned { .. })
        ));
        assert!(matches!(
            m.add("x", 0x0, 0x0, SlaveId(0), RegionKind::SharedMemory),
            Err(MapError::Misaligned { .. })
        ));
        assert!(matches!(
            m.add("x", 0x0, 0x6, SlaveId(0), RegionKind::SharedMemory),
            Err(MapError::Misaligned { .. })
        ));
    }

    #[test]
    fn address_space_end_is_usable() {
        let mut m = AddressMap::new();
        m.add(
            "top",
            0xFFFF_F000,
            0x1000,
            SlaveId(0),
            RegionKind::SharedMemory,
        )
        .unwrap();
        assert!(m.decode(0xFFFF_FFFC).is_some());
        let mut m2 = AddressMap::new();
        assert!(matches!(
            m2.add(
                "x",
                0xFFFF_F000,
                0x2000,
                SlaveId(0),
                RegionKind::SharedMemory
            ),
            Err(MapError::OutOfAddressSpace { .. })
        ));
    }

    #[test]
    fn covers_checks_burst_extent() {
        let m = map();
        assert!(m.covers(0x1FF0, 16));
        assert!(!m.covers(0x1FF0, 20), "burst crosses region end");
        assert!(!m.covers(0x2000, 4), "unmapped");
    }
}
