//! The hardware semaphore bank (test-and-set cells).

use ntg_ocp::{DataWords, LinkArena, OcpCmd, OcpRequest, OcpResponse, SlavePort};
use ntg_sim::{Activity, Component, Cycle};

enum State {
    Idle,
    Busy { done_at: Cycle },
}

/// A bank of word-addressed hardware test-and-set semaphore cells.
///
/// Semantics (matching the MPARM polling traces in the paper's Figure 2(b)
/// and Figure 3):
///
/// * **Read**: returns the cell's current value and atomically clears it.
///   A returned `1` means the semaphore was free and is now owned by the
///   reader; a returned `0` means it was (and stays) locked.
/// * **Write**: stores the low bit of the data. Writing `1` releases the
///   semaphore; writing `0` (re-)locks it.
///
/// All cells reset to `1` (free). Because the test-and-set happens in the
/// device, the *same* reactive contention dynamics arise whether the
/// masters are real CPU cores or traffic generators — which is precisely
/// what lets the TG reproduce architecture-dependent synchronisation
/// traffic instead of merely replaying it.
///
/// Burst accesses to the bank are protocol errors and receive an error
/// response.
pub struct SemaphoreBank {
    name: String,
    base: u32,
    cells: Vec<u32>,
    wait_states: Cycle,
    port: SlavePort,
    state: State,
    acquisitions: u64,
    failed_polls: u64,
    releases: u64,
    errors: u64,
}

impl SemaphoreBank {
    /// Default wait states for a semaphore access.
    pub const DEFAULT_WAIT_STATES: Cycle = 1;

    /// Creates a bank of `cells` semaphores at `base`, all initially free.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned or `cells` is zero.
    pub fn new(name: impl Into<String>, base: u32, cells: u32, port: SlavePort) -> Self {
        assert!(
            base.is_multiple_of(4),
            "semaphore bank base must be word-aligned"
        );
        assert!(cells > 0, "semaphore bank must have at least one cell");
        Self {
            name: name.into(),
            base,
            cells: vec![1; cells as usize],
            wait_states: Self::DEFAULT_WAIT_STATES,
            port,
            state: State::Idle,
            acquisitions: 0,
            failed_polls: 0,
            releases: 0,
            errors: 0,
        }
    }

    /// Overrides the access wait states.
    pub fn set_wait_states(&mut self, wait_states: Cycle) {
        self.wait_states = wait_states;
    }

    /// The bank's base byte address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The bank's size in bytes (one word per cell).
    pub fn size_bytes(&self) -> u32 {
        (self.cells.len() * 4) as u32
    }

    /// Host-side view of a cell's current value (no test-and-set).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn peek_cell(&self, cell: usize) -> u32 {
        self.cells[cell]
    }

    /// Number of successful acquisitions (reads that returned 1).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Number of failed polls (reads that returned 0).
    pub fn failed_polls(&self) -> u64 {
        self.failed_polls
    }

    /// Number of release writes (data low bit 1).
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Number of error responses (bursts, unmapped cells).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    fn index(&self, addr: u32) -> Option<usize> {
        if !addr.is_multiple_of(4) || addr < self.base {
            return None;
        }
        let idx = ((addr - self.base) / 4) as usize;
        (idx < self.cells.len()).then_some(idx)
    }

    /// Applies the request; returns the response to push, if any (writes
    /// complete silently).
    fn service(&mut self, req: &OcpRequest) -> Option<OcpResponse> {
        if req.burst != 1 || self.index(req.addr).is_none() {
            self.errors += 1;
            return req
                .cmd
                .expects_response()
                .then(|| OcpResponse::error(req.tag));
        }
        let idx = self.index(req.addr).expect("checked above");
        match req.cmd {
            OcpCmd::Read => {
                let value = self.cells[idx];
                if value == 1 {
                    self.cells[idx] = 0;
                    self.acquisitions += 1;
                } else {
                    self.failed_polls += 1;
                }
                Some(OcpResponse::ok(DataWords::one(value), req.tag))
            }
            OcpCmd::Write => {
                let bit = req.data.first().copied().unwrap_or(0) & 1;
                self.cells[idx] = bit;
                if bit == 1 {
                    self.releases += 1;
                }
                None
            }
            OcpCmd::BurstRead | OcpCmd::BurstWrite => unreachable!("burst rejected above"),
        }
    }
}

impl Component<LinkArena> for SemaphoreBank {
    fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        match &self.state {
            State::Idle => {
                if self.port.has_request(net, now) {
                    let done_at = now + self.wait_states + 1;
                    self.state = State::Busy { done_at };
                }
            }
            State::Busy { done_at } => {
                if now >= *done_at {
                    self.state = State::Idle;
                    let req = self
                        .port
                        .accept_request(net, now)
                        .expect("request stays asserted during service");
                    if let Some(resp) = self.service(&req) {
                        self.port.push_response(net, resp, now);
                    }
                }
            }
        }
    }

    #[inline]
    fn is_idle(&self, net: &LinkArena) -> bool {
        matches!(self.state, State::Idle) && self.port.is_quiet(net)
    }

    // Same hint shape as `MemoryDevice`: service and idle ticks have no
    // side effects, so the default no-op `skip` is exact.
    #[inline]
    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        match self.state {
            State::Busy { done_at } if done_at > now => Activity::IdleUntil(done_at),
            State::Busy { .. } => Activity::Busy,
            State::Idle => match self.port.request_visible_at(net) {
                Some(at) if at > now => Activity::IdleUntil(at),
                Some(_) => Activity::Busy,
                None if self.port.is_quiet(net) => Activity::Drained,
                // Produced output queued for the fabric to collect;
                // nothing for the device to do until then.
                None => Activity::waiting(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_ocp::{MasterId, OcpStatus};

    fn run_one(
        net: &mut LinkArena,
        bank: &mut SemaphoreBank,
        master: &ntg_ocp::MasterPort,
        req: OcpRequest,
        start: Cycle,
    ) -> OcpResponse {
        master.assert_request(net, req, start);
        for now in start..start + 50 {
            bank.tick(now, net);
            master.take_accept(net, now);
            if let Some(resp) = master.take_response(net, now) {
                return resp;
            }
        }
        panic!("no response within 50 cycles");
    }

    /// Runs a (posted) write until acceptance.
    fn run_write(
        net: &mut LinkArena,
        bank: &mut SemaphoreBank,
        master: &ntg_ocp::MasterPort,
        req: OcpRequest,
        start: Cycle,
    ) {
        master.assert_request(net, req, start);
        for now in start..start + 50 {
            bank.tick(now, net);
            if master.take_accept(net, now).is_some() {
                return;
            }
        }
        panic!("write not accepted within 50 cycles");
    }

    fn bank() -> (LinkArena, SemaphoreBank, ntg_ocp::MasterPort) {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("sem", MasterId(0));
        (net, SemaphoreBank::new("sem", 0xA000, 4, s), m)
    }

    #[test]
    fn read_acquires_then_fails() {
        let (mut net, mut b, m) = bank();
        let first = run_one(&mut net, &mut b, &m, OcpRequest::read(0xA000), 0);
        assert_eq!(first.word(), 1, "first read acquires");
        let second = run_one(&mut net, &mut b, &m, OcpRequest::read(0xA000), 20);
        assert_eq!(second.word(), 0, "second read fails");
        assert_eq!(b.acquisitions(), 1);
        assert_eq!(b.failed_polls(), 1);
    }

    #[test]
    fn write_one_releases() {
        let (mut net, mut b, m) = bank();
        run_one(&mut net, &mut b, &m, OcpRequest::read(0xA000), 0); // acquire
        run_write(&mut net, &mut b, &m, OcpRequest::write(0xA000, 1), 20); // release
        let again = run_one(&mut net, &mut b, &m, OcpRequest::read(0xA000), 40);
        assert_eq!(again.word(), 1, "released semaphore is acquirable");
        assert_eq!(b.releases(), 1);
    }

    #[test]
    fn cells_are_independent() {
        let (mut net, mut b, m) = bank();
        assert_eq!(
            run_one(&mut net, &mut b, &m, OcpRequest::read(0xA000), 0).word(),
            1
        );
        assert_eq!(
            run_one(&mut net, &mut b, &m, OcpRequest::read(0xA004), 20).word(),
            1
        );
        assert_eq!(b.peek_cell(0), 0);
        assert_eq!(b.peek_cell(1), 0);
        assert_eq!(b.peek_cell(2), 1);
    }

    #[test]
    fn burst_access_is_rejected() {
        let (mut net, mut b, m) = bank();
        let resp = run_one(&mut net, &mut b, &m, OcpRequest::burst_read(0xA000, 2), 0);
        assert_eq!(resp.status, OcpStatus::Error);
        assert_eq!(b.errors(), 1);
        assert_eq!(b.peek_cell(0), 1, "failed burst must not test-and-set");
    }

    #[test]
    fn out_of_range_cell_is_error() {
        let (mut net, mut b, m) = bank();
        let resp = run_one(&mut net, &mut b, &m, OcpRequest::read(0xA010), 0);
        assert_eq!(resp.status, OcpStatus::Error);
    }

    #[test]
    fn write_stores_only_low_bit() {
        let (mut net, mut b, m) = bank();
        run_write(
            &mut net,
            &mut b,
            &m,
            OcpRequest::write(0xA000, 0xFFFF_FFFE),
            0,
        );
        assert_eq!(b.peek_cell(0), 0, "even value locks");
        run_write(&mut net, &mut b, &m, OcpRequest::write(0xA000, 3), 20);
        assert_eq!(b.peek_cell(0), 1, "odd value releases");
    }
}
