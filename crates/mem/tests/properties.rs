//! Model-based property tests for the memory device and semaphore bank.

use ntg_mem::{MemoryDevice, SemaphoreBank};
use ntg_ocp::{channel, MasterId, MasterPort, OcpRequest, OcpStatus};
use ntg_sim::{Component, Cycle};
use proptest::prelude::*;

/// Runs one blocking transaction against a slave component; returns the
/// read word (None for writes), asserting conservation.
fn transact(
    device: &mut dyn Component,
    master: &MasterPort,
    req: OcpRequest,
    start: &mut Cycle,
) -> Option<Vec<u32>> {
    let expects = req.cmd.expects_response();
    master.assert_request(req, *start);
    for now in *start..*start + 600 {
        device.tick(now);
        if expects {
            if let Some(resp) = master.take_response(now) {
                *start = now + 1;
                return Some(resp.data);
            }
        } else if master.take_accept(now).is_some() {
            *start = now + 1;
            return None;
        }
    }
    panic!("transaction did not complete");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The memory device behaves exactly like an array under random
    /// word-sized and burst traffic.
    #[test]
    fn memory_matches_array_model(
        ops in prop::collection::vec(
            (0u8..4, 0u32..32, any::<u32>(), 1u8..5), 1..60
        )
    ) {
        let (m, s) = channel("mem", MasterId(0));
        let mut mem = MemoryDevice::new("ram", 0x1000, 0x1000, s);
        let mut model = vec![0u32; 0x400];
        let mut now: Cycle = 0;
        for (kind, word, value, blen) in ops {
            let addr = 0x1000 + word * 4;
            match kind {
                0 => {
                    let data = transact(&mut mem, &m, OcpRequest::read(addr), &mut now)
                        .expect("read data");
                    prop_assert_eq!(data[0], model[word as usize]);
                }
                1 => {
                    transact(&mut mem, &m, OcpRequest::write(addr, value), &mut now);
                    model[word as usize] = value;
                }
                2 => {
                    let data = transact(
                        &mut mem,
                        &m,
                        OcpRequest::burst_read(addr, blen),
                        &mut now,
                    )
                    .expect("burst data");
                    for (i, d) in data.iter().enumerate() {
                        prop_assert_eq!(*d, model[word as usize + i]);
                    }
                }
                _ => {
                    let payload: Vec<u32> =
                        (0..blen).map(|i| value.wrapping_add(u32::from(i))).collect();
                    transact(
                        &mut mem,
                        &m,
                        OcpRequest::burst_write(addr, payload.clone()),
                        &mut now,
                    );
                    for (i, d) in payload.iter().enumerate() {
                        model[word as usize + i] = *d;
                    }
                }
            }
        }
        // Final sweep: the device image equals the model.
        for w in 0..0x400u32 {
            prop_assert_eq!(mem.peek(0x1000 + w * 4), model[w as usize]);
        }
    }

    /// The semaphore bank implements test-and-set exactly: a model with
    /// one bit per cell predicts every read value.
    #[test]
    fn semaphore_matches_tas_model(
        ops in prop::collection::vec((any::<bool>(), 0u32..8, any::<u32>()), 1..80)
    ) {
        let (m, s) = channel("sem", MasterId(0));
        let mut bank = SemaphoreBank::new("sem", 0x0, 8, s);
        let mut model = [1u32; 8];
        let mut now: Cycle = 0;
        for (is_read, cell, value) in ops {
            let addr = cell * 4;
            if is_read {
                let data = transact(&mut bank, &m, OcpRequest::read(addr), &mut now)
                    .expect("read data");
                prop_assert_eq!(data[0], model[cell as usize]);
                if model[cell as usize] == 1 {
                    model[cell as usize] = 0; // acquired
                }
            } else {
                transact(&mut bank, &m, OcpRequest::write(addr, value), &mut now);
                model[cell as usize] = value & 1;
            }
        }
        for (c, want) in model.iter().enumerate() {
            prop_assert_eq!(bank.peek_cell(c), *want);
        }
    }

    /// Out-of-range reads always produce an error response and never
    /// disturb in-range contents.
    #[test]
    fn out_of_range_reads_are_isolated(
        word in 0u32..32, value in any::<u32>(), bad in 0x2000u32..0x3000u32
    ) {
        let (m, s) = channel("mem", MasterId(0));
        let mut mem = MemoryDevice::new("ram", 0x1000, 0x80, s);
        let mut now: Cycle = 0;
        transact(&mut mem, &m, OcpRequest::write(0x1000 + word % 32 * 4, value), &mut now);
        let bad_aligned = bad & !3;
        // Out-of-range read.
        m.assert_request(OcpRequest::read(bad_aligned), now);
        let mut status = None;
        for t in now..now + 200 {
            mem.tick(t);
            if let Some(resp) = m.take_response(t) {
                status = Some(resp.status);
                now = t + 1;
                break;
            }
        }
        prop_assert_eq!(status, Some(OcpStatus::Error));
        let data = transact(&mut mem, &m, OcpRequest::read(0x1000 + word % 32 * 4), &mut now)
            .expect("read data");
        prop_assert_eq!(data[0], value);
    }
}
