//! The persistent on-disk TG artifact store.
//!
//! The in-memory [`ArtifactCache`](crate::ArtifactCache) amortises
//! trace/translate cost *within* one campaign; this store amortises it
//! *across* campaigns and processes. The paper's speedup (§6, Table 2)
//! is precisely this economics — the expensive cycle-true reference run
//! is a one-time cost — so a second `ntg-sweep` over the same grid
//! should re-trace nothing, and a campaign split into shards should
//! build each artifact at most once between them.
//!
//! # Layout
//!
//! ```text
//! <base>/v<STORE_FORMAT_VERSION>/
//!   traces/<sanitised-key>-<fnv64(key)>.trace     trace-level entries
//!   images/<sanitised-key>-<fnv64(key)>.img       image-level entries
//!   .../<entry>.used                              LRU recency marker
//!   .../<entry>.lock                              cross-process build lock
//!   .../<entry>.tmp.<pid>                         in-flight writes
//! ```
//!
//! `<base>` defaults to `~/.cache/ntg`, overridable with the
//! `NTG_STORE` environment variable or `--store`. The directory level
//! carries the format version, and every image key additionally folds
//! [`STORE_FORMAT_VERSION`](ntg_core::STORE_FORMAT_VERSION) in via
//! `TranslatorConfig::cache_key` — codec evolution retires stale
//! entries instead of misreading them.
//!
//! # Atomicity and write-once across processes
//!
//! Entries are immutable once published. A writer builds into
//! `<entry>.tmp.<pid>` and publishes with an atomic `rename`, so a
//! reader never observes a half-written entry; every entry additionally
//! carries a magic/version/key header and an FNV-1a checksum trailer,
//! so torn or bit-rotted files degrade to a rebuild, never to a wrong
//! simulation. Concurrent builders of one key are serialised with an
//! `O_EXCL` lock file: losers poll for the winner's entry. A lock older
//! than [`LOCK_STALE_SECS`] is presumed orphaned (builder crashed) and
//! is broken; if two processes do end up building the same key, both
//! produce identical bytes (the whole pipeline is deterministic) and
//! the second rename is a harmless overwrite.
//!
//! # Eviction
//!
//! [`DiskStore::gc`] prunes least-recently-*used* entries (reads touch
//! a sidecar `.used` marker; plain mtime would make the store
//! insertion-ordered) until the store fits a byte budget.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use ntg_core::{StochasticConfig, TgImage, STORE_FORMAT_VERSION};
use ntg_trace::{BinCodecError, ByteReader, ByteWriter, MasterTrace};

use crate::cache::TraceArtifact;

/// Magic number at the start of every store entry (`"NTGS"`).
pub const STORE_ENTRY_MAGIC: [u8; 4] = *b"NTGS";

/// Age after which a build lock is presumed orphaned and broken.
pub const LOCK_STALE_SECS: u64 = 120;

/// Poll interval while waiting for another process's build.
const WAIT_POLL_MS: u64 = 20;

/// The two artifact levels the store holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Traced-reference artifacts ([`TraceArtifact`]).
    Trace,
    /// Assembled TG image sets (`Vec<TgImage>`).
    Image,
}

impl StoreKind {
    fn dir(self) -> &'static str {
        match self {
            StoreKind::Trace => "traces",
            StoreKind::Image => "images",
        }
    }

    fn ext(self) -> &'static str {
        match self {
            StoreKind::Trace => "trace",
            StoreKind::Image => "img",
        }
    }
}

/// What [`DiskStore::gc`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Entries removed.
    pub removed: usize,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Entry bytes remaining after the sweep.
    pub remaining_bytes: u64,
}

/// A content-addressed, write-once, cross-process artifact store.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a store under `base`. The versioned
    /// subdirectory `v<STORE_FORMAT_VERSION>` is appended here, so
    /// different format generations coexist without interference.
    ///
    /// # Errors
    ///
    /// Returns a message if the directories cannot be created.
    pub fn open(base: impl Into<PathBuf>) -> Result<Self, String> {
        let root = base.into().join(format!("v{STORE_FORMAT_VERSION}"));
        for kind in [StoreKind::Trace, StoreKind::Image] {
            let dir = root.join(kind.dir());
            fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        Ok(Self { root })
    }

    /// The default store base: `$NTG_STORE`, else `$HOME/.cache/ntg`.
    /// `None` when neither variable is set (no home directory).
    pub fn default_base() -> Option<PathBuf> {
        if let Some(p) = std::env::var_os("NTG_STORE") {
            if !p.is_empty() {
                return Some(PathBuf::from(p));
            }
        }
        std::env::var_os("HOME")
            .filter(|h| !h.is_empty())
            .map(|h| PathBuf::from(h).join(".cache").join("ntg"))
    }

    /// The versioned root directory of this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, kind: StoreKind, key: &str) -> PathBuf {
        let mut name = sanitise(key);
        name.push('-');
        name.push_str(&format!("{:016x}", ntg_trace::fnv64(key.as_bytes())));
        name.push('.');
        name.push_str(kind.ext());
        self.root.join(kind.dir()).join(name)
    }

    /// Loads an entry's payload, verifying the frame (magic, version,
    /// key, checksum). Any malformed file is deleted and reported as a
    /// miss — a corrupt store entry costs a rebuild, never an error.
    /// A successful load touches the entry's `.used` marker (LRU).
    pub fn load(&self, kind: StoreKind, key: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(kind, key);
        let bytes = fs::read(&path).ok()?;
        match decode_entry(&bytes, key) {
            Some(payload) => {
                // Recency marker for gc(); best-effort.
                let _ = fs::write(used_marker(&path), b"");
                Some(payload)
            }
            None => {
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Publishes an entry: frame + payload to a temp file, then atomic
    /// rename.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure (the temp file is cleaned up).
    pub fn save(&self, kind: StoreKind, key: &str, payload: &[u8]) -> Result<(), String> {
        let path = self.entry_path(kind, key);
        let tmp = path.with_extension(format!("{}.tmp.{}", kind.ext(), std::process::id()));
        let bytes = encode_entry(key, payload);
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            format!("store write {}: {e}", path.display())
        })
    }

    /// Write-once lookup that is safe across processes: returns the
    /// stored artifact (`from_disk = true`) or runs `build`, publishes
    /// its byte form and returns it (`from_disk = false`). Concurrent
    /// builders of the same key serialise on a lock file; waiters adopt
    /// the winner's entry. Stale locks (holder crashed) are broken
    /// after [`LOCK_STALE_SECS`]. An entry whose frame verifies but
    /// whose payload no longer decodes (inner-codec drift) is deleted
    /// and rebuilt.
    ///
    /// # Errors
    ///
    /// Propagates `build` errors and store I/O failures.
    pub fn get_or_build_typed<V>(
        &self,
        kind: StoreKind,
        key: &str,
        decode: impl Fn(&[u8]) -> Result<V, String>,
        build: impl FnOnce() -> Result<(V, Vec<u8>), String>,
    ) -> Result<(V, bool), String> {
        let mut build = Some(build);
        loop {
            if let Some(payload) = self.load(kind, key) {
                match decode(&payload) {
                    Ok(v) => return Ok((v, true)),
                    Err(_) => {
                        let _ = fs::remove_file(self.entry_path(kind, key));
                    }
                }
            }
            match self.try_lock(kind, key)? {
                Some(lock) => {
                    // Double-check under the lock: the previous holder
                    // may have published between our load and lock.
                    if let Some(payload) = self.load(kind, key) {
                        if let Ok(v) = decode(&payload) {
                            drop(lock);
                            return Ok((v, true));
                        }
                        let _ = fs::remove_file(self.entry_path(kind, key));
                    }
                    let (v, payload) = (build.take().expect("build consumed once"))()?;
                    self.save(kind, key, &payload)?;
                    drop(lock);
                    return Ok((v, false));
                }
                None => std::thread::sleep(Duration::from_millis(WAIT_POLL_MS)),
            }
        }
    }

    /// Byte-level [`Self::get_or_build_typed`] — the payload itself is
    /// the artifact.
    ///
    /// # Errors
    ///
    /// Propagates `build` errors and store I/O failures.
    pub fn get_or_build(
        &self,
        kind: StoreKind,
        key: &str,
        build: impl FnOnce() -> Result<Vec<u8>, String>,
    ) -> Result<(Vec<u8>, bool), String> {
        self.get_or_build_typed(
            kind,
            key,
            |payload| Ok(payload.to_vec()),
            || build().map(|payload| (payload.clone(), payload)),
        )
    }

    /// Tries to take the key's build lock. `Ok(None)` means another
    /// live process holds it (caller should wait and re-poll).
    fn try_lock(&self, kind: StoreKind, key: &str) -> Result<Option<LockGuard>, String> {
        let path = lock_path(&self.entry_path(kind, key));
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(Some(LockGuard { path }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Stale-lock recovery: a lock whose file is old
                    // belongs to a crashed builder.
                    let age = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| SystemTime::now().duration_since(t).ok());
                    match age {
                        Some(a) if a.as_secs() >= LOCK_STALE_SECS => {
                            let _ = fs::remove_file(&path);
                            continue; // retry the O_EXCL create
                        }
                        // Metadata raced with the holder's unlock —
                        // treat as busy and re-poll.
                        _ => return Ok(None),
                    }
                }
                Err(e) => return Err(format!("store lock {}: {e}", path.display())),
            }
        }
    }

    /// Total bytes of published entries (markers/locks/temps excluded).
    pub fn size_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.size).sum()
    }

    /// Prunes least-recently-used entries until the store's entry bytes
    /// fit `budget_bytes`.
    pub fn gc(&self, budget_bytes: u64) -> GcStats {
        let mut entries = self.entries();
        // Most recently used last; evict from the front.
        entries.sort_by_key(|e| e.last_used);
        let mut total: u64 = entries.iter().map(|e| e.size).sum();
        let mut stats = GcStats::default();
        for e in &entries {
            if total <= budget_bytes {
                break;
            }
            if fs::remove_file(&e.path).is_ok() {
                let _ = fs::remove_file(used_marker(&e.path));
                total -= e.size;
                stats.removed += 1;
                stats.freed_bytes += e.size;
            }
        }
        stats.remaining_bytes = total;
        stats
    }

    fn entries(&self) -> Vec<Entry> {
        let mut out = Vec::new();
        for kind in [StoreKind::Trace, StoreKind::Image] {
            let dir = self.root.join(kind.dir());
            let Ok(rd) = fs::read_dir(&dir) else { continue };
            for entry in rd.flatten() {
                let path = entry.path();
                let is_entry = path.extension().is_some_and(|e| e == kind.ext());
                if !is_entry {
                    continue;
                }
                let Ok(meta) = entry.metadata() else { continue };
                let published = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                let used = fs::metadata(used_marker(&path))
                    .and_then(|m| m.modified())
                    .unwrap_or(SystemTime::UNIX_EPOCH);
                out.push(Entry {
                    path,
                    size: meta.len(),
                    last_used: published.max(used),
                });
            }
        }
        out
    }
}

struct Entry {
    path: PathBuf,
    size: u64,
    last_used: SystemTime,
}

/// Removes the lock file when the builder finishes (or its closure
/// errors and unwinds the call).
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn lock_path(entry: &Path) -> PathBuf {
    let mut s = entry.as_os_str().to_os_string();
    s.push(".lock");
    PathBuf::from(s)
}

fn used_marker(entry: &Path) -> PathBuf {
    let mut s = entry.as_os_str().to_os_string();
    s.push(".used");
    PathBuf::from(s)
}

fn sanitise(key: &str) -> String {
    let mut out: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    out.truncate(48);
    out
}

fn encode_entry(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(&STORE_ENTRY_MAGIC);
    w.u32(STORE_FORMAT_VERSION);
    w.lp_bytes(key.as_bytes());
    w.lp_bytes(payload);
    w.finish_checksummed()
}

/// `None` on any malformation: wrong magic/version, checksum mismatch,
/// or a key that differs from the requested one (an FNV-64 filename
/// collision — the colliding entry is treated as absent).
fn decode_entry(bytes: &[u8], key: &str) -> Option<Vec<u8>> {
    let mut r = ByteReader::new_checksummed(bytes).ok()?;
    if r.take(4).ok()? != STORE_ENTRY_MAGIC || r.u32().ok()? != STORE_FORMAT_VERSION {
        return None;
    }
    if r.lp_bytes().ok()? != key.as_bytes() {
        return None;
    }
    let payload = r.lp_bytes().ok()?.to_vec();
    r.expect_end().ok()?;
    Some(payload)
}

/// The store key string of a trace-level artifact: `(workload, cores,
/// trace fabric)` plus the trace binary codec version, so a codec bump
/// retires stale entries at the key level.
pub fn trace_store_key(key: &crate::cache::TraceKey) -> String {
    let (workload, cores, fabric) = key;
    format!(
        "trace|{workload}|{cores}P|{fabric}|trc{}",
        ntg_trace::TRACE_BIN_VERSION
    )
}

/// The store key string of an image-level artifact: the trace key plus
/// `TranslatorConfig::cache_key()` (itself salted with
/// [`STORE_FORMAT_VERSION`]).
pub fn image_store_key(key: &crate::cache::ImageKey) -> String {
    let (workload, cores, fabric, cache_key) = key;
    format!("image|{workload}|{cores}P|{fabric}|{cache_key:016x}")
}

/// Serialises a [`TraceArtifact`] for the store (entry framing and
/// checksumming happen in [`DiskStore::save`]; each contained trace
/// additionally carries its own versioned frame).
pub fn encode_trace_artifact(artifact: &TraceArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(artifact.traces.len() as u32);
    for t in &artifact.traces {
        w.lp_bytes(&t.to_bin());
    }
    w.u32(artifact.pollable.len() as u32);
    for &(base, size) in &artifact.pollable {
        w.u32(base);
        w.u32(size);
    }
    w.u32(artifact.calibration.len() as u32);
    for cfg in &artifact.calibration {
        cfg.encode(&mut w);
    }
    w.u64(artifact.ref_cycles);
    w.into_bytes()
}

/// Deserialises a [`TraceArtifact`] written by
/// [`encode_trace_artifact`].
///
/// # Errors
///
/// Returns the underlying codec error.
pub fn decode_trace_artifact(bytes: &[u8]) -> Result<TraceArtifact, BinCodecError> {
    let mut r = ByteReader::new(bytes);
    let n_traces = r.u32()? as usize;
    let mut traces = Vec::with_capacity(n_traces.min(1 << 10));
    for _ in 0..n_traces {
        traces.push(MasterTrace::from_bin(r.lp_bytes()?)?);
    }
    let n_pollable = r.u32()? as usize;
    let mut pollable = Vec::with_capacity(n_pollable.min(1 << 10));
    for _ in 0..n_pollable {
        let base = r.u32()?;
        let size = r.u32()?;
        pollable.push((base, size));
    }
    let n_calib = r.u32()? as usize;
    let mut calibration = Vec::with_capacity(n_calib.min(1 << 10));
    for _ in 0..n_calib {
        calibration.push(StochasticConfig::decode(&mut r)?);
    }
    let ref_cycles = r.u64()?;
    r.expect_end()?;
    Ok(TraceArtifact {
        traces,
        pollable,
        calibration,
        ref_cycles,
    })
}

/// Serialises an assembled TG image set for the store.
pub fn encode_images(images: &[TgImage]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(images.len() as u32);
    for img in images {
        w.lp_bytes(&img.to_bytes());
    }
    w.into_bytes()
}

/// Deserialises a TG image set written by [`encode_images`].
///
/// # Errors
///
/// Returns a description of the first malformed image.
pub fn decode_images(bytes: &[u8]) -> Result<Vec<TgImage>, String> {
    let mut r = ByteReader::new(bytes);
    let n = r.u32().map_err(|e| e.to_string())? as usize;
    let mut images = Vec::with_capacity(n.min(1 << 10));
    for i in 0..n {
        let img_bytes = r.lp_bytes().map_err(|e| e.to_string())?;
        images.push(TgImage::from_bytes(img_bytes).map_err(|e| format!("image {i}: {e}"))?);
    }
    r.expect_end().map_err(|e| e.to_string())?;
    Ok(images)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_core::{GapDistribution, TgInstr, TgReg};
    use ntg_trace::TraceEvent;

    fn tmp_store(name: &str) -> DiskStore {
        let base = std::env::temp_dir()
            .join("ntg-store-unit")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        DiskStore::open(base).unwrap()
    }

    fn sample_artifact() -> TraceArtifact {
        let mut trace = MasterTrace::new(0, 5);
        trace.events = vec![
            TraceEvent::Request {
                cmd: ntg_ocp::OcpCmd::Read,
                addr: 0x104,
                data: vec![].into(),
                burst: 1,
                at: 10,
            },
            TraceEvent::Accept { at: 15 },
            TraceEvent::Response {
                data: vec![7].into(),
                at: 30,
            },
        ];
        trace.halt_at = Some(100);
        TraceArtifact {
            traces: vec![trace],
            pollable: vec![(0x1b00_0000, 0x100)],
            calibration: vec![StochasticConfig {
                seed: 0,
                ranges: vec![(0x1000, 0x100)],
                write_fraction: 0.25,
                burst_fraction: 0.5,
                gap: GapDistribution::Geometric { mean: 9 },
                transactions: 3,
            }],
            ref_cycles: 4321,
        }
    }

    fn artifacts_equal(a: &TraceArtifact, b: &TraceArtifact) -> bool {
        a.traces == b.traces
            && a.pollable == b.pollable
            && a.calibration == b.calibration
            && a.ref_cycles == b.ref_cycles
    }

    #[test]
    fn trace_artifact_round_trips() {
        let a = sample_artifact();
        let back = decode_trace_artifact(&encode_trace_artifact(&a)).unwrap();
        assert!(artifacts_equal(&a, &back));
    }

    #[test]
    fn images_round_trip() {
        let images = vec![
            TgImage {
                master: 0,
                thread: 0,
                inits: vec![(TgReg::new(2), 0x104)],
                instrs: vec![TgInstr::Idle { cycles: 3 }, TgInstr::Halt],
            },
            TgImage::default(),
        ];
        assert_eq!(decode_images(&encode_images(&images)).unwrap(), images);
    }

    #[test]
    fn save_load_round_trips_and_touches_marker() {
        let store = tmp_store("roundtrip");
        assert_eq!(store.load(StoreKind::Trace, "k1"), None);
        store.save(StoreKind::Trace, "k1", b"payload").unwrap();
        assert_eq!(store.load(StoreKind::Trace, "k1").unwrap(), b"payload");
        assert!(store.size_bytes() > 0);
    }

    #[test]
    fn distinct_kinds_and_keys_do_not_collide() {
        let store = tmp_store("kinds");
        store.save(StoreKind::Trace, "k", b"t").unwrap();
        store.save(StoreKind::Image, "k", b"i").unwrap();
        assert_eq!(store.load(StoreKind::Trace, "k").unwrap(), b"t");
        assert_eq!(store.load(StoreKind::Image, "k").unwrap(), b"i");
        assert_eq!(store.load(StoreKind::Trace, "other"), None);
    }

    #[test]
    fn corrupt_entry_degrades_to_miss_and_is_deleted() {
        let store = tmp_store("corrupt");
        store.save(StoreKind::Image, "k", b"payload").unwrap();
        let path = store.entry_path(StoreKind::Image, "k");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(StoreKind::Image, "k"), None);
        assert!(!path.exists(), "corrupt entry is removed");
        // And a truncated file likewise.
        store.save(StoreKind::Image, "k", b"payload").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.load(StoreKind::Image, "k"), None);
    }

    #[test]
    fn get_or_build_builds_once_then_hits() {
        let store = tmp_store("buildonce");
        let mut builds = 0;
        let (payload, from_disk) = store
            .get_or_build(StoreKind::Trace, "k", || {
                builds += 1;
                Ok(b"abc".to_vec())
            })
            .unwrap();
        assert_eq!(
            (payload.as_slice(), from_disk, builds),
            (&b"abc"[..], false, 1)
        );
        let (payload, from_disk) = store
            .get_or_build(StoreKind::Trace, "k", || {
                unreachable!("second lookup must hit")
            })
            .unwrap();
        assert_eq!((payload.as_slice(), from_disk), (&b"abc"[..], true));
    }

    #[test]
    fn build_errors_release_the_lock() {
        let store = tmp_store("builderr");
        let err = store
            .get_or_build(StoreKind::Trace, "k", || Err("boom".into()))
            .unwrap_err();
        assert_eq!(err, "boom");
        // The key is buildable again (lock was released, nothing
        // published).
        let (_, from_disk) = store
            .get_or_build(StoreKind::Trace, "k", || Ok(vec![1]))
            .unwrap();
        assert!(!from_disk);
    }

    #[test]
    fn fresh_foreign_lock_reports_busy_until_released() {
        // std cannot backdate an mtime, so the stale horizon itself is
        // not unit-testable here; this pins the two reachable answers —
        // a fresh foreign lock parks the caller, a released lock is
        // takable.
        let store = tmp_store("lockbusy");
        let lock = lock_path(&store.entry_path(StoreKind::Trace, "k"));
        fs::write(&lock, b"dead\n").unwrap();
        assert!(store.try_lock(StoreKind::Trace, "k").unwrap().is_none());
        let _ = fs::remove_file(&lock);
        assert!(store.try_lock(StoreKind::Trace, "k").unwrap().is_some());
    }

    #[test]
    fn concurrent_get_or_build_publishes_exactly_one_entry() {
        let store = tmp_store("concurrent");
        let store = std::sync::Arc::new(store);
        let built = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let store = store.clone();
                let built = built.clone();
                s.spawn(move || {
                    let (payload, _) = store
                        .get_or_build(StoreKind::Image, "k", || {
                            built.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(30));
                            Ok(b"same-bytes".to_vec())
                        })
                        .unwrap();
                    assert_eq!(payload, b"same-bytes");
                });
            }
        });
        assert_eq!(built.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn gc_prunes_least_recently_used_first() {
        let store = tmp_store("gc");
        store.save(StoreKind::Trace, "old", &[0u8; 100]).unwrap();
        store.save(StoreKind::Trace, "mid", &[0u8; 100]).unwrap();
        store.save(StoreKind::Trace, "hot", &[0u8; 100]).unwrap();
        // Space the markers out: filesystem mtime granularity can be
        // coarse, so make the "hot" touch unambiguously newest.
        std::thread::sleep(Duration::from_millis(30));
        assert!(store.load(StoreKind::Trace, "hot").is_some());
        let total = store.size_bytes();
        let stats = store.gc(total - 1); // force at least one eviction
        assert!(stats.removed >= 1);
        assert_eq!(stats.remaining_bytes, store.size_bytes());
        assert!(
            store.load(StoreKind::Trace, "hot").is_some(),
            "most recently used entry survives"
        );
        // A zero budget clears everything.
        let stats = store.gc(0);
        assert_eq!(stats.remaining_bytes, 0);
        assert_eq!(store.size_bytes(), 0);
    }
}
