//! The persistent on-disk TG artifact store.
//!
//! The in-memory [`ArtifactCache`](crate::ArtifactCache) amortises
//! trace/translate cost *within* one campaign; this store amortises it
//! *across* campaigns and processes. The paper's speedup (§6, Table 2)
//! is precisely this economics — the expensive cycle-true reference run
//! is a one-time cost — so a second `ntg-sweep` over the same grid
//! should re-trace nothing, and a campaign split into shards should
//! build each artifact at most once between them.
//!
//! # Layout
//!
//! ```text
//! <base>/v<STORE_FORMAT_VERSION>/
//!   traces/<sanitised-key>-<fnv64(key)>.trace     trace-level entries
//!   images/<sanitised-key>-<fnv64(key)>.img       image-level entries
//!   .../<entry>.used                              LRU recency marker
//!   .../<entry>.lock                              cross-process build lock
//!   .../<entry>.tmp.<pid>                         in-flight writes
//! ```
//!
//! `<base>` defaults to `~/.cache/ntg`, overridable with the
//! `NTG_STORE` environment variable or `--store`. The directory level
//! carries the format version, and every image key additionally folds
//! [`STORE_FORMAT_VERSION`](ntg_core::STORE_FORMAT_VERSION) in via
//! `TranslatorConfig::cache_key` — codec evolution retires stale
//! entries instead of misreading them.
//!
//! # Atomicity and write-once across processes
//!
//! Entries are immutable once published. A writer builds into
//! `<entry>.tmp.<pid>` and publishes with an atomic `rename`, so a
//! reader never observes a half-written entry; every entry additionally
//! carries a magic/version/key header and an FNV-1a checksum trailer,
//! so torn or bit-rotted files degrade to a rebuild, never to a wrong
//! simulation. Concurrent builders of one key are serialised with an
//! `O_EXCL` lock file: losers poll for the winner's entry. A lock older
//! than [`LOCK_STALE_SECS`] is presumed orphaned (builder crashed) and
//! is broken; if two processes do end up building the same key, both
//! produce identical bytes (the whole pipeline is deterministic) and
//! the second rename is a harmless overwrite.
//!
//! # Eviction
//!
//! [`DiskStore::gc`] prunes least-recently-*used* entries (reads touch
//! a sidecar `.used` marker; plain mtime would make the store
//! insertion-ordered) until the store fits a byte budget.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use ntg_core::{StochasticConfig, TgImage, STORE_FORMAT_VERSION};
use ntg_trace::{BinCodecError, ByteReader, ByteWriter, MasterTrace};

use crate::cache::TraceArtifact;

/// Magic number at the start of every store entry (`"NTGS"`).
pub const STORE_ENTRY_MAGIC: [u8; 4] = *b"NTGS";

/// Age after which a build lock is presumed orphaned and broken.
pub const LOCK_STALE_SECS: u64 = 120;

/// Poll interval while waiting for another process's build.
const WAIT_POLL_MS: u64 = 20;

/// The two artifact levels the store holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Traced-reference artifacts ([`TraceArtifact`]).
    Trace,
    /// Assembled TG image sets (`Vec<TgImage>`).
    Image,
}

impl StoreKind {
    /// The store subdirectory (and remote URL segment) of this level.
    pub fn dir(self) -> &'static str {
        match self {
            StoreKind::Trace => "traces",
            StoreKind::Image => "images",
        }
    }

    fn ext(self) -> &'static str {
        match self {
            StoreKind::Trace => "trace",
            StoreKind::Image => "img",
        }
    }

    /// Parses the URL segment back into a kind (inverse of
    /// [`Self::dir`]).
    pub fn from_dir(dir: &str) -> Option<Self> {
        match dir {
            "traces" => Some(StoreKind::Trace),
            "images" => Some(StoreKind::Image),
            _ => None,
        }
    }
}

/// A remote artifact tier behind the local [`DiskStore`]: write-once,
/// content-addressed PUT/GET of *framed* store entries (the exact bytes
/// [`encode_entry`] produces — magic, version, embedded key, FNV-1a
/// checksum), keyed by [`entry_file_name`]. S3-style semantics: objects
/// are immutable once published; a PUT of an existing object is a
/// no-op. Implementations must be infallibility-agnostic — any error is
/// treated by the store as a miss (local rebuild), never a failure.
pub trait RemoteTier: std::fmt::Debug + Send + Sync {
    /// Fetches the framed entry named `name`, `Ok(None)` on a miss.
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure (degrades to a miss).
    fn fetch(&self, kind: StoreKind, name: &str) -> Result<Option<Vec<u8>>, String>;

    /// Publishes the framed entry named `name` (write-once: publishing
    /// an existing name is a no-op, not an error).
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure (publish is best-effort).
    fn publish(&self, kind: StoreKind, name: &str, bytes: &[u8]) -> Result<(), String>;
}

/// Counters of the remote tier's traffic, shared by all clones of a
/// [`DiskStore`].
#[derive(Debug, Default)]
struct RemoteCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    publishes: AtomicU64,
    errors: AtomicU64,
}

/// A point-in-time copy of a store's remote-tier counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteSnapshot {
    /// Entries fetched from the remote tier (verified frames only).
    pub hits: u64,
    /// Remote lookups that found nothing (local build follows).
    pub misses: u64,
    /// Entries published upward after a local build.
    pub publishes: u64,
    /// Transport or corruption failures, each degraded to a local
    /// rebuild.
    pub errors: u64,
}

/// Per-kind entry counts and byte totals of a [`DiskStore`] — the
/// `ntg-sweep store stats` view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Published trace-level entries.
    pub trace_entries: usize,
    /// Bytes held by trace-level entries.
    pub trace_bytes: u64,
    /// Published image-level entries.
    pub image_entries: usize,
    /// Bytes held by image-level entries.
    pub image_bytes: u64,
}

impl StoreStats {
    /// Total published entry bytes across both levels.
    pub fn total_bytes(&self) -> u64 {
        self.trace_bytes + self.image_bytes
    }

    /// Total published entries across both levels.
    pub fn total_entries(&self) -> usize {
        self.trace_entries + self.image_entries
    }
}

/// What [`DiskStore::gc`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Entries removed.
    pub removed: usize,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Entry bytes remaining after the sweep.
    pub remaining_bytes: u64,
}

/// A content-addressed, write-once, cross-process artifact store —
/// optionally tiered over a [`RemoteTier`] (local miss fetches from
/// remote and populates disk; local build publishes upward; remote
/// failures and corruption degrade to a local rebuild).
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
    remote: Option<Arc<dyn RemoteTier>>,
    remote_counters: Arc<RemoteCounters>,
}

impl DiskStore {
    /// Opens (creating if needed) a store under `base`. The versioned
    /// subdirectory `v<STORE_FORMAT_VERSION>` is appended here, so
    /// different format generations coexist without interference.
    ///
    /// # Errors
    ///
    /// Returns a message if the directories cannot be created.
    pub fn open(base: impl Into<PathBuf>) -> Result<Self, String> {
        let root = base.into().join(format!("v{STORE_FORMAT_VERSION}"));
        for kind in [StoreKind::Trace, StoreKind::Image] {
            let dir = root.join(kind.dir());
            fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        Ok(Self {
            root,
            remote: None,
            remote_counters: Arc::new(RemoteCounters::default()),
        })
    }

    /// Attaches a remote tier behind this store's disk level.
    #[must_use]
    pub fn with_remote(mut self, remote: Arc<dyn RemoteTier>) -> Self {
        self.remote = Some(remote);
        self
    }

    /// Whether a remote tier is attached.
    pub fn has_remote(&self) -> bool {
        self.remote.is_some()
    }

    /// Current remote-tier counters (all zero without a remote).
    pub fn remote_snapshot(&self) -> RemoteSnapshot {
        RemoteSnapshot {
            hits: self.remote_counters.hits.load(Ordering::Relaxed),
            misses: self.remote_counters.misses.load(Ordering::Relaxed),
            publishes: self.remote_counters.publishes.load(Ordering::Relaxed),
            errors: self.remote_counters.errors.load(Ordering::Relaxed),
        }
    }

    /// The default store base: `$NTG_STORE`, else `$HOME/.cache/ntg`.
    /// `None` when neither variable is set (no home directory).
    pub fn default_base() -> Option<PathBuf> {
        if let Some(p) = std::env::var_os("NTG_STORE") {
            if !p.is_empty() {
                return Some(PathBuf::from(p));
            }
        }
        std::env::var_os("HOME")
            .filter(|h| !h.is_empty())
            .map(|h| PathBuf::from(h).join(".cache").join("ntg"))
    }

    /// The versioned root directory of this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, kind: StoreKind, key: &str) -> PathBuf {
        self.root.join(kind.dir()).join(entry_file_name(kind, key))
    }

    /// Loads an entry's payload, verifying the frame (magic, version,
    /// key, checksum). Any malformed file is deleted and reported as a
    /// miss — a corrupt store entry costs a rebuild, never an error.
    /// A successful load touches the entry's `.used` marker (LRU).
    pub fn load(&self, kind: StoreKind, key: &str) -> Option<Vec<u8>> {
        let path = self.entry_path(kind, key);
        let bytes = fs::read(&path).ok()?;
        match decode_entry(&bytes, key) {
            Some(payload) => {
                // Recency marker for gc(); best-effort.
                let _ = fs::write(used_marker(&path), b"");
                Some(payload)
            }
            None => {
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Publishes an entry: frame + payload to a temp file, then atomic
    /// rename.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure (the temp file is cleaned up).
    pub fn save(&self, kind: StoreKind, key: &str, payload: &[u8]) -> Result<(), String> {
        let path = self.entry_path(kind, key);
        let tmp = path.with_extension(format!("{}.tmp.{}", kind.ext(), std::process::id()));
        let bytes = encode_entry(key, payload);
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = fs::remove_file(&tmp);
            format!("store write {}: {e}", path.display())
        })
    }

    /// Write-once lookup that is safe across processes: returns the
    /// stored artifact (`from_disk = true`) or runs `build`, publishes
    /// its byte form and returns it (`from_disk = false`). Concurrent
    /// builders of the same key serialise on a lock file; waiters adopt
    /// the winner's entry. Stale locks (holder crashed) are broken
    /// after [`LOCK_STALE_SECS`]. An entry whose frame verifies but
    /// whose payload no longer decodes (inner-codec drift) is deleted
    /// and rebuilt.
    ///
    /// # Errors
    ///
    /// Propagates `build` errors and store I/O failures.
    pub fn get_or_build_typed<V>(
        &self,
        kind: StoreKind,
        key: &str,
        decode: impl Fn(&[u8]) -> Result<V, String>,
        build: impl FnOnce() -> Result<(V, Vec<u8>), String>,
    ) -> Result<(V, bool), String> {
        let mut build = Some(build);
        loop {
            if let Some(payload) = self.load(kind, key) {
                match decode(&payload) {
                    Ok(v) => return Ok((v, true)),
                    Err(_) => {
                        let _ = fs::remove_file(self.entry_path(kind, key));
                    }
                }
            }
            match self.try_lock(kind, key)? {
                Some(lock) => {
                    // Double-check under the lock: the previous holder
                    // may have published between our load and lock.
                    if let Some(payload) = self.load(kind, key) {
                        if let Ok(v) = decode(&payload) {
                            drop(lock);
                            return Ok((v, true));
                        }
                        let _ = fs::remove_file(self.entry_path(kind, key));
                    }
                    // Remote tier: a verified fetch populates the disk
                    // level and counts as a hit; any failure (transport,
                    // corruption, inner-codec drift) degrades to a local
                    // build exactly like a corrupt disk entry.
                    if let Some(payload) = self.fetch_remote(kind, key) {
                        if let Ok(v) = decode(&payload) {
                            self.save(kind, key, &payload)?;
                            drop(lock);
                            return Ok((v, true));
                        }
                    }
                    let (v, payload) = (build.take().expect("build consumed once"))()?;
                    self.save(kind, key, &payload)?;
                    self.publish_remote(kind, key, &payload);
                    drop(lock);
                    return Ok((v, false));
                }
                None => std::thread::sleep(Duration::from_millis(WAIT_POLL_MS)),
            }
        }
    }

    /// Byte-level [`Self::get_or_build_typed`] — the payload itself is
    /// the artifact.
    ///
    /// # Errors
    ///
    /// Propagates `build` errors and store I/O failures.
    pub fn get_or_build(
        &self,
        kind: StoreKind,
        key: &str,
        build: impl FnOnce() -> Result<Vec<u8>, String>,
    ) -> Result<(Vec<u8>, bool), String> {
        self.get_or_build_typed(
            kind,
            key,
            |payload| Ok(payload.to_vec()),
            || build().map(|payload| (payload.clone(), payload)),
        )
    }

    /// Fetches `key` from the remote tier, returning the verified
    /// payload. Every failure mode — no remote, transport error, miss,
    /// bad frame — returns `None`; the caller falls back to a local
    /// build.
    fn fetch_remote(&self, kind: StoreKind, key: &str) -> Option<Vec<u8>> {
        let remote = self.remote.as_ref()?;
        let name = entry_file_name(kind, key);
        match remote.fetch(kind, &name) {
            Ok(Some(bytes)) => match decode_entry(&bytes, key) {
                Some(payload) => {
                    self.remote_counters.hits.fetch_add(1, Ordering::Relaxed);
                    Some(payload)
                }
                None => {
                    // A corrupt (or colliding) remote object is the
                    // network edition of a bit-rotted disk entry.
                    self.remote_counters.errors.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            Ok(None) => {
                self.remote_counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => {
                self.remote_counters.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes a freshly built entry upward, best-effort: a remote
    /// failure costs the fleet a future rebuild, never this run.
    fn publish_remote(&self, kind: StoreKind, key: &str, payload: &[u8]) {
        let Some(remote) = self.remote.as_ref() else {
            return;
        };
        let name = entry_file_name(kind, key);
        let counter = match remote.publish(kind, &name, &encode_entry(key, payload)) {
            Ok(()) => &self.remote_counters.publishes,
            Err(_) => &self.remote_counters.errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Tries to take the key's build lock. `Ok(None)` means another
    /// live process holds it (caller should wait and re-poll).
    fn try_lock(&self, kind: StoreKind, key: &str) -> Result<Option<LockGuard>, String> {
        let path = lock_path(&self.entry_path(kind, key));
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(Some(LockGuard { path }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Stale-lock recovery: a lock whose file is old
                    // belongs to a crashed builder.
                    let age = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| SystemTime::now().duration_since(t).ok());
                    match age {
                        Some(a) if a.as_secs() >= LOCK_STALE_SECS => {
                            let _ = fs::remove_file(&path);
                            continue; // retry the O_EXCL create
                        }
                        // Metadata raced with the holder's unlock —
                        // treat as busy and re-poll.
                        _ => return Ok(None),
                    }
                }
                Err(e) => return Err(format!("store lock {}: {e}", path.display())),
            }
        }
    }

    /// Total bytes of published entries (markers/locks/temps excluded).
    pub fn size_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.size).sum()
    }

    /// Prunes least-recently-used entries until the store's entry bytes
    /// fit `budget_bytes`. With `dry_run` the same walk runs and the
    /// same [`GcStats`] come back, but nothing is removed — operators
    /// preview what a budget would evict before committing.
    pub fn gc(&self, budget_bytes: u64, dry_run: bool) -> GcStats {
        let mut entries = self.entries();
        // Most recently used last; evict from the front.
        entries.sort_by_key(|e| e.last_used);
        let mut total: u64 = entries.iter().map(|e| e.size).sum();
        let mut stats = GcStats::default();
        for e in &entries {
            if total <= budget_bytes {
                break;
            }
            if dry_run || fs::remove_file(&e.path).is_ok() {
                if !dry_run {
                    let _ = fs::remove_file(used_marker(&e.path));
                }
                total -= e.size;
                stats.removed += 1;
                stats.freed_bytes += e.size;
            }
        }
        stats.remaining_bytes = total;
        stats
    }

    /// Per-kind entry counts and byte totals, for `ntg-sweep store
    /// stats`.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats::default();
        for kind in [StoreKind::Trace, StoreKind::Image] {
            for e in self.entries_of(kind) {
                match kind {
                    StoreKind::Trace => {
                        s.trace_entries += 1;
                        s.trace_bytes += e.size;
                    }
                    StoreKind::Image => {
                        s.image_entries += 1;
                        s.image_bytes += e.size;
                    }
                }
            }
        }
        s
    }

    fn entries(&self) -> Vec<Entry> {
        let mut out = self.entries_of(StoreKind::Trace);
        out.extend(self.entries_of(StoreKind::Image));
        out
    }

    fn entries_of(&self, kind: StoreKind) -> Vec<Entry> {
        let mut out = Vec::new();
        let dir = self.root.join(kind.dir());
        let Ok(rd) = fs::read_dir(&dir) else {
            return out;
        };
        for entry in rd.flatten() {
            let path = entry.path();
            let is_entry = path.extension().is_some_and(|e| e == kind.ext());
            if !is_entry {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let published = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            let used = fs::metadata(used_marker(&path))
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            out.push(Entry {
                path,
                size: meta.len(),
                last_used: published.max(used),
            });
        }
        out
    }
}

struct Entry {
    path: PathBuf,
    size: u64,
    last_used: SystemTime,
}

/// Removes the lock file when the builder finishes (or its closure
/// errors and unwinds the call).
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn lock_path(entry: &Path) -> PathBuf {
    let mut s = entry.as_os_str().to_os_string();
    s.push(".lock");
    PathBuf::from(s)
}

fn used_marker(entry: &Path) -> PathBuf {
    let mut s = entry.as_os_str().to_os_string();
    s.push(".used");
    PathBuf::from(s)
}

fn sanitise(key: &str) -> String {
    let mut out: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    out.truncate(48);
    out
}

/// The canonical file (and remote object) name of an entry: a
/// sanitised key prefix for human grepping plus the FNV-64 of the full
/// key for uniqueness. Local disk and the remote tier share this
/// naming, so a warm remote hit lands in the same slot a local build
/// would have filled.
pub fn entry_file_name(kind: StoreKind, key: &str) -> String {
    format!(
        "{}-{:016x}.{}",
        sanitise(key),
        ntg_trace::fnv64(key.as_bytes()),
        kind.ext()
    )
}

/// Validates a framed store entry without knowing its key in advance
/// and returns `(embedded_key, payload)`. Servers use this to vet
/// uploads: the frame must decode, and the caller can then check the
/// embedded key hashes to the object name it was PUT under.
///
/// # Errors
///
/// Returns a description of the first malformation found (short frame,
/// bad magic/version, checksum mismatch, trailing bytes).
pub fn verify_entry(bytes: &[u8]) -> Result<(String, Vec<u8>), String> {
    let mut r = ByteReader::new_checksummed(bytes).map_err(|e| format!("checksum: {e}"))?;
    let magic = r.take(4).map_err(|e| format!("magic: {e}"))?;
    if magic != STORE_ENTRY_MAGIC {
        return Err("bad entry magic".to_string());
    }
    let version = r.u32().map_err(|e| format!("version: {e}"))?;
    if version != STORE_FORMAT_VERSION {
        return Err(format!(
            "entry format v{version}, expected v{STORE_FORMAT_VERSION}"
        ));
    }
    let key = String::from_utf8(r.lp_bytes().map_err(|e| format!("key: {e}"))?.to_vec())
        .map_err(|_| "entry key is not UTF-8".to_string())?;
    let payload = r.lp_bytes().map_err(|e| format!("payload: {e}"))?.to_vec();
    r.expect_end().map_err(|e| format!("trailing bytes: {e}"))?;
    Ok((key, payload))
}

fn encode_entry(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(&STORE_ENTRY_MAGIC);
    w.u32(STORE_FORMAT_VERSION);
    w.lp_bytes(key.as_bytes());
    w.lp_bytes(payload);
    w.finish_checksummed()
}

/// `None` on any malformation: wrong magic/version, checksum mismatch,
/// or a key that differs from the requested one (an FNV-64 filename
/// collision — the colliding entry is treated as absent).
fn decode_entry(bytes: &[u8], key: &str) -> Option<Vec<u8>> {
    let mut r = ByteReader::new_checksummed(bytes).ok()?;
    if r.take(4).ok()? != STORE_ENTRY_MAGIC || r.u32().ok()? != STORE_FORMAT_VERSION {
        return None;
    }
    if r.lp_bytes().ok()? != key.as_bytes() {
        return None;
    }
    let payload = r.lp_bytes().ok()?.to_vec();
    r.expect_end().ok()?;
    Some(payload)
}

/// The store key string of a trace-level artifact: `(workload, cores,
/// trace fabric)` plus the trace binary codec version, so a codec bump
/// retires stale entries at the key level.
pub fn trace_store_key(key: &crate::cache::TraceKey) -> String {
    let (workload, cores, fabric) = key;
    format!(
        "trace|{workload}|{cores}P|{fabric}|trc{}",
        ntg_trace::TRACE_BIN_VERSION
    )
}

/// The store key string of an image-level artifact: the trace key plus
/// `TranslatorConfig::cache_key()` (itself salted with
/// [`STORE_FORMAT_VERSION`]).
pub fn image_store_key(key: &crate::cache::ImageKey) -> String {
    let (workload, cores, fabric, cache_key) = key;
    format!("image|{workload}|{cores}P|{fabric}|{cache_key:016x}")
}

/// Serialises a [`TraceArtifact`] for the store (entry framing and
/// checksumming happen in [`DiskStore::save`]; each contained trace
/// additionally carries its own versioned frame).
pub fn encode_trace_artifact(artifact: &TraceArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(artifact.traces.len() as u32);
    for t in &artifact.traces {
        w.lp_bytes(&t.to_bin());
    }
    w.u32(artifact.pollable.len() as u32);
    for &(base, size) in &artifact.pollable {
        w.u32(base);
        w.u32(size);
    }
    w.u32(artifact.calibration.len() as u32);
    for cfg in &artifact.calibration {
        cfg.encode(&mut w);
    }
    w.u64(artifact.ref_cycles);
    w.into_bytes()
}

/// Deserialises a [`TraceArtifact`] written by
/// [`encode_trace_artifact`].
///
/// # Errors
///
/// Returns the underlying codec error.
pub fn decode_trace_artifact(bytes: &[u8]) -> Result<TraceArtifact, BinCodecError> {
    let mut r = ByteReader::new(bytes);
    let n_traces = r.u32()? as usize;
    let mut traces = Vec::with_capacity(n_traces.min(1 << 10));
    for _ in 0..n_traces {
        traces.push(MasterTrace::from_bin(r.lp_bytes()?)?);
    }
    let n_pollable = r.u32()? as usize;
    let mut pollable = Vec::with_capacity(n_pollable.min(1 << 10));
    for _ in 0..n_pollable {
        let base = r.u32()?;
        let size = r.u32()?;
        pollable.push((base, size));
    }
    let n_calib = r.u32()? as usize;
    let mut calibration = Vec::with_capacity(n_calib.min(1 << 10));
    for _ in 0..n_calib {
        calibration.push(StochasticConfig::decode(&mut r)?);
    }
    let ref_cycles = r.u64()?;
    r.expect_end()?;
    Ok(TraceArtifact {
        traces,
        pollable,
        calibration,
        ref_cycles,
    })
}

/// Serialises an assembled TG image set for the store.
pub fn encode_images(images: &[TgImage]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(images.len() as u32);
    for img in images {
        w.lp_bytes(&img.to_bytes());
    }
    w.into_bytes()
}

/// Deserialises a TG image set written by [`encode_images`].
///
/// # Errors
///
/// Returns a description of the first malformed image.
pub fn decode_images(bytes: &[u8]) -> Result<Vec<TgImage>, String> {
    let mut r = ByteReader::new(bytes);
    let n = r.u32().map_err(|e| e.to_string())? as usize;
    let mut images = Vec::with_capacity(n.min(1 << 10));
    for i in 0..n {
        let img_bytes = r.lp_bytes().map_err(|e| e.to_string())?;
        images.push(TgImage::from_bytes(img_bytes).map_err(|e| format!("image {i}: {e}"))?);
    }
    r.expect_end().map_err(|e| e.to_string())?;
    Ok(images)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_core::{GapDistribution, TgInstr, TgReg};
    use ntg_trace::TraceEvent;

    fn tmp_store(name: &str) -> DiskStore {
        let base = std::env::temp_dir()
            .join("ntg-store-unit")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        DiskStore::open(base).unwrap()
    }

    fn sample_artifact() -> TraceArtifact {
        let mut trace = MasterTrace::new(0, 5);
        trace.events = vec![
            TraceEvent::Request {
                cmd: ntg_ocp::OcpCmd::Read,
                addr: 0x104,
                data: vec![].into(),
                burst: 1,
                at: 10,
            },
            TraceEvent::Accept { at: 15 },
            TraceEvent::Response {
                data: vec![7].into(),
                at: 30,
            },
        ];
        trace.halt_at = Some(100);
        TraceArtifact {
            traces: vec![trace],
            pollable: vec![(0x1b00_0000, 0x100)],
            calibration: vec![StochasticConfig {
                seed: 0,
                ranges: vec![(0x1000, 0x100)],
                write_fraction: 0.25,
                burst_fraction: 0.5,
                gap: GapDistribution::Geometric { mean: 9 },
                transactions: 3,
            }],
            ref_cycles: 4321,
        }
    }

    fn artifacts_equal(a: &TraceArtifact, b: &TraceArtifact) -> bool {
        a.traces == b.traces
            && a.pollable == b.pollable
            && a.calibration == b.calibration
            && a.ref_cycles == b.ref_cycles
    }

    #[test]
    fn trace_artifact_round_trips() {
        let a = sample_artifact();
        let back = decode_trace_artifact(&encode_trace_artifact(&a)).unwrap();
        assert!(artifacts_equal(&a, &back));
    }

    #[test]
    fn images_round_trip() {
        let images = vec![
            TgImage {
                master: 0,
                thread: 0,
                inits: vec![(TgReg::new(2), 0x104)],
                instrs: vec![TgInstr::Idle { cycles: 3 }, TgInstr::Halt],
            },
            TgImage::default(),
        ];
        assert_eq!(decode_images(&encode_images(&images)).unwrap(), images);
    }

    /// Every possible truncation of a valid payload must come back as
    /// an error — the decoders sit behind the corruption firewall and
    /// can never be allowed to panic on hostile bytes.
    #[test]
    fn truncated_payloads_error_and_never_panic() {
        let trace_bytes = encode_trace_artifact(&sample_artifact());
        for len in 0..trace_bytes.len() {
            assert!(
                decode_trace_artifact(&trace_bytes[..len]).is_err(),
                "truncation at {len}/{} must not decode",
                trace_bytes.len()
            );
        }
        let image_bytes = encode_images(&[TgImage {
            master: 1,
            thread: 0,
            inits: vec![(TgReg::new(2), 0x104)],
            instrs: vec![TgInstr::Idle { cycles: 3 }, TgInstr::Halt],
        }]);
        for len in 0..image_bytes.len() {
            assert!(
                decode_images(&image_bytes[..len]).is_err(),
                "truncation at {len}/{} must not decode",
                image_bytes.len()
            );
        }
    }

    /// A flipped byte anywhere in a framed entry (including the
    /// FNV-1a trailer itself) fails checksum verification.
    #[test]
    fn flipped_entry_bytes_fail_verification() {
        let entry = encode_entry("trace|wk|2P|amba|trc1", b"payload-bytes");
        assert!(verify_entry(&entry).is_ok());
        for pos in [0, entry.len() / 2, entry.len() - 1] {
            let mut bad = entry.clone();
            bad[pos] ^= 0x40;
            let err = verify_entry(&bad).unwrap_err();
            assert!(
                err.contains("checksum") || err.contains("magic"),
                "flip at {pos}: unexpected error `{err}`"
            );
        }
        // decode_entry treats the same malformations as a miss, not an
        // error — the store rebuilds instead of failing the campaign.
        let mut bad = entry;
        let len = bad.len();
        bad[len - 1] ^= 0x40;
        assert_eq!(decode_entry(&bad, "trace|wk|2P|amba|trc1"), None);
    }

    /// An entry from a future (or past) store format version is
    /// rejected even when its checksum is intact.
    #[test]
    fn wrong_format_version_is_rejected() {
        let mut w = ByteWriter::new();
        w.bytes(&STORE_ENTRY_MAGIC);
        w.u32(STORE_FORMAT_VERSION + 1);
        w.lp_bytes(b"some-key");
        w.lp_bytes(b"payload");
        let entry = w.finish_checksummed();
        let err = verify_entry(&entry).unwrap_err();
        assert!(err.contains("format"), "{err}");
        assert_eq!(decode_entry(&entry, "some-key"), None);
    }

    /// A checksummed frame whose embedded key differs from the
    /// requested one (an FNV-64 filename collision) reads as absent,
    /// while `verify_entry` surfaces the embedded key to the caller.
    #[test]
    fn key_mismatch_is_a_miss_not_a_hit() {
        let entry = encode_entry("key-a", b"payload");
        assert_eq!(decode_entry(&entry, "key-b"), None);
        let (key, payload) = verify_entry(&entry).unwrap();
        assert_eq!(key, "key-a");
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn save_load_round_trips_and_touches_marker() {
        let store = tmp_store("roundtrip");
        assert_eq!(store.load(StoreKind::Trace, "k1"), None);
        store.save(StoreKind::Trace, "k1", b"payload").unwrap();
        assert_eq!(store.load(StoreKind::Trace, "k1").unwrap(), b"payload");
        assert!(store.size_bytes() > 0);
    }

    #[test]
    fn distinct_kinds_and_keys_do_not_collide() {
        let store = tmp_store("kinds");
        store.save(StoreKind::Trace, "k", b"t").unwrap();
        store.save(StoreKind::Image, "k", b"i").unwrap();
        assert_eq!(store.load(StoreKind::Trace, "k").unwrap(), b"t");
        assert_eq!(store.load(StoreKind::Image, "k").unwrap(), b"i");
        assert_eq!(store.load(StoreKind::Trace, "other"), None);
    }

    #[test]
    fn corrupt_entry_degrades_to_miss_and_is_deleted() {
        let store = tmp_store("corrupt");
        store.save(StoreKind::Image, "k", b"payload").unwrap();
        let path = store.entry_path(StoreKind::Image, "k");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(StoreKind::Image, "k"), None);
        assert!(!path.exists(), "corrupt entry is removed");
        // And a truncated file likewise.
        store.save(StoreKind::Image, "k", b"payload").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.load(StoreKind::Image, "k"), None);
    }

    #[test]
    fn get_or_build_builds_once_then_hits() {
        let store = tmp_store("buildonce");
        let mut builds = 0;
        let (payload, from_disk) = store
            .get_or_build(StoreKind::Trace, "k", || {
                builds += 1;
                Ok(b"abc".to_vec())
            })
            .unwrap();
        assert_eq!(
            (payload.as_slice(), from_disk, builds),
            (&b"abc"[..], false, 1)
        );
        let (payload, from_disk) = store
            .get_or_build(StoreKind::Trace, "k", || {
                unreachable!("second lookup must hit")
            })
            .unwrap();
        assert_eq!((payload.as_slice(), from_disk), (&b"abc"[..], true));
    }

    #[test]
    fn build_errors_release_the_lock() {
        let store = tmp_store("builderr");
        let err = store
            .get_or_build(StoreKind::Trace, "k", || Err("boom".into()))
            .unwrap_err();
        assert_eq!(err, "boom");
        // The key is buildable again (lock was released, nothing
        // published).
        let (_, from_disk) = store
            .get_or_build(StoreKind::Trace, "k", || Ok(vec![1]))
            .unwrap();
        assert!(!from_disk);
    }

    #[test]
    fn fresh_foreign_lock_reports_busy_until_released() {
        // std cannot backdate an mtime, so the stale horizon itself is
        // not unit-testable here; this pins the two reachable answers —
        // a fresh foreign lock parks the caller, a released lock is
        // takable.
        let store = tmp_store("lockbusy");
        let lock = lock_path(&store.entry_path(StoreKind::Trace, "k"));
        fs::write(&lock, b"dead\n").unwrap();
        assert!(store.try_lock(StoreKind::Trace, "k").unwrap().is_none());
        let _ = fs::remove_file(&lock);
        assert!(store.try_lock(StoreKind::Trace, "k").unwrap().is_some());
    }

    #[test]
    fn concurrent_get_or_build_publishes_exactly_one_entry() {
        let store = tmp_store("concurrent");
        let store = std::sync::Arc::new(store);
        let built = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let store = store.clone();
                let built = built.clone();
                s.spawn(move || {
                    let (payload, _) = store
                        .get_or_build(StoreKind::Image, "k", || {
                            built.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(30));
                            Ok(b"same-bytes".to_vec())
                        })
                        .unwrap();
                    assert_eq!(payload, b"same-bytes");
                });
            }
        });
        assert_eq!(built.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn gc_prunes_least_recently_used_first() {
        let store = tmp_store("gc");
        store.save(StoreKind::Trace, "old", &[0u8; 100]).unwrap();
        store.save(StoreKind::Trace, "mid", &[0u8; 100]).unwrap();
        store.save(StoreKind::Trace, "hot", &[0u8; 100]).unwrap();
        // Space the markers out: filesystem mtime granularity can be
        // coarse, so make the "hot" touch unambiguously newest.
        std::thread::sleep(Duration::from_millis(30));
        assert!(store.load(StoreKind::Trace, "hot").is_some());
        let total = store.size_bytes();
        // A dry run reports the same eviction plan without removing
        // anything.
        let preview = store.gc(total - 1, true);
        assert!(preview.removed >= 1);
        assert_eq!(store.size_bytes(), total, "dry run must not delete");
        let stats = store.gc(total - 1, false); // force at least one eviction
        assert_eq!(stats, preview, "dry run predicts the real gc exactly");
        assert!(stats.removed >= 1);
        assert_eq!(stats.remaining_bytes, store.size_bytes());
        assert!(
            store.load(StoreKind::Trace, "hot").is_some(),
            "most recently used entry survives"
        );
        // A zero budget clears everything.
        let stats = store.gc(0, false);
        assert_eq!(stats.remaining_bytes, 0);
        assert_eq!(store.size_bytes(), 0);
    }
}
