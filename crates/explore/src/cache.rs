//! The TG artifact cache — trace once, translate once, replay many
//! times.
//!
//! The paper's economics (§6, Table 2) rest on amortisation: the
//! expensive cycle-true reference simulation and the trace translation
//! are one-time costs, after which every interconnect candidate is a
//! cheap TG replay. This module makes that amortisation explicit and
//! *verifiable* inside a campaign:
//!
//! * the **trace level** caches, per `(workload, cores, trace fabric)`,
//!   the traced reference run's outputs: the per-core OCP traces, the
//!   pollable ranges the translator needs, and the stochastic-baseline
//!   calibration derived from the traces;
//! * the **image level** caches, per `(workload, cores, trace fabric,
//!   translator cache key)`, the translated and assembled TG binaries.
//!
//! Both levels have *build-once* semantics under concurrency: the first
//! job to need an artifact builds it while holding that key's slot lock;
//! concurrent jobs needing the same key block on the slot (jobs for
//! other keys proceed), then read the finished artifact. Hit/miss
//! counters let tests and the CLI assert "each trace was collected and
//! translated exactly once".
//!
//! With a [`DiskStore`] attached ([`ArtifactCache::with_store`]), every
//! in-memory miss first consults the persistent store — a **third
//! counter tier**, `disk_hits`, separates "loaded from disk" from
//! "actually rebuilt", so a warm repeat campaign can assert it
//! re-traced *nothing* — and every build is spilled back to disk for
//! the next process (see [`store`](crate::store) for the on-disk
//! protocol).

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ntg_core::{GapDistribution, StochasticConfig, TgImage};
use ntg_platform::InterconnectChoice;
use ntg_trace::{MasterTrace, TraceStats};
use ntg_workloads::Workload;

use crate::spec::MasterChoice;
use crate::store::{
    decode_images, decode_trace_artifact, encode_images, encode_trace_artifact, image_store_key,
    trace_store_key, DiskStore, RemoteSnapshot, StoreKind,
};

/// Key of the trace level: one traced reference run.
pub type TraceKey = (Workload, usize, InterconnectChoice);

/// Key of the image level: a trace key plus
/// [`TranslatorConfig::cache_key`](ntg_core::TranslatorConfig::cache_key).
pub type ImageKey = (Workload, usize, InterconnectChoice, u64);

/// Everything the traced reference run produces that later jobs reuse.
#[derive(Debug, Clone)]
pub struct TraceArtifact {
    /// Per-core OCP traces (with halt timestamps).
    pub traces: Vec<MasterTrace>,
    /// Pollable address ranges of the traced platform (translator
    /// "platform knowledge").
    pub pollable: Vec<(u32, u32)>,
    /// Per-core stochastic-baseline configurations calibrated to the
    /// trace's aggregate load (seed field left 0; jobs fill in their
    /// derived seed).
    pub calibration: Vec<StochasticConfig>,
    /// Execution time of the traced run in cycles.
    pub ref_cycles: u64,
}

impl TraceArtifact {
    /// Calibrates the per-core stochastic baseline from traces, exactly
    /// like the `ablation_stochastic` experiment: same transaction
    /// count, same mean gap, same read/write/burst mix, addresses drawn
    /// from the platform's mapped ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed trace.
    pub fn calibrate(
        traces: &[MasterTrace],
        period_ns: u64,
        ranges: &[(u32, u32)],
    ) -> Result<Vec<StochasticConfig>, String> {
        traces
            .iter()
            .map(|t| {
                let stats = TraceStats::from_trace(t).map_err(|e| format!("trace stats: {e:?}"))?;
                let txs = stats.transactions();
                let mean_gap_cycles = (stats.idle_gap_ns.mean().unwrap_or(0.0)
                    / period_ns.max(1) as f64)
                    .round() as u32;
                let reads = stats.reads + stats.burst_reads;
                let writes = stats.writes + stats.burst_writes;
                Ok(StochasticConfig {
                    seed: 0,
                    ranges: ranges.to_vec(),
                    write_fraction: writes as f64 / (reads + writes).max(1) as f64,
                    burst_fraction: (stats.burst_reads + stats.burst_writes) as f64
                        / txs.max(1) as f64,
                    gap: GapDistribution::Geometric {
                        mean: mean_gap_cycles.max(1),
                    },
                    transactions: txs,
                })
            })
            .collect()
    }
}

/// One key's slot: taken (locked) by the builder, then holds the built
/// artifact for every later reader.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// A concurrent build-once map: the first `get_or_build` for a key runs
/// the builder; concurrent calls for the same key wait and share the
/// result. Errors are not cached — a later call retries the build.
struct OnceMap<K, V> {
    slots: Mutex<HashMap<K, Slot<V>>>,
}

impl<K: std::hash::Hash + Eq + Clone, V> OnceMap<K, V> {
    fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Returns `(artifact, was_hit)`.
    fn get_or_build(
        &self,
        key: &K,
        build: impl FnOnce() -> Result<V, String>,
    ) -> Result<(Arc<V>, bool), String> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache map poisoned");
            slots.entry(key.clone()).or_default().clone()
        };
        let mut guard = slot.lock().expect("cache slot poisoned");
        if let Some(v) = guard.as_ref() {
            return Ok((v.clone(), true));
        }
        let v = Arc::new(build()?);
        *guard = Some(v.clone());
        Ok((v, false))
    }
}

impl<K, V> Default for OnceMap<K, V> {
    fn default() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
        }
    }
}

/// A point-in-time copy of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Trace-level lookups served from the in-memory cache.
    pub trace_hits: u64,
    /// Trace-level builds (reference runs executed).
    pub trace_misses: u64,
    /// Trace-level lookups served from the persistent store.
    pub trace_disk_hits: u64,
    /// Image-level lookups served from the in-memory cache.
    pub image_hits: u64,
    /// Image-level builds (translations + assemblies executed).
    pub image_misses: u64,
    /// Image-level lookups served from the persistent store.
    pub image_disk_hits: u64,
    /// Published entry bytes in the attached store (0 without a store).
    pub store_bytes: u64,
    /// Remote-tier traffic (`None` when no remote tier is attached).
    pub remote: Option<RemoteSnapshot>,
}

impl CacheSnapshot {
    /// Formats the counters for CLI summaries — the campaign's cache
    /// economics in one line.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "cache: traces {} built / {} reused / {} from store, \
             TG binaries {} built / {} reused / {} from store, \
             store {} bytes",
            self.trace_misses,
            self.trace_hits,
            self.trace_disk_hits,
            self.image_misses,
            self.image_hits,
            self.image_disk_hits,
            self.store_bytes
        );
        if let Some(r) = self.remote {
            line.push_str(&format!(
                ", remote {} hits / {} misses / {} published / {} errors",
                r.hits, r.misses, r.publishes, r.errors
            ));
        }
        line
    }
}

/// The campaign-wide artifact cache (in-memory build-once map, plus an
/// optional persistent [`DiskStore`] tier underneath).
pub struct ArtifactCache {
    traces: OnceMap<TraceKey, TraceArtifact>,
    images: OnceMap<ImageKey, Vec<TgImage>>,
    store: Option<Arc<DiskStore>>,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    trace_disk_hits: AtomicU64,
    image_hits: AtomicU64,
    image_misses: AtomicU64,
    image_disk_hits: AtomicU64,
}

impl ArtifactCache {
    /// An empty, memory-only cache.
    pub fn new() -> Self {
        Self::with_store(None)
    }

    /// A cache backed by a persistent store (`None` for memory-only).
    pub fn with_store(store: Option<Arc<DiskStore>>) -> Self {
        Self {
            traces: OnceMap::new(),
            images: OnceMap::new(),
            store,
            trace_hits: AtomicU64::new(0),
            trace_misses: AtomicU64::new(0),
            trace_disk_hits: AtomicU64::new(0),
            image_hits: AtomicU64::new(0),
            image_misses: AtomicU64::new(0),
            image_disk_hits: AtomicU64::new(0),
        }
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.as_ref()
    }

    /// Trace-level lookup. Returns the artifact and whether it came
    /// from cache (memory or disk).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (not cached; a later job retries).
    pub fn traces(
        &self,
        key: &TraceKey,
        build: impl FnOnce() -> Result<TraceArtifact, String>,
    ) -> Result<(Arc<TraceArtifact>, bool), String> {
        let from_disk = Cell::new(false);
        let (v, mem_hit) = self.traces.get_or_build(key, || match &self.store {
            None => build(),
            Some(store) => {
                let key_str = trace_store_key(key);
                let (artifact, disk) = store.get_or_build_typed(
                    StoreKind::Trace,
                    &key_str,
                    |payload| {
                        decode_trace_artifact(payload).map_err(|e| format!("store {key_str}: {e}"))
                    },
                    || {
                        build().map(|a| {
                            let bytes = encode_trace_artifact(&a);
                            (a, bytes)
                        })
                    },
                )?;
                from_disk.set(disk);
                Ok(artifact)
            }
        })?;
        self.count(
            mem_hit,
            from_disk.get(),
            [&self.trace_hits, &self.trace_disk_hits, &self.trace_misses],
        );
        Ok((v, mem_hit || from_disk.get()))
    }

    /// Image-level lookup. Returns the assembled TG binaries and whether
    /// they came from cache (memory or disk).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (not cached; a later job retries).
    pub fn images(
        &self,
        key: &ImageKey,
        build: impl FnOnce() -> Result<Vec<TgImage>, String>,
    ) -> Result<(Arc<Vec<TgImage>>, bool), String> {
        let from_disk = Cell::new(false);
        let (v, mem_hit) = self.images.get_or_build(key, || match &self.store {
            None => build(),
            Some(store) => {
                let key_str = image_store_key(key);
                let (images, disk) = store.get_or_build_typed(
                    StoreKind::Image,
                    &key_str,
                    |payload| decode_images(payload).map_err(|e| format!("store {key_str}: {e}")),
                    || {
                        build().map(|imgs| {
                            let bytes = encode_images(&imgs);
                            (imgs, bytes)
                        })
                    },
                )?;
                from_disk.set(disk);
                Ok(images)
            }
        })?;
        self.count(
            mem_hit,
            from_disk.get(),
            [&self.image_hits, &self.image_disk_hits, &self.image_misses],
        );
        Ok((v, mem_hit || from_disk.get()))
    }

    fn count(&self, mem_hit: bool, disk_hit: bool, [hits, disk, misses]: [&AtomicU64; 3]) {
        let counter = if mem_hit {
            hits
        } else if disk_hit {
            disk
        } else {
            misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values (plus the store's on-disk size, which
    /// makes this a directory walk when a store is attached — call it
    /// once per summary, not per job).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            trace_disk_hits: self.trace_disk_hits.load(Ordering::Relaxed),
            image_hits: self.image_hits.load(Ordering::Relaxed),
            image_misses: self.image_misses.load(Ordering::Relaxed),
            image_disk_hits: self.image_disk_hits.load(Ordering::Relaxed),
            store_bytes: self.store.as_ref().map_or(0, |s| s.size_bytes()),
            remote: self
                .store
                .as_ref()
                .filter(|s| s.has_remote())
                .map(|s| s.remote_snapshot()),
        }
    }

    /// Which artifact levels a job of this master kind consumes — used
    /// by the runner to decide which hit flags a result records.
    pub fn levels_used(master: MasterChoice) -> (bool, bool) {
        match master {
            MasterChoice::Cpu => (false, false),
            MasterChoice::Tg => (true, true),
            MasterChoice::Stochastic => (true, false),
            // Synthetic traffic is generated, not translated: no trace,
            // no image, nothing cached.
            MasterChoice::Synthetic => (false, false),
        }
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn build_once_then_hit() {
        let cache = ArtifactCache::new();
        let key = (
            Workload::SpMatrix { n: 4 },
            1,
            InterconnectChoice::Amba,
            7u64,
        );
        let builds = AtomicUsize::new(0);
        for i in 0..3 {
            let (v, hit) = cache
                .images(&key, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    Ok(vec![])
                })
                .unwrap();
            assert_eq!(v.len(), 0);
            assert_eq!(hit, i > 0);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let snap = cache.snapshot();
        assert_eq!((snap.image_misses, snap.image_hits), (1, 2));
    }

    #[test]
    fn distinct_keys_build_independently() {
        let cache = ArtifactCache::new();
        let k1 = (
            Workload::SpMatrix { n: 4 },
            1,
            InterconnectChoice::Amba,
            1u64,
        );
        let k2 = (
            Workload::SpMatrix { n: 4 },
            1,
            InterconnectChoice::Amba,
            2u64,
        );
        cache.images(&k1, || Ok(vec![])).unwrap();
        let (_, hit) = cache.images(&k2, || Ok(vec![])).unwrap();
        assert!(!hit);
        assert_eq!(cache.snapshot().image_misses, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ArtifactCache::new();
        let key = (
            Workload::SpMatrix { n: 4 },
            1,
            InterconnectChoice::Amba,
            7u64,
        );
        assert!(cache.images(&key, || Err("boom".into())).is_err());
        let (_, hit) = cache.images(&key, || Ok(vec![])).unwrap();
        assert!(!hit, "error must not have populated the slot");
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = Arc::new(ArtifactCache::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let key = (
            Workload::SpMatrix { n: 4 },
            1,
            InterconnectChoice::Amba,
            9u64,
        );
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = cache.clone();
                let builds = builds.clone();
                s.spawn(move || {
                    cache
                        .images(&key, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            Ok(vec![])
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let snap = cache.snapshot();
        assert_eq!(snap.image_misses, 1);
        assert_eq!(snap.image_hits, 7);
    }
}
