//! Declarative campaign specifications and their expansion into jobs.
//!
//! A [`CampaignSpec`] names a cartesian grid — workloads × core counts ×
//! interconnects × master kinds × translation modes — and
//! [`CampaignSpec::expand`] turns it into a flat, **deterministically
//! ordered** list of [`JobSpec`]s:
//!
//! * expansion order is the nested iteration order of the spec's lists
//!   (workload, then cores, then interconnect, then master, then mode),
//!   so job ids are stable for a given spec;
//! * the mode axis only multiplies TG jobs — CPU and stochastic masters
//!   have no translation step, so they collapse to one job per
//!   (workload, cores, interconnect);
//! * each job's seed is derived from the campaign's base seed and a
//!   stable hash of the job *key* (not the job index), so inserting a
//!   new axis value reshuffles ids but never reseeds existing configs.

use ntg_core::rng::derive_seed;
use ntg_core::TranslationMode;
use ntg_platform::InterconnectChoice;
use ntg_workloads::synthetic::{Pattern, ShapeKind, SyntheticSpec};
use ntg_workloads::Workload;

use crate::json::Json;

/// What kind of master occupies every socket of a job's platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MasterChoice {
    /// Cycle-true Srisc CPU cores running the workload — the reference.
    Cpu,
    /// Traffic generators replaying the translated trace.
    Tg,
    /// The related-work stochastic baseline, auto-calibrated to the
    /// reference trace's aggregate load (see `ablation_stochastic`).
    Stochastic,
    /// Synthetic pattern × shape traffic generators; pairs only with
    /// [`Workload::Synthetic`] and sweeps the campaign's
    /// pattern/shape/rate axes instead of the mode axis.
    Synthetic,
}

impl std::fmt::Display for MasterChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MasterChoice::Cpu => "cpu",
            MasterChoice::Tg => "tg",
            MasterChoice::Stochastic => "stochastic",
            MasterChoice::Synthetic => "synthetic",
        })
    }
}

impl std::str::FromStr for MasterChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "cpu" => Ok(MasterChoice::Cpu),
            "tg" => Ok(MasterChoice::Tg),
            "stochastic" => Ok(MasterChoice::Stochastic),
            "synthetic" => Ok(MasterChoice::Synthetic),
            _ => Err(format!(
                "unknown master kind `{s}` (expected cpu, tg, stochastic or synthetic)"
            )),
        }
    }
}

/// How the core-count axis is chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreSelection {
    /// An explicit list, applied to every workload.
    List(Vec<usize>),
    /// Each workload's own Table-2 sweep
    /// ([`Workload::paper_core_counts`]).
    Paper,
}

/// A declarative sweep campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Human-readable campaign name (recorded in the result header).
    pub name: String,
    /// Workloads to sweep.
    pub workloads: Vec<Workload>,
    /// Core counts to sweep.
    pub cores: CoreSelection,
    /// Interconnects to evaluate.
    pub interconnects: Vec<InterconnectChoice>,
    /// Explicit xpipes mesh dimensions to evaluate *in addition to*
    /// [`Self::interconnects`]: each `(width, height)` appends an
    /// [`InterconnectChoice::Mesh`] point to the fabric axis. A mesh too
    /// small to seat a job's sockets (`2 × cores + 3` nodes: one NI per
    /// master, per private memory, plus shared memory, semaphore and
    /// print slaves) is skipped for that core count — a structural
    /// impossibility, not an error. Empty by default, so campaigns that
    /// never sweep mesh sizes keep their fingerprints.
    pub mesh_sizes: Vec<(u16, u16)>,
    /// Master kinds to evaluate.
    pub masters: Vec<MasterChoice>,
    /// Translation fidelity levels (multiplies TG jobs only).
    pub modes: Vec<TranslationMode>,
    /// Destination patterns (multiplies synthetic jobs only).
    pub patterns: Vec<Pattern>,
    /// Temporal injection shapes (multiplies synthetic jobs only).
    pub shapes: Vec<ShapeKind>,
    /// Offered injection rates λ in packets/cycle/master (multiplies
    /// synthetic jobs only).
    pub rates: Vec<f64>,
    /// Words per synthetic packet (≤ 4 keeps payloads inline).
    pub packet_words: u32,
    /// The interconnect reference traces are collected on (the paper
    /// traces on AMBA and explores elsewhere).
    pub trace_interconnect: InterconnectChoice,
    /// Base seed; per-job seeds are derived from it.
    pub base_seed: u64,
    /// Simulated-cycle bound per run (a job that hits it is recorded as
    /// not completed — a legitimate exploration outcome, not an error).
    pub max_cycles: u64,
    /// Timing repeats per job; wall time is the minimum over repeats
    /// (cycle counts are deterministic and identical across repeats).
    pub repeats: usize,
}

impl CampaignSpec {
    /// A campaign with the given name and engine defaults: AMBA traces,
    /// seed 1, a 2-billion-cycle bound, one timing repeat, reactive
    /// mode, CPU+TG masters on AMBA. Fill in the axes you sweep.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            workloads: Vec::new(),
            cores: CoreSelection::List(vec![1]),
            interconnects: vec![InterconnectChoice::Amba],
            mesh_sizes: Vec::new(),
            masters: vec![MasterChoice::Cpu, MasterChoice::Tg],
            modes: vec![TranslationMode::Reactive],
            patterns: vec![Pattern::Uniform],
            shapes: vec![ShapeKind::Bernoulli],
            rates: vec![0.05],
            packet_words: 4,
            trace_interconnect: InterconnectChoice::Amba,
            base_seed: 1,
            max_cycles: 2_000_000_000,
            repeats: 1,
        }
    }

    /// Expands the grid into deterministically ordered jobs.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::new();
        for &workload in &self.workloads {
            let core_counts = match &self.cores {
                CoreSelection::List(l) => l.clone(),
                CoreSelection::Paper => workload.paper_core_counts(),
            };
            for &cores in &core_counts {
                // The fabric axis: the configured interconnects followed
                // by the explicit mesh sizes (dimensioned xpipes points).
                let fabrics = self.interconnects.iter().copied().chain(
                    self.mesh_sizes
                        .iter()
                        .map(|&(w, h)| InterconnectChoice::Mesh(w, h)),
                );
                for interconnect in fabrics {
                    // Skip mesh points that cannot seat this job's
                    // sockets: cores masters + (cores + 3) slaves each
                    // need a node of their own.
                    if let InterconnectChoice::Mesh(w, h) = interconnect {
                        if usize::from(w) * usize::from(h) < 2 * cores + 3 {
                            continue;
                        }
                    }
                    for &master in &self.masters {
                        // Synthetic masters pair only with the synthetic
                        // workload (and vice versa): there is no program
                        // to run or trace to replay across the divide.
                        let synthetic_workload = matches!(workload, Workload::Synthetic { .. });
                        if (master == MasterChoice::Synthetic) != synthetic_workload {
                            continue;
                        }
                        if master == MasterChoice::Synthetic {
                            // Synthetic jobs sweep pattern × shape × λ
                            // in place of the translation-mode axis.
                            for &pattern in &self.patterns {
                                for &shape in &self.shapes {
                                    for &rate in &self.rates {
                                        let synth = SyntheticSpec {
                                            pattern,
                                            shape,
                                            rate,
                                            words: self.packet_words,
                                        };
                                        push_job(
                                            &mut jobs,
                                            self,
                                            workload,
                                            cores,
                                            interconnect,
                                            master,
                                            None,
                                            Some(synth),
                                        );
                                    }
                                }
                            }
                            continue;
                        }
                        // Only TG jobs have a translation step; CPU and
                        // stochastic masters collapse the mode axis.
                        let modes: Vec<Option<TranslationMode>> = match master {
                            MasterChoice::Tg => self.modes.iter().copied().map(Some).collect(),
                            _ => vec![None],
                        };
                        for mode in modes {
                            push_job(
                                &mut jobs,
                                self,
                                workload,
                                cores,
                                interconnect,
                                master,
                                mode,
                                None,
                            );
                        }
                    }
                }
            }
        }
        jobs
    }

    /// A stable fingerprint of everything that defines the campaign's
    /// results: the expanded job list (keys and seeds) plus the global
    /// run parameters. Resuming from a partial result file first checks
    /// the recorded fingerprint so stale results are never silently
    /// merged into a different campaign.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = String::new();
        acc.push_str(&self.trace_interconnect.to_string());
        acc.push('|');
        acc.push_str(&self.max_cycles.to_string());
        acc.push('|');
        acc.push_str(&self.repeats.max(1).to_string());
        for job in self.expand() {
            acc.push('|');
            acc.push_str(&job.key());
            acc.push('#');
            acc.push_str(&job.seed.to_string());
        }
        fnv1a(acc.as_bytes())
    }

    /// The spec as a JSON object — the wire format `ntg-serve` accepts.
    /// Every axis value renders through its `Display` form (the same
    /// strings the CLI flags take), so specs are writable by hand and
    /// round-trip exactly: `from_json(to_json(s)) == s`, which also
    /// pins the fingerprint across the wire.
    pub fn to_json(&self) -> Json {
        let strs = |items: &[String]| Json::Arr(items.iter().cloned().map(Json::Str).collect());
        let shown = |items: Vec<String>| strs(&items);
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "workloads".into(),
                shown(self.workloads.iter().map(ToString::to_string).collect()),
            ),
            (
                "cores".into(),
                match &self.cores {
                    CoreSelection::Paper => Json::Str("paper".into()),
                    CoreSelection::List(l) => {
                        Json::Arr(l.iter().map(|&c| Json::Int(c as i64)).collect())
                    }
                },
            ),
            (
                "interconnects".into(),
                shown(self.interconnects.iter().map(ToString::to_string).collect()),
            ),
            (
                "mesh_sizes".into(),
                shown(
                    self.mesh_sizes
                        .iter()
                        .map(|&(w, h)| format!("{w}x{h}"))
                        .collect(),
                ),
            ),
            (
                "masters".into(),
                shown(self.masters.iter().map(ToString::to_string).collect()),
            ),
            (
                "modes".into(),
                shown(self.modes.iter().map(ToString::to_string).collect()),
            ),
            (
                "patterns".into(),
                shown(self.patterns.iter().map(ToString::to_string).collect()),
            ),
            (
                "shapes".into(),
                shown(self.shapes.iter().map(ToString::to_string).collect()),
            ),
            (
                "rates".into(),
                Json::Arr(self.rates.iter().map(|&r| Json::Float(r)).collect()),
            ),
            (
                "packet_words".into(),
                Json::Int(i64::from(self.packet_words)),
            ),
            (
                "trace_interconnect".into(),
                Json::Str(self.trace_interconnect.to_string()),
            ),
            ("base_seed".into(), json_u64(self.base_seed)),
            ("max_cycles".into(), json_u64(self.max_cycles)),
            ("repeats".into(), Json::Int(self.repeats as i64)),
        ])
    }

    /// Parses a spec from the object [`Self::to_json`] renders.
    /// Missing fields take the [`Self::new`] defaults, so a minimal
    /// hand-written submission (`{"name": ..., "workloads": [...]}`)
    /// is a complete campaign.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("campaign spec must be a JSON object".into());
        }
        let mut spec = CampaignSpec::new("");
        spec.name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("spec: missing or non-string `name`")?
            .to_string();
        if let Some(w) = v.get("workloads") {
            spec.workloads = parse_axis(w, "workloads")?;
        }
        if let Some(c) = v.get("cores") {
            spec.cores = match c {
                Json::Str(s) if s == "paper" => CoreSelection::Paper,
                Json::Arr(items) => {
                    let mut list = Vec::with_capacity(items.len());
                    for item in items {
                        let n = item
                            .as_u64()
                            .filter(|&n| n >= 1)
                            .ok_or("spec: `cores` entries must be integers >= 1")?;
                        list.push(n as usize);
                    }
                    CoreSelection::List(list)
                }
                _ => return Err("spec: `cores` must be \"paper\" or an integer array".into()),
            };
        }
        if let Some(i) = v.get("interconnects") {
            spec.interconnects = parse_axis(i, "interconnects")?;
        }
        if let Some(m) = v.get("mesh_sizes") {
            let dims: Vec<String> = parse_axis(m, "mesh_sizes")?;
            spec.mesh_sizes = dims
                .iter()
                .map(|d| {
                    let (w, h) = d
                        .split_once('x')
                        .ok_or_else(|| format!("spec: mesh size `{d}` is not WxH"))?;
                    Ok((
                        w.parse()
                            .map_err(|_| format!("spec: mesh width in `{d}`"))?,
                        h.parse()
                            .map_err(|_| format!("spec: mesh height in `{d}`"))?,
                    ))
                })
                .collect::<Result<_, String>>()?;
        }
        if let Some(m) = v.get("masters") {
            spec.masters = parse_axis(m, "masters")?;
        }
        if let Some(m) = v.get("modes") {
            spec.modes = parse_axis(m, "modes")?;
        }
        if let Some(p) = v.get("patterns") {
            spec.patterns = parse_axis(p, "patterns")?;
        }
        if let Some(s) = v.get("shapes") {
            spec.shapes = parse_axis(s, "shapes")?;
        }
        if let Some(r) = v.get("rates") {
            let Json::Arr(items) = r else {
                return Err("spec: `rates` must be a number array".into());
            };
            spec.rates = items
                .iter()
                .map(|i| i.as_f64().ok_or("spec: `rates` entries must be numbers"))
                .collect::<Result<_, _>>()?;
        }
        if let Some(w) = v.get("packet_words") {
            spec.packet_words = u32::try_from(w.as_u64().ok_or("spec: `packet_words`")?)
                .map_err(|_| "spec: `packet_words` out of range")?;
        }
        if let Some(t) = v.get("trace_interconnect") {
            let s = t.as_str().ok_or("spec: `trace_interconnect`")?;
            spec.trace_interconnect = s
                .parse()
                .map_err(|e| format!("spec: trace_interconnect: {e}"))?;
        }
        if let Some(s) = v.get("base_seed") {
            spec.base_seed = parse_u64(s).ok_or("spec: `base_seed`")?;
        }
        if let Some(m) = v.get("max_cycles") {
            spec.max_cycles = parse_u64(m).ok_or("spec: `max_cycles`")?;
        }
        if let Some(r) = v.get("repeats") {
            spec.repeats =
                r.as_u64()
                    .filter(|&n| n >= 1)
                    .ok_or("spec: `repeats` must be an integer >= 1")? as usize;
        }
        Ok(spec)
    }
}

/// `u64` as JSON: an `Int` when it fits `i64`, else a decimal string
/// (lossless for the full range; [`parse_u64`] accepts both).
fn json_u64(n: u64) -> Json {
    match i64::try_from(n) {
        Ok(i) => Json::Int(i),
        Err(_) => Json::Str(n.to_string()),
    }
}

fn parse_u64(v: &Json) -> Option<u64> {
    v.as_u64().or_else(|| v.as_str()?.parse().ok())
}

/// Parses a string array through each element's `FromStr`.
fn parse_axis<T>(v: &Json, field: &str) -> Result<Vec<T>, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let Json::Arr(items) = v else {
        return Err(format!("spec: `{field}` must be a string array"));
    };
    items
        .iter()
        .map(|item| {
            let s = item
                .as_str()
                .ok_or_else(|| format!("spec: `{field}` entries must be strings"))?;
            s.parse().map_err(|e| format!("spec: {field}: {e}"))
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn push_job(
    jobs: &mut Vec<JobSpec>,
    spec: &CampaignSpec,
    workload: Workload,
    cores: usize,
    interconnect: InterconnectChoice,
    master: MasterChoice,
    mode: Option<TranslationMode>,
    synth: Option<SyntheticSpec>,
) {
    let id = jobs.len();
    let mut job = JobSpec {
        id,
        workload,
        cores,
        interconnect,
        master,
        mode,
        synth,
        seed: 0,
        max_cycles: spec.max_cycles,
        repeats: spec.repeats.max(1),
    };
    job.seed = derive_seed(spec.base_seed, fnv1a(job.key().as_bytes()));
    jobs.push(job);
}

/// One fully specified simulation job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Stable index in expansion order — the JSONL ordering key.
    pub id: usize,
    /// The workload.
    pub workload: Workload,
    /// Number of masters.
    pub cores: usize,
    /// Interconnect under evaluation.
    pub interconnect: InterconnectChoice,
    /// Master kind.
    pub master: MasterChoice,
    /// Translation mode (`Some` only for TG jobs).
    pub mode: Option<TranslationMode>,
    /// Synthetic traffic descriptor (`Some` only for synthetic jobs).
    pub synth: Option<SyntheticSpec>,
    /// Per-job seed (used by stochastic masters; derived, not configured).
    pub seed: u64,
    /// Simulated-cycle bound.
    pub max_cycles: u64,
    /// Timing repeats.
    pub repeats: usize,
}

impl JobSpec {
    /// The job's human-readable identity, e.g.
    /// `mp_matrix:16|4P|xpipes|tg|reactive` or
    /// `synthetic:256|8P|xpipes|synthetic|uniform+bernoulli@0.05/4`.
    /// Unique within a campaign; also the input of per-job seed
    /// derivation.
    pub fn key(&self) -> String {
        format!(
            "{}|{}P|{}|{}|{}",
            self.workload,
            self.cores,
            self.interconnect,
            self.master,
            self.mode_label()
        )
    }

    /// The mode slot of the key and of the canonical `mode` field: the
    /// synthetic descriptor for synthetic jobs, the translation mode
    /// for TG jobs, `-` otherwise.
    pub fn mode_label(&self) -> String {
        if let Some(s) = &self.synth {
            return s.to_string();
        }
        match self.mode {
            Some(m) => m.to_string(),
            None => "-".to_string(),
        }
    }
}

/// FNV-1a over a byte string — the stable hash used for job seeds and
/// campaign fingerprints.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        let mut s = CampaignSpec::new("test");
        s.workloads = vec![
            Workload::SpMatrix { n: 4 },
            Workload::Cacheloop { iterations: 100 },
        ];
        s.cores = CoreSelection::List(vec![1, 2]);
        s.interconnects = vec![InterconnectChoice::Amba, InterconnectChoice::Ideal];
        s.masters = vec![MasterChoice::Cpu, MasterChoice::Tg];
        s.modes = vec![TranslationMode::Reactive, TranslationMode::Clone];
        s
    }

    #[test]
    fn expansion_counts_modes_only_for_tg() {
        let jobs = small_spec().expand();
        // 2 workloads × 2 cores × 2 fabrics × (1 cpu + 2 tg modes) = 24.
        assert_eq!(jobs.len(), 24);
        let cpu = jobs
            .iter()
            .filter(|j| j.master == MasterChoice::Cpu)
            .count();
        let tg = jobs.iter().filter(|j| j.master == MasterChoice::Tg).count();
        assert_eq!((cpu, tg), (8, 16));
        assert!(jobs
            .iter()
            .all(|j| (j.master == MasterChoice::Tg) == j.mode.is_some()));
    }

    #[test]
    fn expansion_is_deterministic_and_ids_are_positional() {
        let a = small_spec().expand();
        let b = small_spec().expand();
        assert_eq!(a, b);
        for (i, j) in a.iter().enumerate() {
            assert_eq!(j.id, i);
        }
        // Keys are unique.
        let mut keys: Vec<_> = a.iter().map(JobSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), a.len());
    }

    #[test]
    fn paper_core_selection_follows_each_workload() {
        let mut s = CampaignSpec::new("paper");
        s.workloads = vec![
            Workload::SpMatrix { n: 4 },
            Workload::Des { blocks_per_core: 1 },
        ];
        s.cores = CoreSelection::Paper;
        s.masters = vec![MasterChoice::Cpu];
        let jobs = s.expand();
        let sp: Vec<usize> = jobs
            .iter()
            .filter(|j| matches!(j.workload, Workload::SpMatrix { .. }))
            .map(|j| j.cores)
            .collect();
        let des: Vec<usize> = jobs
            .iter()
            .filter(|j| matches!(j.workload, Workload::Des { .. }))
            .map(|j| j.cores)
            .collect();
        assert_eq!(sp, vec![1]);
        assert_eq!(des, vec![3, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn seeds_are_stable_per_key_not_per_position() {
        let full = small_spec().expand();
        let mut reduced_spec = small_spec();
        reduced_spec.workloads.remove(0); // shifts every id
        let reduced = reduced_spec.expand();
        for j in &reduced {
            let same = full.iter().find(|f| f.key() == j.key()).unwrap();
            assert_eq!(same.seed, j.seed, "{}", j.key());
            assert_ne!(same.id, j.id); // ids shifted, seeds did not
        }
    }

    #[test]
    fn fingerprint_tracks_spec_changes() {
        let base = small_spec();
        assert_eq!(base.fingerprint(), small_spec().fingerprint());
        let mut other = small_spec();
        other.max_cycles += 1;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut other = small_spec();
        other.base_seed += 1;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut other = small_spec();
        other.interconnects.pop();
        assert_ne!(base.fingerprint(), other.fingerprint());
    }

    #[test]
    fn mesh_sizes_append_to_the_fabric_axis() {
        let mut s = CampaignSpec::new("mesh");
        s.workloads = vec![Workload::SpMatrix { n: 4 }];
        s.cores = CoreSelection::List(vec![2]);
        s.interconnects = vec![InterconnectChoice::Xpipes];
        s.masters = vec![MasterChoice::Cpu];
        let plain = s.expand();
        assert_eq!(plain.len(), 1);
        let fp_plain = s.fingerprint();

        s.mesh_sizes = vec![(4, 4), (8, 8)];
        let jobs = s.expand();
        // Auto-layout xpipes plus the two explicit meshes.
        assert_eq!(jobs.len(), 3);
        let fabrics: Vec<String> = jobs.iter().map(|j| j.interconnect.to_string()).collect();
        assert_eq!(fabrics, ["xpipes", "xpipes:4x4", "xpipes:8x8"]);
        // Existing jobs keep their keys and seeds; the fingerprint moves.
        assert_eq!(jobs[0].key(), plain[0].key());
        assert_eq!(jobs[0].seed, plain[0].seed);
        assert_ne!(s.fingerprint(), fp_plain);
        // Keys stay unique across the mesh axis.
        let mut keys: Vec<_> = jobs.iter().map(JobSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), jobs.len());
    }

    #[test]
    fn undersized_meshes_are_skipped_per_core_count() {
        let mut s = CampaignSpec::new("mesh-cap");
        s.workloads = vec![Workload::SpMatrix { n: 4 }];
        s.cores = CoreSelection::List(vec![2, 8]);
        s.interconnects = vec![];
        s.masters = vec![MasterChoice::Cpu];
        // 2 cores need 7 nodes, 8 cores need 19: the 3×3 mesh seats only
        // the former, the 5×4 mesh seats both.
        s.mesh_sizes = vec![(3, 3), (5, 4)];
        let jobs = s.expand();
        let keys: Vec<String> = jobs.iter().map(JobSpec::key).collect();
        assert_eq!(
            keys,
            [
                "sp_matrix:4|2P|xpipes:3x3|cpu|-",
                "sp_matrix:4|2P|xpipes:5x4|cpu|-",
                "sp_matrix:4|8P|xpipes:5x4|cpu|-",
            ]
        );
    }

    #[test]
    fn master_choice_round_trips() {
        for m in [
            MasterChoice::Cpu,
            MasterChoice::Tg,
            MasterChoice::Stochastic,
            MasterChoice::Synthetic,
        ] {
            assert_eq!(m.to_string().parse::<MasterChoice>().unwrap(), m);
        }
        assert!("arm".parse::<MasterChoice>().is_err());
    }

    #[test]
    fn json_codec_round_trips_spec_and_fingerprint() {
        let mut s = small_spec();
        s.mesh_sizes = vec![(4, 4), (8, 2)];
        s.patterns = vec![Pattern::Uniform, Pattern::Transpose];
        s.shapes = vec![ShapeKind::Bernoulli, ShapeKind::Burst { len: 8 }];
        s.rates = vec![0.05, 0.125];
        s.packet_words = 2;
        s.base_seed = 42;
        s.repeats = 3;
        let rendered = s.to_json().render();
        let back = CampaignSpec::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.fingerprint(), s.fingerprint());

        // Paper core selection and >i64 seeds survive the wire.
        s.cores = CoreSelection::Paper;
        s.base_seed = u64::MAX - 1;
        let back = CampaignSpec::from_json(&Json::parse(&s.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn json_codec_defaults_missing_fields_and_names_bad_ones() {
        let v = Json::parse(r#"{"name":"mini","workloads":["sp_matrix:4"]}"#).unwrap();
        let spec = CampaignSpec::from_json(&v).unwrap();
        let defaults = CampaignSpec::new("mini");
        assert_eq!(spec.cores, defaults.cores);
        assert_eq!(spec.masters, defaults.masters);
        assert_eq!(spec.max_cycles, defaults.max_cycles);
        assert_eq!(spec.workloads, vec![Workload::SpMatrix { n: 4 }]);

        for bad in [
            r#"{"workloads":[]}"#,                   // no name
            r#"{"name":"x","workloads":["nope"]}"#,  // bad workload
            r#"{"name":"x","cores":[0]}"#,           // zero cores
            r#"{"name":"x","mesh_sizes":["4by4"]}"#, // bad mesh dims
            r#"{"name":"x","rates":["fast"]}"#,      // non-numeric rate
            r#"{"name":"x","repeats":0}"#,           // zero repeats
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(CampaignSpec::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn synthetic_jobs_sweep_pattern_shape_rate_and_pair_exclusively() {
        let mut s = CampaignSpec::new("syn");
        s.workloads = vec![
            Workload::Synthetic { packets: 128 },
            Workload::SpMatrix { n: 4 },
        ];
        s.cores = CoreSelection::List(vec![4]);
        s.interconnects = vec![InterconnectChoice::Xpipes, InterconnectChoice::Crossbar];
        s.masters = vec![MasterChoice::Cpu, MasterChoice::Synthetic];
        s.patterns = vec![Pattern::Uniform, Pattern::Transpose];
        s.shapes = vec![ShapeKind::Bernoulli, ShapeKind::Burst { len: 8 }];
        s.rates = vec![0.05, 0.1, 0.2];
        s.packet_words = 2;
        let jobs = s.expand();
        // Synthetic workload × 2 fabrics × (2 patterns × 2 shapes × 3
        // rates) + sp_matrix × 2 fabrics × cpu.
        assert_eq!(jobs.len(), 2 * 12 + 2);
        for j in &jobs {
            let synthetic_workload = matches!(j.workload, Workload::Synthetic { .. });
            assert_eq!(j.master == MasterChoice::Synthetic, synthetic_workload);
            assert_eq!(j.synth.is_some(), synthetic_workload, "{}", j.key());
            if let Some(sp) = &j.synth {
                assert_eq!(sp.words, 2);
                assert!(j.key().ends_with(&sp.to_string()), "{}", j.key());
            }
        }
        // Keys stay unique across the synthetic axes.
        let mut keys: Vec<_> = jobs.iter().map(JobSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), jobs.len());
        // The descriptor axes feed the fingerprint.
        let fp = s.fingerprint();
        s.rates.push(0.4);
        assert_ne!(fp, s.fingerprint());
    }
}
