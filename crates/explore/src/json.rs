//! Minimal hand-written JSON — writer and parser.
//!
//! DESIGN §6 rules out `serde`: every on-disk format in this
//! reproduction is specified byte-exactly and implemented by hand. The
//! campaign result sink needs only a small, fully deterministic subset
//! of JSON:
//!
//! * objects preserve insertion order (the writer controls field order,
//!   which is what makes result files byte-reproducible);
//! * integers are emitted verbatim, floats through Rust's shortest
//!   round-trip formatting (deterministic for a given value);
//! * strings are escaped per RFC 8259 (`"`, `\`, control characters).
//!
//! The parser accepts standard JSON (it is only used to read files this
//! writer produced, plus hand-edited campaign resumes).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent, within `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; field order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` is Rust's shortest round-trip formatting —
                    // deterministic for a given value. It prints integral
                    // floats without a dot; add one so the token parses
                    // back as a float.
                    let mut tok = format!("{f}");
                    if !tok.contains(['.', 'e', 'E']) {
                        tok.push_str(".0");
                    }
                    out.push_str(&tok);
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (exactly one value plus whitespace).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // files; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            tok.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number `{tok}`"))
        } else {
            tok.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number `{tok}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: &[(&str, Json)]) -> Json {
        Json::Obj(
            fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn renders_canonical_forms() {
        let v = obj(&[
            ("id", Json::Int(3)),
            ("name", Json::Str("a\"b\\c\nd".into())),
            ("pct", Json::Float(1.25)),
            ("whole", Json::Float(2.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"id":3,"name":"a\"b\\c\nd","pct":1.25,"whole":2.0,"ok":true,"none":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn round_trips_through_parser() {
        let v = obj(&[
            ("a", Json::Int(-42)),
            ("b", Json::Float(0.125)),
            ("c", Json::Str("héllo \u{1} end".into())),
            ("d", Json::Arr(vec![Json::Null, Json::Bool(false)])),
            ("e", obj(&[("nested", Json::Int(1))])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // And rendering is a fixpoint.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn parses_whitespace_and_rejects_trailing() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)]))
        );
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn integer_precision_is_preserved() {
        let big = 9_007_199_254_740_993i64; // 2^53 + 1: would corrupt via f64
        let text = Json::Int(big).render();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big as u64));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"i":7,"f":1.5,"s":"x","b":true,"n":null}"#).unwrap();
        assert_eq!(v.get("i").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("n").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }
}
