//! Design-space-exploration campaigns over the NTG platform.
//!
//! The paper's whole point (§1, §6) is that translated traffic
//! generators make *interconnect design-space exploration* cheap: trace
//! an application once on a reference platform, translate the traces
//! into reactive TG programs once, then replay them across every
//! interconnect candidate at a fraction of the full-system simulation
//! cost. This crate turns that loop into an engine:
//!
//! * [`CampaignSpec`] declares a cartesian sweep — workloads × core
//!   counts × interconnects × master kinds (reference CPU, translated
//!   TG, calibrated stochastic baseline) × translation modes — and
//!   expands it into deterministically ordered, deterministically
//!   seeded [`JobSpec`]s;
//! * [`run_campaign`] executes the jobs on a worker pool (each
//!   simulation stays single-threaded and cycle-deterministic;
//!   parallelism is across configurations), sharing an
//!   [`ArtifactCache`] so each (workload, core count) is traced once
//!   and each translator configuration is translated once per campaign;
//! * results stream to a crash-safe JSONL journal and are finalised
//!   into a canonical, **byte-reproducible** result file — identical
//!   across worker-thread counts — plus a non-canonical wall-time
//!   sidecar ([`runner`] module docs spell out the contract);
//! * interrupted campaigns resume: re-running completes only the
//!   missing jobs, guarded by a campaign fingerprint;
//! * a persistent, content-addressed [`DiskStore`] spills both cache
//!   levels to disk (`~/.cache/ntg` by default), so *repeat* campaigns
//!   skip the expensive reference simulations entirely — the
//!   `disk_hits` counter tier makes that assertable;
//! * campaigns shard across processes/machines (`RunOptions::shard`);
//!   [`merge_shards`] reassembles the shard JSONLs into a file
//!   byte-identical to a single-process run.
//!
//! The `ntg-sweep` binary is the CLI frontend; the `table2`, `explore`
//! and ablation binaries in `ntg-bench` are thin presets over the same
//! engine.
//!
//! ```no_run
//! use ntg_explore::{run_campaign, CampaignSpec, CoreSelection, RunOptions};
//! use ntg_workloads::Workload;
//!
//! let mut spec = CampaignSpec::new("quick");
//! spec.workloads = vec![Workload::MpMatrix { n: 8 }];
//! spec.cores = CoreSelection::List(vec![2, 4]);
//! let outcome = run_campaign(&spec, &RunOptions::default()).unwrap();
//! assert_eq!(outcome.results.len(), 4); // 2 core counts × (cpu + tg)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod result;
pub mod runner;
pub mod spec;
pub mod store;

pub use cache::{ArtifactCache, CacheSnapshot, TraceArtifact};
pub use json::Json;
pub use result::{parse_results, CampaignHeader, JobMetrics, JobResult, LoadedResults};
pub use runner::{
    collect_shard_files, merge_shards, metrics_path, partial_path, run_campaign, shard_path,
    timings_path, CampaignOutcome, MergeSummary, RunOptions,
};
pub use spec::{CampaignSpec, CoreSelection, JobSpec, MasterChoice};
pub use store::{
    entry_file_name, verify_entry, DiskStore, GcStats, RemoteSnapshot, RemoteTier, StoreKind,
    StoreStats,
};
