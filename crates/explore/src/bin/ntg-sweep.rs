//! `ntg-sweep` — declarative design-space-exploration campaigns.
//!
//! Expands a cartesian sweep spec (workloads × core counts ×
//! interconnects × master kinds × translation modes) into jobs, runs
//! them on a worker pool with trace/TG-image caching, and writes a
//! byte-reproducible JSONL result file (see `ntg_explore` docs).
//!
//! ```text
//! ntg-sweep --preset quick --threads 4 --out quick.jsonl
//! ntg-sweep --workloads mp_matrix:16 --cores 4 --fabrics all \
//!           --masters cpu,tg --out fabrics.jsonl
//! ntg-sweep --preset table2 --resume --out table2.jsonl
//! ntg-sweep --preset table2 --shard 1/2 --out table2.jsonl   # machine A
//! ntg-sweep --preset table2 --shard 2/2 --out table2.jsonl   # machine B
//! ntg-sweep merge --out table2.jsonl \
//!           table2.jsonl.shard-1-of-2 table2.jsonl.shard-2-of-2
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ntg_explore::{
    merge_shards, run_campaign, shard_path, CampaignSpec, CoreSelection, DiskStore, MasterChoice,
    RunOptions,
};
use ntg_platform::{InterconnectChoice, ALL_INTERCONNECTS};
use ntg_workloads::synthetic::{Pattern, ShapeKind};
use ntg_workloads::Workload;

/// Warn after a run when the persistent store outgrows this budget
/// (override with `NTG_STORE_BUDGET`, in bytes).
const DEFAULT_STORE_BUDGET: u64 = 1 << 30;

const USAGE: &str = "\
ntg-sweep — run a design-space-exploration campaign

USAGE:
    ntg-sweep [--preset NAME] [OPTIONS]
    ntg-sweep merge --out PATH SHARD_FILE...

PRESETS (a starting point; later options override):
    table2     paper Table 2: 4 workloads, paper core sweeps, CPU vs TG on AMBA
    quick      small smoke campaign: 2 workloads x {2,4}P x {amba,xpipes}, CPU vs TG
    fabrics    paper §1 exploration: mp_matrix:16 4P across all interconnects
    ablation   mp_matrix:16 4P: cpu/tg/stochastic x all modes x 3 fabrics
    saturation synthetic 8P lambda-sweep: {xpipes,crossbar} x 3 patterns x 6 rates
               (latency-vs-offered-load curves; render with ntg-report)

OPTIONS:
    --name NAME          campaign name (default: preset name or `sweep`)
    --workloads LIST     comma-separated workload specs, e.g. mp_matrix:16,cacheloop:5000
    --cores LIST|paper   comma-separated core counts, or `paper` for each
                         workload's Table-2 sweep
    --fabrics LIST|all   interconnects to evaluate (amba, amba-fixed,
                         crossbar, xpipes, xpipes:WxH, ideal)
    --mesh-sizes LIST    explicit xpipes mesh dimensions appended to the
                         fabric axis, e.g. 4x4,8x8,16x16 (meshes too small
                         for a job's core count are skipped)
    --masters LIST       master kinds: cpu, tg, stochastic, synthetic
    --modes LIST         translation modes for TG jobs: clone, timeshift, reactive
    --patterns LIST      synthetic destination patterns: uniform, complement,
                         shuffle, transpose, tornado, neighbor, hotspot:<pct>
    --shapes LIST        synthetic temporal shapes: bernoulli, burst:<len>,
                         onoff:<on>:<off>
    --rates LIST         synthetic offered injection rates in (0,1],
                         e.g. 0.02,0.05,0.1
    --packet-words N     words per synthetic packet (default 4; <=4 stays
                         inline/alloc-free)
    --trace-fabric F     interconnect reference traces are collected on (default amba)
    --seed N             campaign base seed (default 1)
    --max-cycles N       simulated-cycle bound per run (default 2000000000)
    --repeats N          timing repeats per job (default 1)
    --threads N          worker threads; 0 = one per hardware thread (default 1)
    --sim-threads N      partition each mesh simulation across N threads
                         (row bands in cycle lockstep; results stay
                         bit-identical, default 1)
    --out PATH           result file (default <name>.jsonl)
    --resume             keep matching results from an earlier partial run
    --shard I/N          run only shard I of N (jobs are dealt round-robin by
                         id); the result file gets a `.shard-I-of-N` suffix.
                         Reassemble with `ntg-sweep merge`.
    --store PATH         persistent artifact store for traces/TG binaries
                         (default: $NTG_STORE, else ~/.cache/ntg)
    --no-store           skip the persistent store for this run
    --store-gc BYTES     prune the store to BYTES (least recently used
                         artifacts first) and exit
    --dry-run            print the expanded job list, shard assignment, and
                         an estimate of trace/image store reuse, then exit
    --quiet              suppress per-job progress on stderr
    -h, --help           this text
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ntg-sweep: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    if args.first().map(String::as_str) == Some("merge") {
        return run_merge(args[1..].to_vec());
    }

    let mut spec: Option<CampaignSpec> = None;
    let mut name: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut opts = RunOptions {
        threads: 1,
        out: None,
        resume: false,
        quiet: false,
        store: None,
        shard: None,
        sim_threads: 1,
    };
    let mut store_flag: Option<PathBuf> = None;
    let mut no_store = false;
    let mut store_gc: Option<u64> = None;
    let mut dry_run = false;

    let mut it = args.into_iter();
    // The spec starts from a preset if `--preset` comes first; any axis
    // flag before a default spec creates one.
    let take = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let p = take(&mut it, "--preset")?;
                if spec.is_some() {
                    return Err("--preset must come before axis options".into());
                }
                spec = Some(preset(&p)?);
            }
            "--name" => name = Some(take(&mut it, "--name")?),
            "--workloads" => {
                spec.get_or_insert_with(default_spec).workloads =
                    parse_list(&take(&mut it, "--workloads")?, |s| s.parse::<Workload>())?;
            }
            "--cores" => {
                let v = take(&mut it, "--cores")?;
                spec.get_or_insert_with(default_spec).cores = if v == "paper" {
                    CoreSelection::Paper
                } else {
                    CoreSelection::List(parse_list(&v, |s| {
                        s.parse::<usize>().map_err(|e| format!("core count: {e}"))
                    })?)
                };
            }
            "--fabrics" => {
                let v = take(&mut it, "--fabrics")?;
                spec.get_or_insert_with(default_spec).interconnects = if v == "all" {
                    ALL_INTERCONNECTS.to_vec()
                } else {
                    parse_list(&v, |s| s.parse::<InterconnectChoice>())?
                };
            }
            "--mesh-sizes" => {
                spec.get_or_insert_with(default_spec).mesh_sizes =
                    parse_list(&take(&mut it, "--mesh-sizes")?, parse_mesh_size)?;
            }
            "--masters" => {
                spec.get_or_insert_with(default_spec).masters =
                    parse_list(&take(&mut it, "--masters")?, |s| s.parse::<MasterChoice>())?;
            }
            "--modes" => {
                spec.get_or_insert_with(default_spec).modes =
                    parse_list(&take(&mut it, "--modes")?, |s| s.parse())?;
            }
            "--patterns" => {
                spec.get_or_insert_with(default_spec).patterns =
                    parse_list(&take(&mut it, "--patterns")?, |s| s.parse())?;
            }
            "--shapes" => {
                spec.get_or_insert_with(default_spec).shapes =
                    parse_list(&take(&mut it, "--shapes")?, |s| s.parse())?;
            }
            "--rates" => {
                spec.get_or_insert_with(default_spec).rates =
                    parse_list(&take(&mut it, "--rates")?, |s| {
                        s.parse::<f64>()
                            .map_err(|e| format!("--rates: {e}"))
                            .and_then(|r| {
                                if r > 0.0 && r <= 1.0 {
                                    Ok(r)
                                } else {
                                    Err(format!("--rates: {r} outside (0, 1]"))
                                }
                            })
                    })?;
            }
            "--packet-words" => {
                spec.get_or_insert_with(default_spec).packet_words =
                    take(&mut it, "--packet-words")?
                        .parse()
                        .map_err(|e| format!("--packet-words: {e}"))?;
            }
            "--trace-fabric" => {
                spec.get_or_insert_with(default_spec).trace_interconnect =
                    take(&mut it, "--trace-fabric")?.parse()?;
            }
            "--seed" => {
                spec.get_or_insert_with(default_spec).base_seed = take(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--max-cycles" => {
                spec.get_or_insert_with(default_spec).max_cycles = take(&mut it, "--max-cycles")?
                    .parse()
                    .map_err(|e| format!("--max-cycles: {e}"))?;
            }
            "--repeats" => {
                spec.get_or_insert_with(default_spec).repeats = take(&mut it, "--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
            }
            "--threads" => {
                opts.threads = take(&mut it, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--sim-threads" => {
                opts.sim_threads = take(&mut it, "--sim-threads")?
                    .parse()
                    .map_err(|e| format!("--sim-threads: {e}"))?;
            }
            "--out" => out = Some(PathBuf::from(take(&mut it, "--out")?)),
            "--resume" => opts.resume = true,
            "--shard" => opts.shard = Some(parse_shard(&take(&mut it, "--shard")?)?),
            "--store" => store_flag = Some(PathBuf::from(take(&mut it, "--store")?)),
            "--no-store" => no_store = true,
            "--store-gc" => {
                store_gc = Some(
                    take(&mut it, "--store-gc")?
                        .parse()
                        .map_err(|e| format!("--store-gc: {e}"))?,
                );
            }
            "--dry-run" => dry_run = true,
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }

    let store_base = match (no_store, store_flag) {
        (true, _) => None,
        (false, Some(p)) => Some(p),
        (false, None) => DiskStore::default_base(),
    };

    if let Some(budget) = store_gc {
        let base = store_base
            .ok_or("--store-gc: no store configured (give --store or set NTG_STORE/HOME)")?;
        let store = DiskStore::open(&base)?;
        let stats = store.gc(budget);
        println!(
            "store {}: pruned {} artifact(s), freed {} bytes, {} bytes remain",
            store.root().display(),
            stats.removed,
            stats.freed_bytes,
            stats.remaining_bytes
        );
        return Ok(ExitCode::SUCCESS);
    }

    let mut spec = spec.ok_or("nothing to do: give --preset or axis options (see --help)")?;
    if let Some(n) = name {
        spec.name = n;
    }
    if spec.workloads.is_empty() {
        return Err("no workloads selected".into());
    }

    let jobs = spec.expand();
    if dry_run {
        print_dry_run(&spec, &jobs, opts.shard);
        return Ok(ExitCode::SUCCESS);
    }

    opts.store = store_base;
    let base_out = out.unwrap_or_else(|| PathBuf::from(format!("{}.jsonl", spec.name)));
    opts.out = Some(match opts.shard {
        // Shards write next to the canonical path, never to it — the
        // canonical file is `merge`'s to produce.
        Some(shard) => shard_path(&base_out, shard),
        None => base_out,
    });
    let outcome = run_campaign(&spec, &opts)?;

    // Result table: deterministic columns only; timings live in the
    // sidecar.
    println!(
        "campaign `{}`: {} jobs ({} run, {} resumed) in {:.2}s",
        outcome.header.name,
        outcome.results.len(),
        outcome.executed,
        outcome.resumed,
        outcome.wall_secs
    );
    println!("{}", outcome.cache.summary_line());
    println!(
        "\n{:<44} {:>14} {:>9} {:>9} {:>6}",
        "configuration", "cycles", "err%", "verified", "cache"
    );
    let mut failures = 0;
    for r in &outcome.results {
        let cycles = match (r.error.as_ref(), r.cycles) {
            (Some(_), _) => {
                failures += 1;
                "FAILED".to_string()
            }
            (None, Some(c)) => c.to_string(),
            (None, None) => "bound".to_string(),
        };
        let err_pct = r
            .error_pct
            .map(|e| format!("{e:.2}"))
            .unwrap_or_else(|| "-".into());
        let verified = match r.verified {
            Some(true) => "ok",
            Some(false) => "MISMATCH",
            None => "-",
        };
        let cache = match (r.trace_cache_hit, r.image_cache_hit) {
            (Some(t), Some(i)) => format!("{}{}", hit_char(t), hit_char(i)),
            (Some(t), None) => hit_char(t).to_string(),
            _ => "-".into(),
        };
        println!(
            "{:<44} {cycles:>14} {err_pct:>9} {verified:>9} {cache:>6}",
            r.key
        );
    }
    if let Some(out) = &opts.out {
        println!("\nresults: {}", out.display());
        if let Some((_, n)) = opts.shard {
            println!("(shard file — assemble the campaign with `ntg-sweep merge` once all {n} shards are done)");
        }
    }
    let budget = std::env::var("NTG_STORE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_STORE_BUDGET);
    if outcome.cache.store_bytes > budget {
        eprintln!(
            "ntg-sweep: warning: artifact store holds {} bytes (budget {budget}); \
             prune with `ntg-sweep --store-gc {budget}`",
            outcome.cache.store_bytes
        );
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("ntg-sweep: {failures} job(s) failed");
        ExitCode::FAILURE
    })
}

/// `--dry-run`: the expanded job list, per-job shard assignment (when
/// `--shard` is given), and how much artifact reuse the cache/store
/// will see — how many distinct reference traces and TG program images
/// the campaign actually builds.
fn print_dry_run(
    spec: &CampaignSpec,
    jobs: &[ntg_explore::JobSpec],
    shard: Option<(usize, usize)>,
) {
    println!(
        "campaign `{}` ({} jobs, fingerprint {:016x}):",
        spec.name,
        jobs.len(),
        spec.fingerprint()
    );
    let mut in_shard = 0usize;
    for j in jobs {
        match shard {
            // Jobs are dealt round-robin by id: shard I of N runs ids
            // with id % N == I - 1.
            Some((i, n)) => {
                let assigned = j.id % n + 1;
                let marker = if assigned == i {
                    in_shard += 1;
                    '*'
                } else {
                    ' '
                };
                println!("  [{:>3}] {marker} shard {assigned}/{n}  {}", j.id, j.key());
            }
            None => println!("  [{:>3}] {}", j.id, j.key()),
        }
    }
    if let Some((i, n)) = shard {
        println!(
            "shard {i}/{n} runs {in_shard} of {} job(s) (marked *)",
            jobs.len()
        );
    }

    // Store-reuse estimate, mirroring the runner's cache keys: reference
    // traces are shared per (workload, cores) — they are always recorded
    // on the campaign's trace fabric — and TG images per
    // (workload, cores, mode).
    let mut trace_keys = std::collections::BTreeSet::new();
    let mut image_keys = std::collections::BTreeSet::new();
    let mut trace_consumers = 0usize;
    let mut image_consumers = 0usize;
    for j in jobs {
        match j.master {
            MasterChoice::Cpu => {}
            MasterChoice::Tg => {
                trace_consumers += 1;
                trace_keys.insert(format!("{}|{}", j.workload, j.cores));
                image_consumers += 1;
                image_keys.insert(format!(
                    "{}|{}|{}",
                    j.workload,
                    j.cores,
                    j.mode.map(|m| m.to_string()).unwrap_or_default()
                ));
            }
            MasterChoice::Stochastic => {
                trace_consumers += 1;
                trace_keys.insert(format!("{}|{}", j.workload, j.cores));
            }
            // Synthetic jobs generate traffic directly: no trace, no
            // image, nothing fetched from the store.
            MasterChoice::Synthetic => {}
        }
    }
    println!(
        "store reuse: {trace_consumers} job(s) consume {} distinct reference trace(s) \
         (on {}); {image_consumers} TG job(s) share {} distinct program image(s)",
        trace_keys.len(),
        spec.trace_interconnect,
        image_keys.len()
    );
}

/// `ntg-sweep merge --out PATH SHARD_FILE...`
fn run_merge(args: Vec<String>) -> Result<ExitCode, String> {
    let mut out: Option<PathBuf> = None;
    let mut shards: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(PathBuf::from(
                    it.next().ok_or("--out needs a value".to_string())?,
                ));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("merge: unknown option `{flag}` (see --help)"));
            }
            path => shards.push(PathBuf::from(path)),
        }
    }
    let out = out.ok_or("merge: --out is required")?;
    let summary = merge_shards(&shards, &out)?;
    println!(
        "campaign `{}`: merged {} shard file(s) into {} ({} jobs)",
        summary.header.name,
        summary.shards,
        out.display(),
        summary.jobs
    );
    Ok(ExitCode::SUCCESS)
}

/// Parses `I/N` for `--shard`; 1-based, `1 <= I <= N`.
fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let (i, n) = s
        .split_once('/')
        .ok_or(format!("--shard: expected I/N, got `{s}`"))?;
    let i: usize = i.parse().map_err(|e| format!("--shard: {e}"))?;
    let n: usize = n.parse().map_err(|e| format!("--shard: {e}"))?;
    if n == 0 || i == 0 || i > n {
        return Err(format!(
            "--shard: index must satisfy 1 <= I <= N, got {i}/{n}"
        ));
    }
    Ok((i, n))
}

fn hit_char(hit: bool) -> char {
    if hit {
        'H'
    } else {
        'M'
    }
}

fn default_spec() -> CampaignSpec {
    CampaignSpec::new("sweep")
}

/// Parses `WxH` for `--mesh-sizes` (both dimensions in 1..=255).
fn parse_mesh_size(s: &str) -> Result<(u16, u16), String> {
    let (w, h) = s
        .split_once('x')
        .ok_or(format!("--mesh-sizes: expected WxH, got `{s}`"))?;
    let w: u16 = w.parse().map_err(|e| format!("--mesh-sizes: {e}"))?;
    let h: u16 = h.parse().map_err(|e| format!("--mesh-sizes: {e}"))?;
    if w == 0 || h == 0 || w > 255 || h > 255 {
        return Err(format!(
            "--mesh-sizes: dimensions must be in 1..=255, got {w}x{h}"
        ));
    }
    Ok((w, h))
}

fn parse_list<T>(s: &str, parse: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(parse)
        .collect()
}

fn preset(name: &str) -> Result<CampaignSpec, String> {
    let mut spec = CampaignSpec::new(name);
    match name {
        // The paper's Table 2: every workload over its own core sweep,
        // reference CPUs vs reactive TGs on the AMBA-like bus.
        "table2" => {
            spec.workloads = vec![
                Workload::SpMatrix { n: 16 },
                Workload::Cacheloop { iterations: 60_000 },
                Workload::MpMatrix { n: 24 },
                Workload::Des {
                    blocks_per_core: 24,
                },
            ];
            spec.cores = CoreSelection::Paper;
            spec.repeats = 3;
        }
        // A fast smoke campaign that still exercises trace/image reuse:
        // 16 jobs, 4 distinct traces, each translated once.
        "quick" => {
            spec.workloads = vec![
                Workload::MpMatrix { n: 8 },
                Workload::Cacheloop { iterations: 500 },
            ];
            spec.cores = CoreSelection::List(vec![2, 4]);
            spec.interconnects = vec![InterconnectChoice::Amba, InterconnectChoice::Xpipes];
        }
        // The §1 motivation: one TG program set evaluated across every
        // interconnect. Bounded low — static-priority arbitration can
        // legitimately livelock, which is a finding, not an error.
        "fabrics" => {
            spec.workloads = vec![Workload::MpMatrix { n: 16 }];
            spec.cores = CoreSelection::List(vec![4]);
            spec.interconnects = ALL_INTERCONNECTS.to_vec();
            spec.max_cycles = 5_000_000;
        }
        // Fidelity ablation: all translation modes plus the stochastic
        // related-work baseline, across three fabrics.
        "ablation" => {
            spec.workloads = vec![Workload::MpMatrix { n: 16 }];
            spec.cores = CoreSelection::List(vec![4]);
            spec.interconnects = vec![
                InterconnectChoice::Amba,
                InterconnectChoice::Crossbar,
                InterconnectChoice::Xpipes,
            ];
            spec.masters = vec![
                MasterChoice::Cpu,
                MasterChoice::Tg,
                MasterChoice::Stochastic,
            ];
            spec.modes = vec![
                ntg_core::TranslationMode::Clone,
                ntg_core::TranslationMode::Timeshift,
                ntg_core::TranslationMode::Reactive,
            ];
        }
        // Injection-rate saturation sweep: synthetic masters across two
        // NoC-capable fabrics, three representative patterns, six
        // offered loads. ntg-report turns the result into
        // latency-vs-offered-load curves with saturated points flagged.
        "saturation" => {
            spec.workloads = vec![Workload::Synthetic { packets: 256 }];
            spec.cores = CoreSelection::List(vec![8]);
            spec.interconnects = vec![InterconnectChoice::Xpipes, InterconnectChoice::Crossbar];
            spec.masters = vec![MasterChoice::Synthetic];
            spec.patterns = vec![
                Pattern::Uniform,
                Pattern::Transpose,
                Pattern::Hotspot { percent: 75 },
            ];
            spec.shapes = vec![ShapeKind::Bernoulli];
            spec.rates = vec![0.02, 0.05, 0.08, 0.12, 0.16, 0.2];
            spec.max_cycles = 2_000_000;
        }
        other => return Err(format!("unknown preset `{other}` (see --help)")),
    }
    Ok(spec)
}
