//! Campaign results and the JSONL sink.
//!
//! A campaign writes three files:
//!
//! * **`<out>`** — the canonical result file: one header line, then one
//!   line per job, **sorted by job id**, containing only deterministic
//!   fields. Two runs of the same spec produce byte-identical files
//!   regardless of worker-thread count.
//! * **`<out>.partial.jsonl`** — the crash-safe journal: results are
//!   appended as jobs finish (in completion order). On resume, parsed
//!   results whose campaign fingerprint matches are kept and only the
//!   missing jobs run. Deleted once the canonical file is finalised.
//! * **`<out>.timings.jsonl`** — wall-clock times per job plus campaign
//!   totals. Deliberately *outside* the canonical file: host timing is
//!   not deterministic and must not break byte-identity.
//! * **`<out>.metrics.jsonl`** — per-job observability metrics
//!   ([`JobMetrics`]: fabric utilization, arbitration contention, TG
//!   state residency, semaphore counters). A sidecar like the timings:
//!   windowed samples may differ with cycle skipping, so they must not
//!   enter the canonical file. `ntg-report` joins it with the canonical
//!   file by job id.
//!
//! The header records a fingerprint of the expanded campaign
//! ([`CampaignSpec::fingerprint`](crate::CampaignSpec::fingerprint)), so
//! a partial file from a *different* spec is rejected instead of being
//! silently merged.

use crate::json::Json;

/// The first line of every result file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignHeader {
    /// Campaign name (from the spec).
    pub name: String,
    /// [`CampaignSpec::fingerprint`](crate::CampaignSpec::fingerprint)
    /// of the producing spec.
    pub fingerprint: u64,
    /// Number of jobs in the expanded campaign.
    pub jobs: usize,
}

impl CampaignHeader {
    /// Renders the header line (no trailing newline).
    pub fn render(&self) -> String {
        Json::Obj(vec![
            ("campaign".into(), Json::Str(self.name.clone())),
            (
                "fingerprint".into(),
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("jobs".into(), Json::Int(self.jobs as i64)),
        ])
        .render()
    }

    /// Parses a header line.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = Json::parse(line)?;
        let name = v
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or("header: missing `campaign`")?
            .to_string();
        let fingerprint = v
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("header: missing or malformed `fingerprint`")?;
        let jobs = v
            .get("jobs")
            .and_then(Json::as_u64)
            .ok_or("header: missing `jobs`")? as usize;
        Ok(Self {
            name,
            fingerprint,
            jobs,
        })
    }
}

/// The outcome of one job.
///
/// Everything except [`wall_secs`](Self::wall_secs) is deterministic (a
/// pure function of the spec) and appears in the canonical JSONL line;
/// wall time goes to the timings sidecar only.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job id (expansion order).
    pub id: usize,
    /// The job key, e.g. `mp_matrix:16|4P|xpipes|tg|reactive`.
    pub key: String,
    /// Workload spec string.
    pub workload: String,
    /// Core count.
    pub cores: usize,
    /// Interconnect under evaluation.
    pub interconnect: String,
    /// Master kind (`cpu` / `tg` / `stochastic`).
    pub master: String,
    /// Translation mode for TG jobs.
    pub mode: Option<String>,
    /// The job's derived seed.
    pub seed: u64,
    /// Whether every master halted and traffic drained within the bound.
    pub completed: bool,
    /// System completion time in cycles (the paper's "cumulative
    /// execution time"); `None` if some master never halted.
    pub cycles: Option<u64>,
    /// Cycles actually simulated.
    pub sim_cycles: u64,
    /// Transactions the interconnect carried.
    pub transactions: u64,
    /// Mean of the interconnect's latency metric, if recorded.
    pub latency_mean: Option<f64>,
    /// Max of the interconnect's latency metric, if recorded.
    pub latency_max: Option<u64>,
    /// Offered injection rate in packets/cycle/master (synthetic jobs
    /// only): packets divided by the span of the back-pressure-blind
    /// schedule. Deterministic, hence canonical.
    pub offered_rate: Option<f64>,
    /// Accepted injection rate in packets/cycle/master (synthetic jobs
    /// only): the same packets divided by the span actually needed to
    /// inject them. `accepted < offered` flags a saturated point.
    pub accepted_rate: Option<f64>,
    /// Golden-model check outcome (`None` where not applicable — TG and
    /// stochastic runs of workloads without a memory image, errors).
    pub verified: Option<bool>,
    /// Completion-time error vs the CPU reference job with the same
    /// (workload, cores, interconnect) in this campaign, in percent.
    /// Filled at finalise; `None` when there is no reference.
    pub error_pct: Option<f64>,
    /// Whether this job's reference trace came from the campaign cache.
    /// `None` for jobs that use no trace (CPU runs). Normalised at
    /// finalise to the structural value — `Some(false)` marks the
    /// lowest-id successful consumer (the designated builder) — so the
    /// canonical file does not depend on worker scheduling.
    pub trace_cache_hit: Option<bool>,
    /// Whether this job's TG binaries came from the campaign cache.
    /// `None` for jobs that replay no TG image. Normalised at finalise
    /// like [`Self::trace_cache_hit`].
    pub image_cache_hit: Option<bool>,
    /// Job-level failure (build/translate error or worker panic). A
    /// failed job still produces a line, so campaigns always account for
    /// every id.
    pub error: Option<String>,
    /// Host wall-clock seconds (minimum over repeats). **Not** part of
    /// the canonical line.
    pub wall_secs: f64,
    /// Cycles fast-forwarded by event-horizon skipping. Goes to the
    /// timings sidecar with [`wall_secs`](Self::wall_secs): skipping is
    /// a host-side optimisation, so its split is **not** canonical.
    pub skipped_cycles: u64,
    /// Cycles simulated tick by tick. Timings sidecar only, like
    /// [`skipped_cycles`](Self::skipped_cycles).
    pub ticked_cycles: u64,
    /// Component-cycles the engine actually executed — with O(active)
    /// scheduling, only woken components count per ticked cycle.
    /// Timings sidecar only, like the skip split.
    pub visited_component_cycles: u64,
    /// `components × cycles`, the dense-scan denominator for
    /// [`visited_component_cycles`](Self::visited_component_cycles).
    pub total_component_cycles: u64,
    /// Observability metrics for this job. **Not** part of the
    /// canonical line; written to the `.metrics.jsonl` sidecar.
    pub metrics: Option<JobMetrics>,
}

/// Per-job observability metrics, collected by the platform's opt-in
/// metrics layer and written to the `.metrics.jsonl` sidecar.
///
/// Non-canonical by design: windowed series attribute skipped cycle
/// stretches to their first cycle, so byte content may differ between
/// cycle-skipping on/off even though every *counter* is exact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobMetrics {
    /// Cycles the fabric spent occupied carrying traffic.
    pub fabric_utilization_cycles: u64,
    /// Lost arbitration rounds across the fabric.
    pub conflicts: u64,
    /// Grant-latency samples.
    pub grant_wait_count: u64,
    /// Sum of grant latencies in cycles.
    pub grant_wait_sum: u64,
    /// Worst grant latency in cycles.
    pub grant_wait_max: u64,
    /// Per-master transactions granted.
    pub link_grants: Vec<u64>,
    /// Per-master cycles stalled awaiting grant.
    pub link_stall_cycles: Vec<u64>,
    /// Per-master fabric-occupancy cycles.
    pub link_busy_cycles: Vec<u64>,
    /// Per-master programmed-idle cycles (TG masters; 0 otherwise).
    pub master_idle_cycles: Vec<u64>,
    /// Per-master blocked-on-interconnect cycles (TG masters; 0
    /// otherwise) — the SEMCHK-poll / memory-wait state residency.
    pub master_wait_cycles: Vec<u64>,
    /// Successful semaphore acquisitions.
    pub sem_acquisitions: u64,
    /// Failed semaphore polls.
    pub sem_failed_polls: u64,
    /// Semaphore releases.
    pub sem_releases: u64,
    /// Width in cycles of each busy window.
    pub busy_window_cycles: u64,
    /// Fabric-busy cycles per window (time-resolved utilization).
    pub busy_windows: Vec<u64>,
}

impl JobMetrics {
    /// Renders one `.metrics.jsonl` line for job `id`/`key` (no
    /// trailing newline).
    pub fn render_line(&self, id: usize, key: &str) -> String {
        fn ints(v: &[u64]) -> Json {
            Json::Arr(v.iter().map(|&x| Json::Int(x as i64)).collect())
        }
        Json::Obj(vec![
            ("id".into(), Json::Int(id as i64)),
            ("key".into(), Json::Str(key.into())),
            (
                "fabric_utilization_cycles".into(),
                Json::Int(self.fabric_utilization_cycles as i64),
            ),
            ("conflicts".into(), Json::Int(self.conflicts as i64)),
            (
                "grant_wait_count".into(),
                Json::Int(self.grant_wait_count as i64),
            ),
            (
                "grant_wait_sum".into(),
                Json::Int(self.grant_wait_sum as i64),
            ),
            (
                "grant_wait_max".into(),
                Json::Int(self.grant_wait_max as i64),
            ),
            ("link_grants".into(), ints(&self.link_grants)),
            ("link_stall_cycles".into(), ints(&self.link_stall_cycles)),
            ("link_busy_cycles".into(), ints(&self.link_busy_cycles)),
            ("master_idle_cycles".into(), ints(&self.master_idle_cycles)),
            ("master_wait_cycles".into(), ints(&self.master_wait_cycles)),
            (
                "sem_acquisitions".into(),
                Json::Int(self.sem_acquisitions as i64),
            ),
            (
                "sem_failed_polls".into(),
                Json::Int(self.sem_failed_polls as i64),
            ),
            ("sem_releases".into(), Json::Int(self.sem_releases as i64)),
            (
                "busy_window_cycles".into(),
                Json::Int(self.busy_window_cycles as i64),
            ),
            ("busy_windows".into(), ints(&self.busy_windows)),
        ])
        .render()
    }

    /// Parses a `.metrics.jsonl` line into `(id, key, metrics)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn parse_line(line: &str) -> Result<(usize, String, Self), String> {
        let v = Json::parse(line)?;
        let u = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("metrics: missing `{k}`"))
        };
        let arr = |k: &str| -> Result<Vec<u64>, String> {
            match v.get(k) {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|j| {
                        j.as_u64()
                            .ok_or_else(|| format!("metrics: bad `{k}` entry"))
                    })
                    .collect(),
                _ => Err(format!("metrics: missing `{k}`")),
            }
        };
        let id = u("id")? as usize;
        let key = v
            .get("key")
            .and_then(Json::as_str)
            .ok_or("metrics: missing `key`")?
            .to_string();
        Ok((
            id,
            key,
            Self {
                fabric_utilization_cycles: u("fabric_utilization_cycles")?,
                conflicts: u("conflicts")?,
                grant_wait_count: u("grant_wait_count")?,
                grant_wait_sum: u("grant_wait_sum")?,
                grant_wait_max: u("grant_wait_max")?,
                link_grants: arr("link_grants")?,
                link_stall_cycles: arr("link_stall_cycles")?,
                link_busy_cycles: arr("link_busy_cycles")?,
                master_idle_cycles: arr("master_idle_cycles")?,
                master_wait_cycles: arr("master_wait_cycles")?,
                sem_acquisitions: u("sem_acquisitions")?,
                sem_failed_polls: u("sem_failed_polls")?,
                sem_releases: u("sem_releases")?,
                busy_window_cycles: u("busy_window_cycles")?,
                busy_windows: arr("busy_windows")?,
            },
        ))
    }
}

impl JobResult {
    /// A result line for a job that failed before producing a report.
    pub fn failed(job: &crate::JobSpec, error: String) -> Self {
        Self {
            id: job.id,
            key: job.key(),
            workload: job.workload.to_string(),
            cores: job.cores,
            interconnect: job.interconnect.to_string(),
            master: job.master.to_string(),
            mode: (job.mode.is_some() || job.synth.is_some()).then(|| job.mode_label()),
            seed: job.seed,
            completed: false,
            cycles: None,
            sim_cycles: 0,
            transactions: 0,
            latency_mean: None,
            latency_max: None,
            offered_rate: None,
            accepted_rate: None,
            verified: None,
            error_pct: None,
            trace_cache_hit: None,
            image_cache_hit: None,
            error: Some(error),
            wall_secs: 0.0,
            skipped_cycles: 0,
            ticked_cycles: 0,
            visited_component_cycles: 0,
            total_component_cycles: 0,
            metrics: None,
        }
    }

    /// Renders the canonical JSONL line (no trailing newline, fixed
    /// field order, no wall time).
    pub fn render_line(&self) -> String {
        fn opt_u64(v: Option<u64>) -> Json {
            v.map(|x| Json::Int(x as i64)).unwrap_or(Json::Null)
        }
        fn opt_f64(v: Option<f64>) -> Json {
            v.map(Json::Float).unwrap_or(Json::Null)
        }
        fn opt_bool(v: Option<bool>) -> Json {
            v.map(Json::Bool).unwrap_or(Json::Null)
        }
        fn opt_str(v: &Option<String>) -> Json {
            v.as_ref()
                .map(|s| Json::Str(s.clone()))
                .unwrap_or(Json::Null)
        }
        Json::Obj(vec![
            ("id".into(), Json::Int(self.id as i64)),
            ("key".into(), Json::Str(self.key.clone())),
            ("workload".into(), Json::Str(self.workload.clone())),
            ("cores".into(), Json::Int(self.cores as i64)),
            ("interconnect".into(), Json::Str(self.interconnect.clone())),
            ("master".into(), Json::Str(self.master.clone())),
            ("mode".into(), opt_str(&self.mode)),
            ("seed".into(), Json::Str(format!("{:016x}", self.seed))),
            ("completed".into(), Json::Bool(self.completed)),
            ("cycles".into(), opt_u64(self.cycles)),
            ("sim_cycles".into(), Json::Int(self.sim_cycles as i64)),
            ("transactions".into(), Json::Int(self.transactions as i64)),
            ("latency_mean".into(), opt_f64(self.latency_mean)),
            ("latency_max".into(), opt_u64(self.latency_max)),
            ("offered_rate".into(), opt_f64(self.offered_rate)),
            ("accepted_rate".into(), opt_f64(self.accepted_rate)),
            ("verified".into(), opt_bool(self.verified)),
            ("error_pct".into(), opt_f64(self.error_pct)),
            ("trace_cache_hit".into(), opt_bool(self.trace_cache_hit)),
            ("image_cache_hit".into(), opt_bool(self.image_cache_hit)),
            ("error".into(), opt_str(&self.error)),
        ])
        .render()
    }

    /// Parses a canonical line back into a result.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let v = Json::parse(line)?;
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("result: missing `{k}`"))
        };
        let opt_str = |k: &str| v.get(k).and_then(Json::as_str).map(str::to_string);
        let opt_bool = |k: &str| v.get(k).and_then(Json::as_bool);
        let opt_u64 = |k: &str| v.get(k).and_then(Json::as_u64);
        Ok(Self {
            id: opt_u64("id").ok_or("result: missing `id`")? as usize,
            key: str_field("key")?,
            workload: str_field("workload")?,
            cores: opt_u64("cores").ok_or("result: missing `cores`")? as usize,
            interconnect: str_field("interconnect")?,
            master: str_field("master")?,
            mode: opt_str("mode"),
            seed: v
                .get("seed")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or("result: missing or malformed `seed`")?,
            completed: opt_bool("completed").ok_or("result: missing `completed`")?,
            cycles: opt_u64("cycles"),
            sim_cycles: opt_u64("sim_cycles").ok_or("result: missing `sim_cycles`")?,
            transactions: opt_u64("transactions").ok_or("result: missing `transactions`")?,
            latency_mean: v.get("latency_mean").and_then(Json::as_f64),
            latency_max: opt_u64("latency_max"),
            offered_rate: v.get("offered_rate").and_then(Json::as_f64),
            accepted_rate: v.get("accepted_rate").and_then(Json::as_f64),
            verified: opt_bool("verified"),
            error_pct: v.get("error_pct").and_then(Json::as_f64),
            trace_cache_hit: opt_bool("trace_cache_hit"),
            image_cache_hit: opt_bool("image_cache_hit"),
            error: opt_str("error"),
            wall_secs: 0.0,
            skipped_cycles: 0,
            ticked_cycles: 0,
            visited_component_cycles: 0,
            total_component_cycles: 0,
            metrics: None,
        })
    }
}

/// A loaded result file: its header and the parsed result lines.
#[derive(Debug, Clone)]
pub struct LoadedResults {
    /// The header line.
    pub header: CampaignHeader,
    /// The result lines, in file order.
    pub results: Vec<JobResult>,
    /// Number of lines skipped as unparsable (only in lenient mode —
    /// e.g. a torn final write in a journal).
    pub skipped: usize,
}

/// Parses a result file's contents.
///
/// `lenient` skips unparsable *result* lines (a torn final journal
/// write) instead of failing; the header must always parse.
///
/// # Errors
///
/// Returns a description of the first malformation (in strict mode) or
/// of a missing/invalid header.
pub fn parse_results(text: &str, lenient: bool) -> Result<LoadedResults, String> {
    let mut lines = text.lines();
    let header_line = lines.next().ok_or("empty result file")?;
    let header = CampaignHeader::parse(header_line)?;
    let mut results = Vec::new();
    let mut skipped = 0;
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match JobResult::parse_line(line) {
            Ok(r) => results.push(r),
            Err(e) if lenient => {
                let _ = e;
                skipped += 1;
            }
            Err(e) => return Err(format!("line {}: {e}", i + 2)),
        }
    }
    Ok(LoadedResults {
        header,
        results,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobResult {
        JobResult {
            id: 3,
            key: "mp_matrix:16|4P|xpipes|tg|reactive".into(),
            workload: "mp_matrix:16".into(),
            cores: 4,
            interconnect: "xpipes".into(),
            master: "tg".into(),
            mode: Some("reactive".into()),
            seed: 0xdead_beef_dead_beef,
            completed: true,
            cycles: Some(1_234_567),
            sim_cycles: 1_234_580,
            transactions: 9_876,
            latency_mean: Some(11.5),
            latency_max: Some(96),
            offered_rate: None,
            accepted_rate: None,
            verified: Some(true),
            error_pct: Some(3.25),
            trace_cache_hit: Some(true),
            image_cache_hit: Some(false),
            error: None,
            wall_secs: 0.0,
            skipped_cycles: 0,
            ticked_cycles: 0,
            visited_component_cycles: 0,
            total_component_cycles: 0,
            metrics: None,
        }
    }

    #[test]
    fn result_line_round_trips() {
        let r = sample();
        let line = r.render_line();
        assert_eq!(JobResult::parse_line(&line).unwrap(), r);
        // Rendering is a fixpoint (byte-identity across re-finalise).
        assert_eq!(JobResult::parse_line(&line).unwrap().render_line(), line);
    }

    #[test]
    fn injection_rates_round_trip() {
        let mut r = sample();
        r.master = "synthetic".into();
        r.mode = Some("uniform+bernoulli@0.05/4".into());
        r.offered_rate = Some(0.0497);
        r.accepted_rate = Some(0.031);
        let line = r.render_line();
        assert_eq!(JobResult::parse_line(&line).unwrap(), r);
        assert_eq!(JobResult::parse_line(&line).unwrap().render_line(), line);
    }

    #[test]
    fn nulls_round_trip() {
        let mut r = sample();
        r.mode = None;
        r.cycles = None;
        r.latency_mean = None;
        r.latency_max = None;
        r.verified = None;
        r.error_pct = None;
        r.trace_cache_hit = None;
        r.image_cache_hit = None;
        r.error = Some("boom".into());
        let line = r.render_line();
        assert_eq!(JobResult::parse_line(&line).unwrap(), r);
    }

    #[test]
    fn header_round_trips() {
        let h = CampaignHeader {
            name: "table2".into(),
            fingerprint: 0x0123_4567_89ab_cdef,
            jobs: 24,
        };
        assert_eq!(CampaignHeader::parse(&h.render()).unwrap(), h);
    }

    #[test]
    fn lenient_parse_skips_torn_tail() {
        let h = CampaignHeader {
            name: "t".into(),
            fingerprint: 1,
            jobs: 2,
        };
        let good = sample().render_line();
        let torn = &good[..good.len() / 2];
        let text = format!("{}\n{good}\n{torn}", h.render());
        let loaded = parse_results(&text, true).unwrap();
        assert_eq!(loaded.results.len(), 1);
        assert_eq!(loaded.skipped, 1);
        assert!(parse_results(&text, false).is_err());
    }

    #[test]
    fn wall_time_is_not_in_the_canonical_line() {
        let mut r = sample();
        r.wall_secs = 1.0;
        let a = r.render_line();
        r.wall_secs = 99.0;
        assert_eq!(r.render_line(), a);
    }

    #[test]
    fn skip_split_is_not_in_the_canonical_line() {
        let mut r = sample();
        let a = r.render_line();
        r.skipped_cycles = 1_000_000;
        r.ticked_cycles = 234_580;
        assert_eq!(r.render_line(), a);
    }

    #[test]
    fn metrics_are_not_in_the_canonical_line() {
        let mut r = sample();
        let a = r.render_line();
        r.metrics = Some(JobMetrics {
            fabric_utilization_cycles: 42,
            conflicts: 7,
            ..JobMetrics::default()
        });
        assert_eq!(r.render_line(), a);
    }

    #[test]
    fn metrics_line_round_trips() {
        let m = JobMetrics {
            fabric_utilization_cycles: 123_456,
            conflicts: 78,
            grant_wait_count: 90,
            grant_wait_sum: 450,
            grant_wait_max: 17,
            link_grants: vec![40, 50],
            link_stall_cycles: vec![12, 30],
            link_busy_cycles: vec![300, 280],
            master_idle_cycles: vec![1_000, 0],
            master_wait_cycles: vec![420, 9],
            sem_acquisitions: 5,
            sem_failed_polls: 33,
            sem_releases: 5,
            busy_window_cycles: 1024,
            busy_windows: vec![10, 20, 0, 5],
        };
        let line = m.render_line(7, "mp_matrix:16|2P|amba|tg|reactive");
        let (id, key, parsed) = JobMetrics::parse_line(&line).unwrap();
        assert_eq!(id, 7);
        assert_eq!(key, "mp_matrix:16|2P|amba|tg|reactive");
        assert_eq!(parsed, m);
        // Fixpoint: re-rendering reproduces the same bytes.
        assert_eq!(parsed.render_line(id, &key), line);
    }
}
