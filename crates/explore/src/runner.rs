//! The campaign executor: a worker pool over expanded jobs.
//!
//! Parallelism is across *configurations*, never inside a simulation:
//! each in-process worker thread builds, runs and drops whole
//! platforms. A [`Platform`] owns its entire component graph through
//! the link arena and is a plain `Send` value (compile-asserted in
//! `ntg-platform`), so workers are ordinary scoped threads — no
//! process sharding needed for parallelism. All `--threads N` workers
//! share *one* in-memory [`ArtifactCache`] (hit/miss counters are
//! atomics) backed by *one* open [`DiskStore`](crate::store::DiskStore)
//! handle, so an artifact is built or loaded at most once per
//! invocation no matter how many workers want it. Shared state beyond
//! that is limited to the work queue (an atomic index), the collected
//! results and the journal file.
//!
//! # Determinism contract
//!
//! The canonical result file is a pure function of the
//! [`CampaignSpec`]: job ids, seeds and every recorded metric are
//! derived from the spec alone, and the file is written sorted by job
//! id at finalise. Worker count and scheduling order affect only wall
//! time (reported in the timings sidecar) — `--threads 1` and
//! `--threads 8` produce byte-identical canonical files.

use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ntg_core::rng::derive_seed;
use ntg_core::{assemble, TraceTranslator, TranslatorConfig};
use ntg_platform::{MasterReport, Platform, PlatformBuilder, RunReport};
use ntg_workloads::synthetic::build_synthetic_platform;
use ntg_workloads::Workload;

use crate::cache::{ArtifactCache, CacheSnapshot, TraceArtifact};
use crate::json::Json;
use crate::result::{parse_results, CampaignHeader, JobMetrics, JobResult};
use crate::spec::{CampaignSpec, JobSpec, MasterChoice};

/// How to execute a campaign.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads. `0` means auto-detect: one worker per available
    /// hardware thread (`std::thread::available_parallelism`).
    pub threads: usize,
    /// Canonical output path; `None` keeps everything in memory (no
    /// journal, no resume — used by library frontends and tests).
    pub out: Option<PathBuf>,
    /// Resume from an existing journal or canonical file at `out`:
    /// results with a matching campaign fingerprint are kept and only
    /// missing (or previously failed) jobs run.
    pub resume: bool,
    /// Suppress per-job progress lines on stderr.
    pub quiet: bool,
    /// Base directory of the persistent artifact store; `None` keeps
    /// the cache in-memory only (every invocation re-traces).
    pub store: Option<PathBuf>,
    /// Run only this shard: `Some((i, n))` with `1 ≤ i ≤ n` executes
    /// the jobs whose `id % n == i - 1` and writes a *shard file*
    /// (header + that shard's lines). [`merge_shards`] reassembles the
    /// full canonical file.
    pub shard: Option<(usize, usize)>,
    /// Worker threads *inside* each simulation: `>= 2` partitions every
    /// canonical-mesh xpipes platform into link-range bands advanced in
    /// cycle lockstep ([`Platform::run_with_threads`]); other fabrics
    /// fall back to the serial engine. Orthogonal to
    /// [`threads`](Self::threads) (parallelism across jobs) and, like
    /// it, affects only wall time: results are bit-identical.
    pub sim_threads: usize,
    /// Remote artifact tier attached behind the disk store. Ignored
    /// without [`store`](Self::store) — the remote tier only exchanges
    /// framed entries with a local disk level, never feeds the
    /// in-memory cache directly.
    pub remote: Option<std::sync::Arc<dyn crate::store::RemoteTier>>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            out: None,
            resume: false,
            quiet: true,
            store: None,
            shard: None,
            sim_threads: 1,
            remote: None,
        }
    }
}

/// What a finished campaign hands back.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The header written to (or that would be written to) the file.
    pub header: CampaignHeader,
    /// All job results, sorted by id, `error_pct` filled in.
    pub results: Vec<JobResult>,
    /// Artifact-cache counters for this invocation (resumed jobs do not
    /// touch the cache).
    pub cache: CacheSnapshot,
    /// Jobs executed in this invocation.
    pub executed: usize,
    /// Jobs adopted from a previous partial/canonical file.
    pub resumed: usize,
    /// Total wall-clock seconds of this invocation.
    pub wall_secs: f64,
}

/// Runs a campaign to completion.
///
/// # Errors
///
/// Returns a message for infrastructure failures (unwritable output,
/// corrupt resume header). Per-job failures do *not* fail the campaign;
/// they are recorded in that job's [`JobResult::error`].
pub fn run_campaign(spec: &CampaignSpec, opts: &RunOptions) -> Result<CampaignOutcome, String> {
    let started = Instant::now();
    if let Some((i, n)) = opts.shard {
        if n == 0 || i == 0 || i > n {
            return Err(format!("invalid shard {i}/{n} (need 1 <= i <= n)"));
        }
    }
    // Round-robin shard membership: interleaving spreads each
    // workload's expensive reference runs across shards instead of
    // concentrating them in one.
    let in_shard = |id: usize| opts.shard.is_none_or(|(i, n)| id % n == i - 1);
    let jobs = spec.expand();
    let header = CampaignHeader {
        name: spec.name.clone(),
        fingerprint: spec.fingerprint(),
        jobs: jobs.len(),
    };

    // Adopt prior results when resuming.
    let mut done: Vec<Option<JobResult>> = vec![None; jobs.len()];
    let mut resumed = 0;
    if opts.resume {
        if let Some(out) = &opts.out {
            for r in load_prior_results(out, &header, &jobs) {
                let id = r.id;
                if done[id].is_none() && in_shard(id) {
                    resumed += 1;
                    done[id] = Some(r);
                }
            }
        }
    }
    let pending: Vec<&JobSpec> = jobs
        .iter()
        .filter(|j| done[j.id].is_none() && in_shard(j.id))
        .collect();

    // Open the journal (header first if the file is new/empty).
    let journal = match &opts.out {
        Some(out) => {
            let path = partial_path(out);
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
            }
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| format!("open {}: {e}", path.display()))?;
            let empty = f
                .metadata()
                .map_err(|e| format!("stat {}: {e}", path.display()))?
                .len()
                == 0;
            if empty {
                writeln!(f, "{}", header.render())
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
            }
            Some(Mutex::new(f))
        }
        None => None,
    };

    let store = match &opts.store {
        Some(base) => {
            let mut store = crate::store::DiskStore::open(base)?;
            if let Some(remote) = &opts.remote {
                store = store.with_remote(remote.clone());
            }
            Some(std::sync::Arc::new(store))
        }
        None => None,
    };
    let cache = ArtifactCache::with_store(store);
    let next = AtomicUsize::new(0);
    let fresh: Mutex<Vec<JobResult>> = Mutex::new(Vec::new());
    let progress = AtomicUsize::new(resumed);
    let selected_total = jobs.iter().filter(|j| in_shard(j.id)).count();

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        opts.threads
    };
    let workers = threads.clamp(1, pending.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = pending.get(i) else { break };
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_job(job, spec, &cache, opts.sim_threads)
                }))
                .unwrap_or_else(|p| {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".into());
                    JobResult::failed(job, format!("panic: {msg}"))
                });
                let n = progress.fetch_add(1, Ordering::Relaxed) + 1;
                if !opts.quiet {
                    eprintln!("[{n}/{selected_total}] {}", describe(&result));
                }
                if let Some(j) = &journal {
                    let mut f = j.lock().expect("journal poisoned");
                    // Journal write failures must not lose the result;
                    // the in-memory copy still reaches the canonical
                    // file.
                    let _ = writeln!(f, "{}", result.render_line());
                    let _ = f.flush();
                }
                fresh.lock().expect("results poisoned").push(result);
            });
        }
    });

    let fresh = fresh.into_inner().expect("results poisoned");
    let executed = fresh.len();
    for r in fresh {
        let id = r.id;
        done[id] = Some(r);
    }
    let mut results: Vec<JobResult> = done
        .into_iter()
        .enumerate()
        .filter(|&(id, _)| in_shard(id))
        .map(|(id, r)| {
            r.unwrap_or_else(|| JobResult::failed(&jobs[id], "job was never executed".into()))
        })
        .collect();
    fill_error_pct(&mut results);
    fill_cache_flags(&mut results);

    let wall_secs = started.elapsed().as_secs_f64();
    if let Some(out) = &opts.out {
        write_canonical(out, &header, &results)?;
        write_timings(out, &header, &results, opts, wall_secs)?;
        write_metrics(out, &header, &results)?;
        let _ = fs::remove_file(partial_path(out));
    }

    Ok(CampaignOutcome {
        header,
        results,
        cache: cache.snapshot(),
        executed,
        resumed,
        wall_secs,
    })
}

/// `<out>.partial.jsonl` — the append-only journal next to `out`.
pub fn partial_path(out: &Path) -> PathBuf {
    with_suffix(out, ".partial.jsonl")
}

/// `<out>.timings.jsonl` — the non-canonical wall-time sidecar.
pub fn timings_path(out: &Path) -> PathBuf {
    with_suffix(out, ".timings.jsonl")
}

/// `<out>.metrics.jsonl` — the non-canonical observability sidecar.
pub fn metrics_path(out: &Path) -> PathBuf {
    with_suffix(out, ".metrics.jsonl")
}

/// `<out>.shard-<i>-of-<n>` — the conventional per-shard output path
/// (used by `ntg-sweep --shard`; `merge_shards` accepts any paths).
pub fn shard_path(out: &Path, shard: (usize, usize)) -> PathBuf {
    with_suffix(out, &format!(".shard-{}-of-{}", shard.0, shard.1))
}

/// Collects the shard result files in `dir` for `merge_shards`:
/// regular files whose name contains `.shard-` and does not end in a
/// sidecar suffix (`.partial.jsonl`, `.timings.jsonl`,
/// `.metrics.jsonl`). Sorted by file name, so the merge input order —
/// and therefore any error message — is deterministic regardless of
/// directory enumeration order. (Merge output is order-independent
/// anyway: results are reassembled by job id.)
///
/// # Errors
///
/// Returns a message if `dir` is unreadable or holds no shard files.
pub fn collect_shard_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let sidecar = name.ends_with(".partial.jsonl")
            || name.ends_with(".timings.jsonl")
            || name.ends_with(".metrics.jsonl");
        if name.contains(".shard-") && !sidecar {
            files.push(path);
        }
    }
    if files.is_empty() {
        return Err(format!("no shard files in {}", dir.display()));
    }
    files.sort();
    Ok(files)
}

/// What [`merge_shards`] merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSummary {
    /// The shared campaign header.
    pub header: CampaignHeader,
    /// Shard files consumed.
    pub shards: usize,
    /// Total job lines in the merged canonical file.
    pub jobs: usize,
}

/// Merges shard result files into the canonical campaign file at
/// `out` — byte-identical to what a single-process run of the same
/// spec would have written.
///
/// Every shard must carry the same header (name, fingerprint, job
/// count); together the shards must cover every job id exactly once
/// (duplicates across files are tolerated only if the lines agree on
/// the derived-field-independent content). The cross-shard derived
/// fields — `error_pct` (needs the CPU reference, possibly in another
/// shard) and the structural cache flags — are recomputed here over
/// the union, which is what makes byte-identity with an unsharded run
/// possible.
///
/// # Errors
///
/// Returns a message on unreadable/unparsable files, header
/// mismatches, conflicting duplicates, missing ids, or an unwritable
/// output.
pub fn merge_shards(shard_files: &[PathBuf], out: &Path) -> Result<MergeSummary, String> {
    if shard_files.is_empty() {
        return Err("no shard files to merge".into());
    }
    let mut header: Option<CampaignHeader> = None;
    let mut by_id: Vec<Option<JobResult>> = Vec::new();
    for path in shard_files {
        let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let loaded = parse_results(&text, false).map_err(|e| format!("{}: {e}", path.display()))?;
        match &header {
            None => {
                by_id = vec![None; loaded.header.jobs];
                header = Some(loaded.header.clone());
            }
            Some(h) if *h != loaded.header => {
                return Err(format!(
                    "{}: header mismatch (campaign `{}` fingerprint {:016x} vs `{}` {:016x})",
                    path.display(),
                    loaded.header.name,
                    loaded.header.fingerprint,
                    h.name,
                    h.fingerprint
                ));
            }
            Some(_) => {}
        }
        for r in loaded.results {
            let slot = by_id
                .get_mut(r.id)
                .ok_or_else(|| format!("{}: job id {} out of range", path.display(), r.id))?;
            match slot {
                None => *slot = Some(r),
                // Shard-local derived fields may differ; the job's own
                // measurements must not.
                Some(prev) if conflicts(prev, &r) => {
                    return Err(format!(
                        "{}: job {} ({}) appears in multiple shards with conflicting results",
                        path.display(),
                        r.id,
                        r.key
                    ));
                }
                Some(_) => {}
            }
        }
    }
    let header = header.expect("at least one shard file");
    let missing: Vec<usize> = by_id
        .iter()
        .enumerate()
        .filter_map(|(id, r)| r.is_none().then_some(id))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "shards do not cover the campaign: {} of {} jobs missing (first missing id {})",
            missing.len(),
            by_id.len(),
            missing[0]
        ));
    }
    let mut results: Vec<JobResult> = by_id.into_iter().flatten().collect();
    fill_error_pct(&mut results);
    fill_cache_flags(&mut results);
    write_canonical(out, &header, &results)?;
    Ok(MergeSummary {
        jobs: results.len(),
        shards: shard_files.len(),
        header,
    })
}

/// Whether two lines for the same job id disagree on anything other
/// than the finalise-derived fields (`error_pct`, cache flags).
fn conflicts(a: &JobResult, b: &JobResult) -> bool {
    let strip = |r: &JobResult| {
        let mut r = r.clone();
        r.error_pct = None;
        r.trace_cache_hit = None;
        r.image_cache_hit = None;
        r
    };
    strip(a) != strip(b)
}

fn with_suffix(out: &Path, suffix: &str) -> PathBuf {
    let mut s = out.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

/// Reads prior results from the journal (preferred) or the canonical
/// file, keeping only lines that belong to this exact campaign: header
/// fingerprint matches, id is in range, key matches the expanded job,
/// and the job did not fail (failed jobs rerun on resume).
fn load_prior_results(out: &Path, header: &CampaignHeader, jobs: &[JobSpec]) -> Vec<JobResult> {
    let mut adopted = Vec::new();
    for path in [partial_path(out), out.to_path_buf()] {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let Ok(loaded) = parse_results(&text, true) else {
            continue;
        };
        if loaded.header.fingerprint != header.fingerprint {
            continue;
        }
        for r in loaded.results {
            let belongs = jobs.get(r.id).is_some_and(|j| j.key() == r.key);
            if belongs && r.error.is_none() {
                adopted.push(r);
            }
        }
    }
    adopted
}

/// Fills `error_pct` of every non-CPU result from the CPU reference
/// with the same (workload, cores, interconnect) in the same campaign.
/// Recomputed on every finalise (including resume), so the canonical
/// file never depends on which invocation produced a line.
fn fill_error_pct(results: &mut [JobResult]) {
    let refs: Vec<(String, usize, String, u64)> = results
        .iter()
        .filter(|r| r.master == "cpu")
        .filter_map(|r| {
            r.cycles
                .map(|c| (r.workload.clone(), r.cores, r.interconnect.clone(), c))
        })
        .collect();
    for r in results.iter_mut() {
        r.error_pct = if r.master == "cpu" {
            None
        } else {
            r.cycles.and_then(|c| {
                refs.iter()
                    .find(|(w, p, ic, _)| {
                        *w == r.workload && *p == r.cores && *ic == r.interconnect
                    })
                    .map(|&(_, _, _, cpu)| (c as f64 - cpu as f64).abs() / cpu as f64 * 100.0)
            })
        };
    }
}

/// Normalises the per-result cache flags to their *structural* meaning:
/// the lowest-id successful job consuming an artifact is its designated
/// builder (`Some(false)`); later consumers record `Some(true)`. The
/// runtime [`ArtifactCache`] counters report which jobs actually built
/// what, but that depends on worker scheduling — recomputing the flags
/// from job order at every finalise keeps the canonical file a pure
/// function of the spec. A campaign's trace interconnect is fixed, so
/// `(workload, cores)` identifies a trace and `(workload, cores, mode)`
/// a translated TG image set.
fn fill_cache_flags(results: &mut [JobResult]) {
    let mut traces_seen: Vec<(String, usize)> = Vec::new();
    let mut images_seen: Vec<(String, usize, Option<String>)> = Vec::new();
    for r in results.iter_mut() {
        // CPU jobs consume no trace; synthetic jobs consume no artifacts
        // at all (patterns are generated, not translated).
        if r.master == "cpu" || r.master == "synthetic" || r.error.is_some() {
            r.trace_cache_hit = None;
            r.image_cache_hit = None;
            continue;
        }
        let tkey = (r.workload.clone(), r.cores);
        r.trace_cache_hit = Some(traces_seen.contains(&tkey));
        if !traces_seen.contains(&tkey) {
            traces_seen.push(tkey);
        }
        r.image_cache_hit = if r.master == "tg" {
            let ikey = (r.workload.clone(), r.cores, r.mode.clone());
            let hit = images_seen.contains(&ikey);
            if !hit {
                images_seen.push(ikey);
            }
            Some(hit)
        } else {
            None
        };
    }
}

fn write_canonical(
    out: &Path,
    header: &CampaignHeader,
    results: &[JobResult],
) -> Result<(), String> {
    let mut text = String::new();
    text.push_str(&header.render());
    text.push('\n');
    for r in results {
        text.push_str(&r.render_line());
        text.push('\n');
    }
    fs::write(out, text).map_err(|e| format!("write {}: {e}", out.display()))
}

fn write_timings(
    out: &Path,
    header: &CampaignHeader,
    results: &[JobResult],
    opts: &RunOptions,
    wall_secs: f64,
) -> Result<(), String> {
    let path = timings_path(out);
    let mut text = String::new();
    text.push_str(
        &Json::Obj(vec![
            ("campaign".into(), Json::Str(header.name.clone())),
            ("threads".into(), Json::Int(opts.threads as i64)),
            (
                "sim_threads".into(),
                Json::Int(opts.sim_threads.max(1) as i64),
            ),
            ("wall_secs".into(), Json::Float(wall_secs)),
        ])
        .render(),
    );
    text.push('\n');
    for r in results.iter().filter(|r| r.wall_secs > 0.0) {
        let mut fields = vec![
            ("id".into(), Json::Int(r.id as i64)),
            ("key".into(), Json::Str(r.key.clone())),
            ("wall_secs".into(), Json::Float(r.wall_secs)),
            ("skipped_cycles".into(), Json::Int(r.skipped_cycles as i64)),
            ("ticked_cycles".into(), Json::Int(r.ticked_cycles as i64)),
            (
                "visited_component_cycles".into(),
                Json::Int(r.visited_component_cycles as i64),
            ),
            (
                "total_component_cycles".into(),
                Json::Int(r.total_component_cycles as i64),
            ),
        ];
        // Injection rates ride along for synthetic jobs so saturation
        // can be eyeballed straight from the sidecar (they are also in
        // the canonical line — deterministic, unlike everything else
        // here).
        if let (Some(o), Some(a)) = (r.offered_rate, r.accepted_rate) {
            fields.push(("offered_rate".into(), Json::Float(o)));
            fields.push(("accepted_rate".into(), Json::Float(a)));
        }
        text.push_str(&Json::Obj(fields).render());
        text.push('\n');
    }
    fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))
}

fn write_metrics(out: &Path, header: &CampaignHeader, results: &[JobResult]) -> Result<(), String> {
    let path = metrics_path(out);
    let mut text = String::new();
    text.push_str(
        &Json::Obj(vec![
            ("campaign".into(), Json::Str(header.name.clone())),
            (
                "fingerprint".into(),
                Json::Str(format!("{:016x}", header.fingerprint)),
            ),
        ])
        .render(),
    );
    text.push('\n');
    for r in results {
        if let Some(m) = &r.metrics {
            text.push_str(&m.render_line(r.id, &r.key));
            text.push('\n');
        }
    }
    fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))
}

fn describe(r: &JobResult) -> String {
    match (&r.error, r.cycles) {
        (Some(e), _) => format!("{} FAILED: {e}", r.key),
        (None, Some(c)) => {
            let cache = match (r.trace_cache_hit, r.image_cache_hit) {
                (Some(t), Some(i)) => format!(
                    "  [trace {}, tg {}]",
                    if t { "cached" } else { "built" },
                    if i { "cached" } else { "built" }
                ),
                (Some(t), None) => {
                    format!("  [trace {}]", if t { "cached" } else { "built" })
                }
                _ => String::new(),
            };
            format!("{}  {c} cycles{cache}", r.key)
        }
        (None, None) => format!("{}  did not complete within the cycle bound", r.key),
    }
}

/// Runs one job, consulting the artifact cache for trace and TG-image
/// reuse. Never panics for modelled outcomes (cycle-bound hits, faults,
/// failed verification) — those are recorded in the result.
fn run_job(
    job: &JobSpec,
    spec: &CampaignSpec,
    cache: &ArtifactCache,
    sim_threads: usize,
) -> JobResult {
    match run_job_inner(job, spec, cache, sim_threads) {
        Ok(r) => r,
        Err(e) => JobResult::failed(job, e),
    }
}

fn run_job_inner(
    job: &JobSpec,
    spec: &CampaignSpec,
    cache: &ArtifactCache,
    sim_threads: usize,
) -> Result<JobResult, String> {
    match job.master {
        MasterChoice::Cpu => {
            let (report, verified) = run_repeats(job, sim_threads, |_| {
                job.workload
                    .build_platform(job.cores, job.interconnect, false)
                    .map_err(|e| format!("build: {e}"))
            })?;
            Ok(finish(job, report, verified, None, None))
        }
        MasterChoice::Tg => {
            let mode = job.mode.ok_or("TG job without a translation mode")?;
            let (artifact, trace_hit) = trace_artifact(job, spec, cache)?;
            let translator_cfg = TranslatorConfig {
                pollable: artifact.pollable.clone(),
                mode,
                loop_forever: false,
                poll_idle: 0,
            };
            let image_key = (
                job.workload,
                job.cores,
                spec.trace_interconnect,
                translator_cfg.cache_key(),
            );
            let (images, image_hit) = cache.images(&image_key, || {
                let translator = TraceTranslator::new(translator_cfg.clone());
                artifact
                    .traces
                    .iter()
                    .map(|t| {
                        let program = translator
                            .translate(t)
                            .map_err(|e| format!("translate: {e:?}"))?;
                        assemble(&program).map_err(|e| format!("assemble: {e:?}"))
                    })
                    .collect()
            })?;
            let (report, verified) = run_repeats(job, sim_threads, |_| {
                job.workload
                    .build_tg_platform(images.as_ref().clone(), job.interconnect, false)
                    .map_err(|e| format!("build: {e}"))
            })?;
            Ok(finish(
                job,
                report,
                verified,
                Some(trace_hit),
                Some(image_hit),
            ))
        }
        MasterChoice::Stochastic => {
            let (artifact, trace_hit) = trace_artifact(job, spec, cache)?;
            let (report, _) = run_repeats(job, sim_threads, |_| {
                let mut b = PlatformBuilder::new();
                b.interconnect(job.interconnect);
                for (core, cfg) in artifact.calibration.iter().enumerate() {
                    let mut cfg = cfg.clone();
                    cfg.seed = derive_seed(job.seed, core as u64);
                    b.add_stochastic(cfg);
                }
                job.workload.preload(&mut b, job.cores);
                b.build().map_err(|e| format!("build: {e}"))
            })?;
            // Stochastic traffic carries no program semantics; there is
            // no memory image to check.
            Ok(finish(job, report, None, Some(trace_hit), None))
        }
        MasterChoice::Synthetic => {
            let synth = job
                .synth
                .ok_or("synthetic job without a traffic descriptor")?;
            let Workload::Synthetic { packets } = job.workload else {
                return Err("synthetic masters pair only with the synthetic workload".into());
            };
            let (report, _) = run_repeats(job, sim_threads, |_| {
                build_synthetic_platform(
                    job.cores,
                    job.interconnect,
                    synth,
                    u64::from(packets.max(1)),
                    job.seed,
                )
                .map_err(|e| format!("build: {e}"))
            })?;
            // No trace, no image, no golden model: synthetic jobs consume
            // no cached artifacts, so both provenance flags stay None.
            Ok(finish(job, report, None, None, None))
        }
    }
}

/// Gets (or builds) the traced-reference artifact for this job's
/// (workload, cores) on the campaign's trace interconnect.
fn trace_artifact(
    job: &JobSpec,
    spec: &CampaignSpec,
    cache: &ArtifactCache,
) -> Result<(std::sync::Arc<TraceArtifact>, bool), String> {
    let key = (job.workload, job.cores, spec.trace_interconnect);
    cache.traces(&key, || {
        let mut p = job
            .workload
            .build_platform(job.cores, spec.trace_interconnect, true)
            .map_err(|e| format!("trace build: {e}"))?;
        let report = p.run(job.max_cycles);
        if !report.faults.is_empty() {
            return Err(format!("trace run faulted: {:?}", report.faults));
        }
        if !report.completed {
            return Err(format!("trace run hit the {}-cycle bound", job.max_cycles));
        }
        let ref_cycles = report.execution_time().ok_or("trace run never halted")?;
        let traces = p.traces();
        if traces.len() != job.cores {
            return Err("tracing was not recorded for every core".into());
        }
        let pollable = p.map().pollable_ranges();
        let ranges: Vec<(u32, u32)> = p.map().iter().map(|r| (r.base, r.size)).collect();
        let calibration = TraceArtifact::calibrate(&traces, p.clock().period_ns(), &ranges)?;
        Ok(TraceArtifact {
            traces,
            pollable,
            calibration,
            ref_cycles,
        })
    })
}

/// Builds and runs the job's platform `repeats` times (cycle counts are
/// deterministic across repeats; wall time takes the minimum), checking
/// the golden model on the first completed run. `sim_threads >= 2`
/// routes through the partitioned scheduler, which falls back to the
/// serial loop wherever the platform cannot split — either way the
/// report is bit-identical.
fn run_repeats(
    job: &JobSpec,
    sim_threads: usize,
    mut build: impl FnMut(usize) -> Result<Platform, String>,
) -> Result<(RunReport, Option<bool>), String> {
    let mut verified = None;
    let mut best_wall = f64::INFINITY;
    let mut last = None;
    for i in 0..job.repeats.max(1) {
        let mut p = build(i)?;
        p.enable_metrics();
        let report = if sim_threads >= 2 {
            p.run_with_threads(job.max_cycles, sim_threads)
        } else {
            p.run(job.max_cycles)
        };
        if i == 0 && report.completed && report.faults.is_empty() {
            verified = Some(job.workload.verify(&p, job.cores).is_ok());
        }
        best_wall = best_wall.min(report.wall_time.as_secs_f64());
        last = Some(report);
    }
    let mut report = last.expect("at least one repeat");
    report.wall_time = std::time::Duration::from_secs_f64(best_wall);
    Ok((report, verified))
}

fn finish(
    job: &JobSpec,
    report: RunReport,
    verified: Option<bool>,
    trace_hit: Option<bool>,
    image_hit: Option<bool>,
) -> JobResult {
    let error = if report.faults.is_empty() {
        None
    } else {
        Some(format!("faults: {}", report.faults.join("; ")))
    };
    let metrics = report.metrics.as_ref().map(|m| {
        let mut idle = Vec::with_capacity(report.masters.len());
        let mut wait = Vec::with_capacity(report.masters.len());
        for master in &report.masters {
            match master {
                MasterReport::Tg(s) => {
                    idle.push(s.idle_cycles);
                    wait.push(s.wait_cycles);
                }
                MasterReport::Synthetic {
                    idle_cycles,
                    wait_cycles,
                    ..
                } => {
                    idle.push(*idle_cycles);
                    wait.push(*wait_cycles);
                }
                _ => {
                    idle.push(0);
                    wait.push(0);
                }
            }
        }
        JobMetrics {
            fabric_utilization_cycles: m.fabric_utilization_cycles,
            conflicts: m.conflicts,
            grant_wait_count: m.grant_wait_count,
            grant_wait_sum: m.grant_wait_sum,
            grant_wait_max: m.grant_wait_max,
            link_grants: m.links.iter().map(|l| l.grants).collect(),
            link_stall_cycles: m.links.iter().map(|l| l.stall_cycles).collect(),
            link_busy_cycles: m.links.iter().map(|l| l.busy_cycles).collect(),
            master_idle_cycles: idle,
            master_wait_cycles: wait,
            sem_acquisitions: m.sem_acquisitions,
            sem_failed_polls: m.sem_failed_polls,
            sem_releases: m.sem_releases,
            busy_window_cycles: m.busy_window_cycles,
            busy_windows: m.busy_windows.clone(),
        }
    });
    let rates = report.synthetic_rates();
    JobResult {
        id: job.id,
        key: job.key(),
        workload: job.workload.to_string(),
        cores: job.cores,
        interconnect: job.interconnect.to_string(),
        master: job.master.to_string(),
        mode: (job.mode.is_some() || job.synth.is_some()).then(|| job.mode_label()),
        seed: job.seed,
        completed: report.completed,
        cycles: if report.completed {
            report.execution_time()
        } else {
            None
        },
        sim_cycles: report.cycles,
        transactions: report.transactions,
        latency_mean: report.latency.map(|(mean, _)| mean),
        latency_max: report.latency.map(|(_, max)| max),
        offered_rate: rates.map(|(o, _)| o),
        accepted_rate: rates.map(|(_, a)| a),
        verified,
        error_pct: None,
        trace_cache_hit: trace_hit,
        image_cache_hit: image_hit,
        error,
        wall_secs: report.wall_time.as_secs_f64(),
        skipped_cycles: report.skipped_cycles,
        ticked_cycles: report.ticked_cycles,
        visited_component_cycles: report.visited_component_cycles,
        total_component_cycles: report.total_component_cycles,
        metrics,
    }
}
