//! Persistent-store and shard/merge integration tests: warm-store
//! campaigns rebuild nothing, sharded campaigns merge byte-identically
//! to a single-process run, and store corruption degrades to a rebuild.

use std::fs;
use std::path::{Path, PathBuf};

use ntg_explore::{
    merge_shards, partial_path, run_campaign, shard_path, CampaignSpec, CoreSelection,
    MasterChoice, RunOptions,
};
use ntg_platform::InterconnectChoice;
use ntg_workloads::Workload;

/// 2 workloads × 2 cores × 1 fabric × (cpu + tg + stochastic) = 6
/// jobs, 2 distinct traces. The stochastic master matters: with
/// round-robin sharding it puts trace *consumers* of every workload in
/// both shards, so cross-shard store reuse is actually exercised.
fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("store-test");
    spec.workloads = vec![
        Workload::MpMatrix { n: 8 },
        Workload::Cacheloop { iterations: 500 },
    ];
    spec.cores = CoreSelection::List(vec![2]);
    spec.interconnects = vec![InterconnectChoice::Amba];
    spec.masters = vec![
        MasterChoice::Cpu,
        MasterChoice::Tg,
        MasterChoice::Stochastic,
    ];
    spec
}

/// A fresh scratch directory under the target-adjacent temp root.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ntg-store-tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(out: &Path, store: &Path) -> RunOptions {
    RunOptions {
        threads: 2,
        out: Some(out.to_path_buf()),
        store: Some(store.to_path_buf()),
        ..RunOptions::default()
    }
}

#[test]
fn warm_store_reruns_with_zero_builds_and_identical_bytes() {
    let dir = scratch("warm");
    let store = dir.join("store");

    let cold = run_campaign(&spec(), &opts(&dir.join("cold.jsonl"), &store)).unwrap();
    assert_eq!(cold.cache.trace_misses, 2, "cold run builds every trace");
    assert_eq!(cold.cache.trace_disk_hits, 0);
    assert_eq!(cold.cache.image_misses, 2);
    assert!(cold.cache.store_bytes > 0, "artifacts persisted to disk");

    let warm = run_campaign(&spec(), &opts(&dir.join("warm.jsonl"), &store)).unwrap();
    assert_eq!(warm.cache.trace_misses, 0, "warm run must not re-trace");
    assert_eq!(warm.cache.image_misses, 0, "warm run must not re-translate");
    assert_eq!(warm.cache.trace_disk_hits, 2);
    assert_eq!(warm.cache.image_disk_hits, 2);

    // Replays from decoded artifacts are bit-true to fresh ones.
    assert_eq!(
        fs::read(dir.join("cold.jsonl")).unwrap(),
        fs::read(dir.join("warm.jsonl")).unwrap()
    );
}

#[test]
fn sharded_runs_merge_byte_identical_to_a_single_run() {
    let dir = scratch("shards");
    let store = dir.join("store");
    let out = dir.join("campaign.jsonl");

    // Ground truth: one process, no store (proves the store doesn't
    // leak into canonical bytes either).
    let single = dir.join("single.jsonl");
    run_campaign(
        &spec(),
        &RunOptions {
            threads: 2,
            out: Some(single.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();

    // Two shards sharing one store, run back to back like two machines
    // would.
    let mut shard_files = Vec::new();
    let mut trace_builds = 0;
    for i in 1..=2 {
        let shard_out = shard_path(&out, (i, 2));
        let outcome = run_campaign(
            &spec(),
            &RunOptions {
                shard: Some((i, 2)),
                ..opts(&shard_out, &store)
            },
        )
        .unwrap();
        assert_eq!(outcome.results.len(), 3, "each shard runs half the jobs");
        trace_builds += outcome.cache.trace_misses;
        shard_files.push(shard_out);
    }
    // Each trace artifact was built by exactly one shard; the other
    // pulled it from the shared store.
    assert_eq!(trace_builds, 2, "no trace built twice across shards");

    let summary = merge_shards(&shard_files, &out).unwrap();
    assert_eq!(summary.shards, 2);
    assert_eq!(summary.jobs, 6);
    assert_eq!(
        fs::read(&out).unwrap(),
        fs::read(&single).unwrap(),
        "merged shards must be byte-identical to the unsharded run"
    );
}

#[test]
fn merge_rejects_incomplete_shard_coverage() {
    let dir = scratch("missing");
    let store = dir.join("store");
    let out = dir.join("campaign.jsonl");
    let shard1 = shard_path(&out, (1, 2));
    run_campaign(
        &spec(),
        &RunOptions {
            shard: Some((1, 2)),
            ..opts(&shard1, &store)
        },
    )
    .unwrap();
    let err = merge_shards(&[shard1], &out).unwrap_err();
    assert!(err.contains("missing"), "{err}");
    assert!(!out.exists(), "no canonical file on failed merge");
}

#[test]
fn merge_rejects_header_mismatch_and_names_the_file() {
    let dir = scratch("header-mismatch");
    let store = dir.join("store");
    let out = dir.join("campaign.jsonl");
    let mut shard_files = Vec::new();
    for i in 1..=2 {
        let shard_out = shard_path(&out, (i, 2));
        run_campaign(
            &spec(),
            &RunOptions {
                shard: Some((i, 2)),
                ..opts(&shard_out, &store)
            },
        )
        .unwrap();
        shard_files.push(shard_out);
    }
    // Shard 2 claims to come from a different campaign spec.
    let text = fs::read_to_string(&shard_files[1]).unwrap();
    let tampered = text.replacen("store-test", "other-campaign", 1);
    assert_ne!(text, tampered, "header line must carry the campaign name");
    fs::write(&shard_files[1], tampered).unwrap();

    let err = merge_shards(&shard_files, &out).unwrap_err();
    assert!(err.contains("header mismatch"), "{err}");
    assert!(
        err.contains(&shard_files[1].display().to_string()),
        "error must name the offending file: {err}"
    );
    assert!(err.contains("other-campaign"), "{err}");
    assert!(err.contains("store-test"), "{err}");
    assert!(!out.exists(), "no canonical file on failed merge");
}

#[test]
fn corrupt_store_entries_degrade_to_a_rebuild() {
    let dir = scratch("corrupt");
    let store = dir.join("store");
    let cold = run_campaign(&spec(), &opts(&dir.join("cold.jsonl"), &store)).unwrap();
    assert_eq!(cold.cache.trace_misses, 2);

    // Flip a byte in every persisted trace entry — a torn write, bad
    // disk, or codec drift should cost a rebuild, never a wrong answer.
    let mut corrupted = 0;
    for entry in walk(&store) {
        if entry.extension().is_some_and(|e| e == "trace") {
            let mut bytes = fs::read(&entry).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            fs::write(&entry, bytes).unwrap();
            corrupted += 1;
        }
    }
    assert_eq!(corrupted, 2, "expected one entry per trace artifact");

    let rerun = run_campaign(&spec(), &opts(&dir.join("rerun.jsonl"), &store)).unwrap();
    assert_eq!(
        rerun.cache.trace_disk_hits, 0,
        "corrupt entries must not hit"
    );
    assert_eq!(rerun.cache.trace_misses, 2, "both traces rebuilt");
    assert_eq!(
        rerun.cache.image_disk_hits, 2,
        "image entries were untouched"
    );
    assert_eq!(
        fs::read(dir.join("cold.jsonl")).unwrap(),
        fs::read(dir.join("rerun.jsonl")).unwrap()
    );

    // And the rebuild healed the store: a third run hits everything.
    let healed = run_campaign(&spec(), &opts(&dir.join("healed.jsonl"), &store)).unwrap();
    assert_eq!(healed.cache.trace_misses, 0);
    assert_eq!(healed.cache.trace_disk_hits, 2);
}

#[test]
fn shard_runs_leave_no_stray_journals() {
    let dir = scratch("journal");
    let store = dir.join("store");
    let out = dir.join("campaign.jsonl");
    let shard1 = shard_path(&out, (1, 2));
    run_campaign(
        &spec(),
        &RunOptions {
            shard: Some((1, 2)),
            ..opts(&shard1, &store)
        },
    )
    .unwrap();
    assert!(shard1.exists());
    assert!(!partial_path(&shard1).exists());
    assert!(
        !out.exists(),
        "a shard run must not write the canonical path"
    );
}

fn walk(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                out.push(path);
            }
        }
    }
    out
}
