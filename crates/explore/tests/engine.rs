//! End-to-end campaign engine tests: determinism across worker-thread
//! counts, exactly-once artifact building, and resume-from-partial.

use std::fs;

use ntg_explore::{
    merge_shards, metrics_path, parse_results, partial_path, run_campaign, shard_path,
    CampaignSpec, CoreSelection, MasterChoice, RunOptions,
};
use ntg_platform::InterconnectChoice;
use ntg_workloads::synthetic::{ALL_PATTERNS, ALL_SHAPES};
use ntg_workloads::Workload;

/// A small but representative campaign: 2 workloads × 2 core counts ×
/// 2 fabrics × (cpu + tg) = 16 jobs, 4 distinct traces.
fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("engine-test");
    spec.workloads = vec![
        Workload::MpMatrix { n: 8 },
        Workload::Cacheloop { iterations: 500 },
    ];
    spec.cores = CoreSelection::List(vec![2, 4]);
    spec.interconnects = vec![InterconnectChoice::Amba, InterconnectChoice::Xpipes];
    spec
}

fn tmp_out(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ntg-explore-tests");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(partial_path(&path));
    path
}

#[test]
fn jsonl_is_byte_identical_across_thread_counts() {
    let spec = small_spec();
    let out1 = tmp_out("threads1.jsonl");
    let out4 = tmp_out("threads4.jsonl");
    run_campaign(
        &spec,
        &RunOptions {
            threads: 1,
            out: Some(out1.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();
    run_campaign(
        &spec,
        &RunOptions {
            threads: 4,
            out: Some(out4.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let a = fs::read(&out1).unwrap();
    let b = fs::read(&out4).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "canonical files must not depend on worker count");
}

#[test]
fn jsonl_is_byte_identical_across_sim_thread_counts() {
    // Intra-run partitioning over mesh link ranges must be exactly as
    // invisible as worker-pool parallelism: the canonical file AND the
    // metrics sidecar come out byte-identical when every simulation is
    // split four ways. The spec mixes partitionable mesh jobs (explicit
    // mesh sizes) with auto-layout xpipes and AMBA jobs that fall back
    // to the serial engine.
    let mut spec = CampaignSpec::new("sim-threads-test");
    spec.workloads = vec![Workload::MpMatrix { n: 8 }];
    spec.cores = CoreSelection::List(vec![2]);
    spec.interconnects = vec![InterconnectChoice::Amba, InterconnectChoice::Xpipes];
    spec.mesh_sizes = vec![(2, 4), (3, 3)];
    let out1 = tmp_out("sim-threads1.jsonl");
    let out4 = tmp_out("sim-threads4.jsonl");
    for (sim_threads, out) in [(1, &out1), (4, &out4)] {
        let outcome = run_campaign(
            &spec,
            &RunOptions {
                sim_threads,
                out: Some(out.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert!(
            outcome.results.iter().all(|r| r.error.is_none()),
            "campaign failed: {:?}",
            outcome.results.iter().find_map(|r| r.error.clone())
        );
    }
    assert_eq!(
        fs::read(&out1).unwrap(),
        fs::read(&out4).unwrap(),
        "canonical files must not depend on sim-thread count"
    );
    let m1 = fs::read_to_string(metrics_path(&out1)).unwrap();
    let m4 = fs::read_to_string(metrics_path(&out4)).unwrap();
    // The sidecar headers name their campaign (identical here); every
    // job line after them must agree exactly, windowed series included.
    assert!(!m1.is_empty());
    assert_eq!(
        m1.lines().skip(1).collect::<Vec<_>>(),
        m4.lines().skip(1).collect::<Vec<_>>(),
        "metrics sidecars must not depend on sim-thread count"
    );
}

#[test]
fn zero_threads_auto_detects_and_matches_single_thread() {
    let spec = small_spec();
    let out0 = tmp_out("threads0.jsonl");
    let out1 = tmp_out("threads0-ref.jsonl");
    for (threads, out) in [(0, &out0), (1, &out1)] {
        run_campaign(
            &spec,
            &RunOptions {
                threads,
                out: Some(out.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap();
    }
    assert_eq!(
        fs::read(&out0).unwrap(),
        fs::read(&out1).unwrap(),
        "auto-detected worker count must not change canonical output"
    );
}

#[test]
fn each_trace_and_translation_happens_exactly_once() {
    let spec = small_spec();
    let outcome = run_campaign(
        &spec,
        &RunOptions {
            threads: 4,
            ..RunOptions::default()
        },
    )
    .unwrap();
    // 2 workloads × 2 core counts share one trace interconnect → 4
    // distinct traces; every TG job uses the same translator config →
    // 4 distinct image sets. 8 TG jobs consume both levels.
    assert_eq!(outcome.cache.trace_misses, 4);
    assert_eq!(outcome.cache.trace_hits, 4);
    assert_eq!(outcome.cache.image_misses, 4);
    assert_eq!(outcome.cache.image_hits, 4);
    // The per-result flags agree with the counters.
    let tg_results: Vec<_> = outcome
        .results
        .iter()
        .filter(|r| r.master == "tg")
        .collect();
    assert_eq!(tg_results.len(), 8);
    assert_eq!(
        tg_results
            .iter()
            .filter(|r| r.image_cache_hit == Some(false))
            .count(),
        4
    );
    // And every job completed and verified (TG replays reproduce the
    // golden memory image).
    for r in &outcome.results {
        assert!(r.error.is_none(), "{}: {:?}", r.key, r.error);
        assert!(r.completed, "{}", r.key);
        assert_eq!(r.verified, Some(true), "{}", r.key);
    }
}

#[test]
fn resume_completes_only_missing_jobs_and_matches_full_run() {
    let spec = small_spec();
    // Full run → the ground-truth canonical file.
    let full = tmp_out("resume-full.jsonl");
    run_campaign(
        &spec,
        &RunOptions {
            threads: 2,
            out: Some(full.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let full_bytes = fs::read(&full).unwrap();

    // Simulate an interrupted run: a journal holding the header and the
    // first half of the results.
    let out = tmp_out("resume-half.jsonl");
    let text = String::from_utf8(full_bytes.clone()).unwrap();
    let half: Vec<&str> = text.lines().take(1 + 8).collect();
    fs::write(partial_path(&out), half.join("\n") + "\n").unwrap();

    let outcome = run_campaign(
        &spec,
        &RunOptions {
            threads: 2,
            out: Some(out.clone()),
            resume: true,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.resumed, 8);
    assert_eq!(outcome.executed, 8);
    assert_eq!(fs::read(&out).unwrap(), full_bytes);
    assert!(
        !partial_path(&out).exists(),
        "journal is removed on finalise"
    );
}

#[test]
fn resume_drops_a_torn_trailing_journal_line_and_reruns_that_job() {
    let spec = small_spec();
    let full = tmp_out("resume-torn-full.jsonl");
    run_campaign(
        &spec,
        &RunOptions {
            threads: 2,
            out: Some(full.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let full_bytes = fs::read(&full).unwrap();
    let text = String::from_utf8(full_bytes.clone()).unwrap();

    // A crash mid-append leaves the journal with intact lines followed
    // by a torn tail. Model both failure shapes the filesystem can
    // produce: a line cut mid-JSON (no newline), and garbage bytes.
    for (label, tail) in [
        ("truncated", {
            let line = text.lines().nth(9).unwrap();
            line[..line.len() / 2].to_string()
        }),
        ("garbage", "{\"id\":not json at all".to_string()),
    ] {
        let out = tmp_out(&format!("resume-torn-{label}.jsonl"));
        let mut journal: Vec<&str> = text.lines().take(1 + 8).collect();
        journal.push(&tail);
        fs::write(partial_path(&out), journal.join("\n")).unwrap();

        let outcome = run_campaign(
            &spec,
            &RunOptions {
                threads: 2,
                out: Some(out.clone()),
                resume: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        // The 8 intact results are adopted; the torn 9th is re-run
        // along with the 7 never-started jobs.
        assert_eq!(outcome.resumed, 8, "{label}");
        assert_eq!(outcome.executed, 8, "{label}");
        assert_eq!(
            fs::read(&out).unwrap(),
            full_bytes,
            "{label}: resumed canonical file must match the full run"
        );
    }
}

#[test]
fn resume_rejects_a_mismatched_fingerprint() {
    let spec = small_spec();
    let out = tmp_out("resume-stale.jsonl");
    // A journal from a *different* campaign (other seed → other
    // fingerprint and seeds).
    let mut other = small_spec();
    other.base_seed += 1;
    run_campaign(
        &other,
        &RunOptions {
            threads: 2,
            out: Some(out.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();
    fs::rename(&out, partial_path(&out)).unwrap();

    let outcome = run_campaign(
        &spec,
        &RunOptions {
            threads: 2,
            out: Some(out.clone()),
            resume: true,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.resumed, 0, "stale results must not be adopted");
    assert_eq!(outcome.executed, 16);
}

#[test]
fn stochastic_jobs_share_the_reference_trace() {
    let mut spec = small_spec();
    spec.workloads = vec![Workload::MpMatrix { n: 8 }];
    spec.cores = CoreSelection::List(vec![2]);
    spec.interconnects = vec![InterconnectChoice::Amba];
    spec.masters = vec![
        MasterChoice::Cpu,
        MasterChoice::Tg,
        MasterChoice::Stochastic,
    ];
    let outcome = run_campaign(&spec, &RunOptions::default()).unwrap();
    assert_eq!(outcome.results.len(), 3);
    // One trace build serves both the TG and the stochastic job.
    assert_eq!(outcome.cache.trace_misses, 1);
    assert_eq!(outcome.cache.trace_hits, 1);
    let stoch = outcome
        .results
        .iter()
        .find(|r| r.master == "stochastic")
        .unwrap();
    assert!(stoch.error.is_none(), "{:?}", stoch.error);
    assert!(stoch.completed);
    // Stochastic traffic has no golden model to check.
    assert_eq!(stoch.verified, None);
}

/// A synthetic campaign exercising every destination pattern and every
/// temporal shape: 7 patterns × 3 shapes × 2 rates = 42 jobs of
/// 48-packet traffic on 4 cores.
fn synthetic_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("engine-synthetic");
    spec.workloads = vec![Workload::Synthetic { packets: 48 }];
    spec.cores = CoreSelection::List(vec![4]);
    spec.interconnects = vec![InterconnectChoice::Xpipes];
    spec.masters = vec![MasterChoice::Synthetic];
    spec.patterns = ALL_PATTERNS.to_vec();
    spec.shapes = ALL_SHAPES.to_vec();
    spec.rates = vec![0.02, 0.2];
    spec
}

#[test]
fn synthetic_jsonl_is_byte_identical_across_thread_counts() {
    let spec = synthetic_spec();
    let out1 = tmp_out("syn-threads1.jsonl");
    let out0 = tmp_out("syn-threads0.jsonl");
    for (threads, out) in [(1, &out1), (0, &out0)] {
        run_campaign(
            &spec,
            &RunOptions {
                threads,
                out: Some(out.clone()),
                ..RunOptions::default()
            },
        )
        .unwrap();
    }
    let a = fs::read(&out1).unwrap();
    assert_eq!(
        a,
        fs::read(&out0).unwrap(),
        "synthetic canonical files must not depend on worker count"
    );
    // And the results are live: every pattern × shape × rate combination
    // completed with canonical injection rates.
    let loaded = parse_results(&String::from_utf8(a).unwrap(), false).unwrap();
    assert_eq!(loaded.results.len(), 42);
    for r in &loaded.results {
        assert!(r.error.is_none(), "{}: {:?}", r.key, r.error);
        assert!(r.completed, "{}", r.key);
        assert_eq!(r.master, "synthetic", "{}", r.key);
        let offered = r.offered_rate.expect("offered rate is canonical");
        let accepted = r.accepted_rate.expect("accepted rate is canonical");
        assert!(offered > 0.0 && accepted > 0.0, "{}", r.key);
        assert!(accepted <= offered + 1e-12, "{}", r.key);
    }
}

#[test]
fn synthetic_shards_merge_to_the_unsharded_file() {
    let spec = synthetic_spec();
    let full = tmp_out("syn-full.jsonl");
    run_campaign(
        &spec,
        &RunOptions {
            threads: 2,
            out: Some(full.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();

    let merged = tmp_out("syn-merged.jsonl");
    let mut shards = Vec::new();
    for i in 1..=2 {
        let out = shard_path(&merged, (i, 2));
        let _ = fs::remove_file(&out);
        let _ = fs::remove_file(partial_path(&out));
        run_campaign(
            &spec,
            &RunOptions {
                threads: 2,
                out: Some(out.clone()),
                shard: Some((i, 2)),
                ..RunOptions::default()
            },
        )
        .unwrap();
        shards.push(out);
    }
    let summary = merge_shards(&shards, &merged).unwrap();
    assert_eq!(summary.jobs, 42);
    assert_eq!(
        fs::read(&merged).unwrap(),
        fs::read(&full).unwrap(),
        "sharded + merged synthetic campaign must match the unsharded run"
    );
}

#[test]
fn canonical_file_parses_back_and_is_sorted_by_id() {
    let spec = small_spec();
    let out = tmp_out("parse-back.jsonl");
    run_campaign(
        &spec,
        &RunOptions {
            threads: 4,
            out: Some(out.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let loaded = parse_results(&fs::read_to_string(&out).unwrap(), false).unwrap();
    assert_eq!(loaded.header.name, "engine-test");
    assert_eq!(loaded.header.fingerprint, spec.fingerprint());
    assert_eq!(loaded.results.len(), 16);
    let ids: Vec<usize> = loaded.results.iter().map(|r| r.id).collect();
    assert_eq!(ids, (0..16).collect::<Vec<_>>());
    // error_pct is present exactly for non-CPU jobs with a CPU
    // reference.
    for r in &loaded.results {
        assert_eq!(r.error_pct.is_some(), r.master != "cpu", "{}", r.key);
    }
}

/// The three execution modes — one worker, four in-process workers
/// (Send platforms sharing one in-memory cache and one open store
/// handle), and two shard processes merged back — must all produce the
/// same canonical bytes, and the metrics sidecars must agree line for
/// line.
#[test]
fn threads_and_shards_agree_on_canonical_and_metrics_bytes() {
    let spec = small_spec();
    let store = std::env::temp_dir().join("ntg-explore-tests/identity-store");
    let _ = fs::remove_dir_all(&store);

    let run = |out: &std::path::Path, threads: usize, shard: Option<(usize, usize)>| {
        run_campaign(
            &spec,
            &RunOptions {
                threads,
                out: Some(out.to_path_buf()),
                store: Some(store.clone()),
                shard,
                ..RunOptions::default()
            },
        )
        .unwrap()
    };

    let out1 = tmp_out("identity-t1.jsonl");
    let out4 = tmp_out("identity-t4.jsonl");
    run(&out1, 1, None);
    run(&out4, 4, None);
    let canonical = fs::read(&out1).unwrap();
    assert!(!canonical.is_empty());
    assert_eq!(
        canonical,
        fs::read(&out4).unwrap(),
        "canonical bytes must not depend on in-process worker count"
    );
    assert_eq!(
        fs::read(metrics_path(&out1)).unwrap(),
        fs::read(metrics_path(&out4)).unwrap(),
        "metrics sidecars must not depend on in-process worker count"
    );

    // Shard halves through the same store, then merge.
    let merged = tmp_out("identity-merged.jsonl");
    let mut shards = Vec::new();
    for i in 1..=2 {
        let out = shard_path(&merged, (i, 2));
        let _ = fs::remove_file(&out);
        let _ = fs::remove_file(partial_path(&out));
        run(&out, 2, Some((i, 2)));
        shards.push(out);
    }
    merge_shards(&shards, &merged).unwrap();
    assert_eq!(
        fs::read(&merged).unwrap(),
        canonical,
        "sharded + merged canonical bytes must match the unsharded run"
    );

    // Each shard writes the metrics sidecar for its own jobs; the union
    // (ordered by job id, matching the canonical sort) must be exactly
    // the unsharded sidecar's job lines.
    let body = |path: &std::path::Path| -> Vec<String> {
        fs::read_to_string(path)
            .unwrap()
            .lines()
            .skip(1) // campaign header line
            .map(str::to_owned)
            .collect()
    };
    let mut union: Vec<String> = shards.iter().flat_map(|s| body(&metrics_path(s))).collect();
    union.sort_by_key(|line| {
        let id = line.split("\"id\":").nth(1).expect("metrics line has id");
        id.split(',')
            .next()
            .unwrap()
            .trim()
            .parse::<usize>()
            .expect("numeric id")
    });
    assert_eq!(
        union,
        body(&metrics_path(&out1)),
        "shard metrics sidecars must union to the unsharded sidecar"
    );
}
