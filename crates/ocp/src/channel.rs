//! The single-slot handshaked channel connecting a master to the network.

use std::cell::{Cell, Ref, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use ntg_sim::Cycle;

use crate::observer::ChannelObserver;
use crate::types::{MasterId, OcpRequest, OcpResponse};

/// Shared state of one OCP link.
///
/// Created through [`channel`]; user code interacts with the
/// [`MasterPort`]/[`SlavePort`] endpoints rather than with the channel
/// directly. All visibility rules (a value written in cycle *t* is only
/// observable from cycle *t + 1*) are enforced here, centrally.
pub struct OcpChannel {
    /// Interned once at construction; `name()` hands out refcount bumps,
    /// never string copies.
    name: Rc<str>,
    master: MasterId,
    /// The request driving the wires; its visibility cycle lives in the
    /// link's `req_visible_at` mirror.
    req: Option<OcpRequest>,
    /// Set when a request is accepted; consumed by the master.
    accept: Option<(u64, Cycle)>,
    resp: VecDeque<(OcpResponse, Cycle)>,
    next_tag: u64,
    observer: Option<Box<dyn ChannelObserver>>,
}

/// One OCP link: the channel state plus lock-free visibility mirrors.
///
/// Masters, arbiters and slaves poll their ports every cycle, and most
/// polls miss (nothing visible yet). The mirrors answer those misses
/// with a plain [`Cell`] load — no `RefCell` borrow bookkeeping — while
/// every mutating operation goes through the [`RefCell`] and refreshes
/// the mirrors before returning. Invariant: each mirror holds the cycle
/// from which the corresponding event is visible (`None` when absent).
struct Link {
    /// `asserted_at + 1` of the pending request.
    req_visible_at: Cell<Option<Cycle>>,
    /// `accepted_at + 1` of the unconsumed acceptance.
    accept_visible_at: Cell<Option<Cycle>>,
    /// `pushed_at + 1` of the oldest queued response.
    resp_visible_at: Cell<Option<Cycle>>,
    state: RefCell<OcpChannel>,
}

impl std::fmt::Debug for OcpChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OcpChannel")
            .field("name", &self.name)
            .field("master", &self.master)
            .field("req", &self.req)
            .field("accept", &self.accept)
            .field("resp_queued", &self.resp.len())
            .finish()
    }
}

/// Creates a connected master/slave endpoint pair for one OCP link.
///
/// `name` identifies the link in diagnostics and traces; `master` is
/// stamped into every request asserted through the returned
/// [`MasterPort`].
pub fn channel(name: impl Into<Rc<str>>, master: MasterId) -> (MasterPort, SlavePort) {
    let inner = Rc::new(Link {
        req_visible_at: Cell::new(None),
        accept_visible_at: Cell::new(None),
        resp_visible_at: Cell::new(None),
        state: RefCell::new(OcpChannel {
            name: name.into(),
            master,
            req: None,
            accept: None,
            resp: VecDeque::new(),
            next_tag: 0,
            observer: None,
        }),
    });
    (
        MasterPort {
            inner: inner.clone(),
        },
        SlavePort { inner },
    )
}

/// The core-side endpoint of an OCP link.
///
/// Owned by a CPU core or traffic generator. Cloning yields another handle
/// to the same link (used to hand one half to a write buffer, say).
#[derive(Clone)]
pub struct MasterPort {
    inner: Rc<Link>,
}

/// The network-side endpoint of an OCP link.
///
/// Owned by an interconnect (for master links) or by a slave device (for
/// slave links).
#[derive(Clone)]
pub struct SlavePort {
    inner: Rc<Link>,
}

impl MasterPort {
    /// The link name supplied to [`channel`] (an interned handle:
    /// cloning it is a refcount bump, not a string copy).
    pub fn name(&self) -> Rc<str> {
        self.inner.state.borrow().name.clone()
    }

    /// The master identity stamped into requests asserted here.
    pub fn master(&self) -> MasterId {
        self.inner.state.borrow().master
    }

    /// Installs a trace observer on this link, replacing any previous one.
    pub fn set_observer(&self, observer: Box<dyn ChannelObserver>) {
        self.inner.state.borrow_mut().observer = Some(observer);
    }

    /// Removes and returns the installed observer, if any.
    pub fn take_observer(&self) -> Option<Box<dyn ChannelObserver>> {
        self.inner.state.borrow_mut().observer.take()
    }

    /// Asserts `req` on the request wires in cycle `now`.
    ///
    /// The request keeps driving the wires until the network accepts it.
    /// The port stamps the master id and a fresh sequence tag; the stamped
    /// tag is returned.
    ///
    /// # Panics
    ///
    /// Panics if a previous request has not been accepted yet — a
    /// single-threaded blocking master can never legally do this, so it is
    /// a programming error in the master model.
    pub fn assert_request(&self, mut req: OcpRequest, now: Cycle) -> u64 {
        let mut ch = self.inner.state.borrow_mut();
        assert!(
            ch.req.is_none(),
            "master {} asserted a request while one is already pending on {}",
            ch.master,
            ch.name
        );
        req.master = ch.master;
        req.tag = ch.next_tag;
        ch.next_tag += 1;
        let tag = req.tag;
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_request(now, &req);
        }
        ch.req = Some(req);
        self.inner.req_visible_at.set(Some(now + 1));
        tag
    }

    /// Asserts `req` without re-stamping its master id or tag.
    ///
    /// Used by interconnects to forward a request received on a master
    /// link onto a slave link while preserving its identity for response
    /// matching and tracing.
    ///
    /// # Panics
    ///
    /// Panics if a previous request has not been accepted yet.
    pub fn forward_request(&self, req: OcpRequest, now: Cycle) {
        let mut ch = self.inner.state.borrow_mut();
        assert!(
            ch.req.is_none(),
            "forwarded a request while one is already pending on {}",
            ch.name
        );
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_request(now, &req);
        }
        ch.req = Some(req);
        self.inner.req_visible_at.set(Some(now + 1));
    }

    /// Whether a request is still driving the wires (not yet accepted).
    #[inline]
    pub fn request_pending(&self) -> bool {
        self.inner.req_visible_at.get().is_some()
    }

    /// Consumes the acceptance event, if one is visible in cycle `now`.
    ///
    /// Returns the accepted request's tag. An acceptance performed by the
    /// network in cycle *t* becomes visible in cycle *t + 1*.
    #[inline]
    pub fn take_accept(&self, now: Cycle) -> Option<u64> {
        match self.inner.accept_visible_at.get() {
            Some(at) if at <= now => {}
            _ => return None,
        }
        let mut ch = self.inner.state.borrow_mut();
        let (tag, _) = ch.accept.take().expect("mirror said visible");
        self.inner.accept_visible_at.set(None);
        Some(tag)
    }

    /// Consumes the oldest response, if one is visible in cycle `now`.
    ///
    /// A response pushed by the network in cycle *t* becomes visible in
    /// cycle *t + 1*.
    #[inline]
    pub fn take_response(&self, now: Cycle) -> Option<OcpResponse> {
        match self.inner.resp_visible_at.get() {
            Some(at) if at <= now => {}
            _ => return None,
        }
        let mut ch = self.inner.state.borrow_mut();
        let (resp, _) = ch.resp.pop_front().expect("mirror said visible");
        self.inner
            .resp_visible_at
            .set(ch.resp.front().map(|&(_, at)| at + 1));
        // A response subsumes the acceptance of the same request: a master
        // blocking on the response would otherwise leave the acceptance
        // event behind to confuse its next posted write.
        if matches!(ch.accept, Some((tag, _)) if tag == resp.tag) {
            ch.accept = None;
            self.inner.accept_visible_at.set(None);
        }
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_response_consumed(now, &resp);
        }
        Some(resp)
    }

    /// Whether the link is completely quiet (no request, acceptance or
    /// response in flight).
    #[inline]
    pub fn is_quiet(&self) -> bool {
        self.inner.req_visible_at.get().is_none()
            && self.inner.accept_visible_at.get().is_none()
            && self.inner.resp_visible_at.get().is_none()
    }

    /// The earliest cycle at which a queued completion event (an
    /// acceptance or a response) becomes visible to this master.
    ///
    /// Returns `None` when neither kind of event is queued — the master
    /// cannot tell from its port alone when it will next unblock. Used by
    /// [`Component::next_activity`](ntg_sim::Component::next_activity)
    /// implementations of blocked masters to hint the engine's cycle
    /// skipper.
    #[inline]
    pub fn next_event_at(&self) -> Option<Cycle> {
        let accept = self.inner.accept_visible_at.get();
        let resp = self.inner.resp_visible_at.get();
        match (accept, resp) {
            (Some(a), Some(r)) => Some(a.min(r)),
            (a, r) => a.or(r),
        }
    }
}

impl SlavePort {
    /// The link name supplied to [`channel`] (an interned handle:
    /// cloning it is a refcount bump, not a string copy).
    pub fn name(&self) -> Rc<str> {
        self.inner.state.borrow().name.clone()
    }

    /// Looks at the pending request without accepting it.
    ///
    /// Returns `None` if there is no request or if it was asserted in this
    /// very cycle (assert-to-visible is one cycle). The request is
    /// *borrowed*, not cloned — ownership transfers only at
    /// [`SlavePort::accept_request`]. The borrow locks the channel: drop
    /// it before calling any `&self` method that mutates (assert, accept,
    /// push).
    #[inline]
    pub fn peek_request(&self, now: Cycle) -> Option<Ref<'_, OcpRequest>> {
        if !self.has_request(now) {
            return None;
        }
        Ref::filter_map(self.inner.state.borrow(), |ch| ch.req.as_ref()).ok()
    }

    /// Whether a request is visible in cycle `now` (clone-free; what
    /// arbiters scan every cycle).
    #[inline]
    pub fn has_request(&self, now: Cycle) -> bool {
        matches!(self.inner.req_visible_at.get(), Some(at) if at <= now)
    }

    /// The visible request's `(addr, beats, expects_response)` without
    /// cloning its payload. Used by address decoders and slave timing.
    #[inline]
    pub fn peek_meta(&self, now: Cycle) -> Option<(u32, u32, bool)> {
        if !self.has_request(now) {
            return None;
        }
        let ch = self.inner.state.borrow();
        let req = ch.req.as_ref().expect("mirror said visible");
        Some((req.addr, req.beats(), req.cmd.expects_response()))
    }

    /// Accepts the pending request, freeing the request wires.
    ///
    /// Returns `None` under the same conditions as
    /// [`SlavePort::peek_request`]. Acceptance is recorded so the master
    /// can unblock (posted-write semantics) and reported to the observer.
    #[inline]
    pub fn accept_request(&self, now: Cycle) -> Option<OcpRequest> {
        if !self.has_request(now) {
            return None;
        }
        let mut ch = self.inner.state.borrow_mut();
        let req = ch.req.take().expect("mirror said visible");
        self.inner.req_visible_at.set(None);
        // Acceptance is an edge notification: a master that does not care
        // about acceptances (it only ever waits on responses) may leave a
        // stale one behind, which the next acceptance simply replaces.
        ch.accept = Some((req.tag, now));
        self.inner.accept_visible_at.set(Some(now + 1));
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_accept(now, &req);
        }
        Some(req)
    }

    /// Pushes a response towards the master in cycle `now`.
    #[inline]
    pub fn push_response(&self, resp: OcpResponse, now: Cycle) {
        let mut ch = self.inner.state.borrow_mut();
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_response(now, &resp);
        }
        ch.resp.push_back((resp, now));
        if self.inner.resp_visible_at.get().is_none() {
            self.inner.resp_visible_at.set(Some(now + 1));
        }
    }

    /// Whether the link is completely quiet; see [`MasterPort::is_quiet`].
    #[inline]
    pub fn is_quiet(&self) -> bool {
        self.inner.req_visible_at.get().is_none()
            && self.inner.accept_visible_at.get().is_none()
            && self.inner.resp_visible_at.get().is_none()
    }

    /// The cycle from which the pending request (if any) is visible on
    /// this side of the link: one cycle after assertion.
    ///
    /// Unlike [`SlavePort::has_request`] this does not depend on `now`,
    /// so arbiters can hint the engine's cycle skipper about requests
    /// asserted this very cycle that only become actionable next cycle.
    #[inline]
    pub fn request_visible_at(&self) -> Option<Cycle> {
        self.inner.req_visible_at.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{OcpCmd, OcpStatus};

    #[test]
    fn request_invisible_in_assert_cycle() {
        let (m, s) = channel("l", MasterId(0));
        m.assert_request(OcpRequest::read(0x10), 5);
        assert!(s.peek_request(5).is_none());
        assert!(s.accept_request(5).is_none());
        assert!(s.peek_request(6).is_some());
    }

    #[test]
    fn accept_frees_wires_and_notifies_master_next_cycle() {
        let (m, s) = channel("l", MasterId(2));
        let tag = m.assert_request(OcpRequest::write(0x20, 1), 0);
        assert!(m.request_pending());
        let req = s.accept_request(1).expect("visible at cycle 1");
        assert_eq!(req.master, MasterId(2));
        assert!(!m.request_pending());
        // Acceptance performed in cycle 1 is not visible in cycle 1…
        assert_eq!(m.take_accept(1), None);
        // …but is in cycle 2, exactly once.
        assert_eq!(m.take_accept(2), Some(tag));
        assert_eq!(m.take_accept(3), None);
    }

    #[test]
    fn response_visible_one_cycle_after_push() {
        let (m, s) = channel("l", MasterId(0));
        m.assert_request(OcpRequest::read(0x10), 0);
        s.accept_request(1);
        s.push_response(OcpResponse::ok(vec![42], 0), 4);
        assert!(m.take_response(4).is_none());
        let r = m.take_response(5).expect("visible at 5");
        assert_eq!(r.data, vec![42]);
        assert_eq!(r.status, OcpStatus::Ok);
        assert!(m.take_response(6).is_none());
    }

    #[test]
    fn tags_increase_monotonically() {
        let (m, s) = channel("l", MasterId(0));
        let t0 = m.assert_request(OcpRequest::read(0), 0);
        s.accept_request(1);
        m.take_accept(2);
        let t1 = m.assert_request(OcpRequest::read(4), 2);
        assert_eq!(t1, t0 + 1);
    }

    #[test]
    #[should_panic(expected = "already pending")]
    fn double_assert_panics() {
        let (m, _s) = channel("l", MasterId(0));
        m.assert_request(OcpRequest::read(0), 0);
        m.assert_request(OcpRequest::read(4), 1);
    }

    #[test]
    fn quiet_reflects_all_in_flight_state() {
        let (m, s) = channel("l", MasterId(0));
        assert!(m.is_quiet() && s.is_quiet());
        m.assert_request(OcpRequest::read(0), 0);
        assert!(!m.is_quiet());
        s.accept_request(1);
        assert!(!m.is_quiet(), "unconsumed acceptance keeps link busy");
        m.take_accept(2);
        assert!(m.is_quiet());
        s.push_response(OcpResponse::ok(vec![1], 0), 3);
        assert!(!s.is_quiet());
        m.take_response(4);
        assert!(m.is_quiet() && s.is_quiet());
    }

    #[test]
    fn responses_preserve_fifo_order() {
        let (m, s) = channel("l", MasterId(0));
        s.push_response(OcpResponse::ok(vec![1], 0), 0);
        s.push_response(OcpResponse::ok(vec![2], 1), 1);
        assert_eq!(m.take_response(5).unwrap().word(), 1);
        assert_eq!(m.take_response(5).unwrap().word(), 2);
    }

    #[test]
    fn visibility_helpers_report_event_cycles() {
        let (m, s) = channel("l", MasterId(0));
        assert_eq!(s.request_visible_at(), None);
        assert_eq!(m.next_event_at(), None);
        m.assert_request(OcpRequest::read(0x10), 5);
        // Asserted at 5 → visible to the slave from 6.
        assert_eq!(s.request_visible_at(), Some(6));
        s.accept_request(6);
        assert_eq!(s.request_visible_at(), None);
        // Accepted at 6 → acceptance visible to the master from 7.
        assert_eq!(m.next_event_at(), Some(7));
        s.push_response(OcpResponse::ok(vec![1], 0), 6);
        // Response also from 7; min of the two.
        assert_eq!(m.next_event_at(), Some(7));
        m.take_response(7);
        m.take_accept(7);
        assert_eq!(m.next_event_at(), None);
    }

    #[test]
    fn burst_request_round_trips_through_channel() {
        let (m, s) = channel("l", MasterId(1));
        m.assert_request(OcpRequest::burst_read(0x100, 4), 0);
        let req = s.accept_request(1).unwrap();
        assert_eq!(req.cmd, OcpCmd::BurstRead);
        assert_eq!(req.beats(), 4);
    }
}
