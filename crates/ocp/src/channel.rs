//! The single-slot handshaked link arena connecting masters to the network.

use std::collections::VecDeque;

use ntg_sim::{Cycle, WakeEvents};

use crate::observer::ChannelObserver;
use crate::types::{MasterId, OcpRequest, OcpResponse};

/// Identifies one OCP link inside a [`LinkArena`].
///
/// A plain index — `Copy`, `Send`, and meaningless without the arena it
/// was minted by. Ports wrap one of these; components store ports (or
/// ids) and borrow the arena on every access, so the whole component
/// graph is an ordinary `Send` value with no shared-ownership
/// bookkeeping on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(u32);

impl LinkId {
    /// The raw index into the arena's link slab.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// State of one OCP link: the handshake slots plus their visibility
/// cycles.
///
/// All visibility rules (a value written in cycle *t* is only observable
/// from cycle *t + 1*) are enforced here, centrally. Each `*_visible_at`
/// field holds the cycle from which the corresponding event is visible
/// (`None` when absent) — the every-cycle polls that dominate the tick
/// path answer from these plain fields with one load and no interior-
/// mutability bookkeeping.
struct Link {
    /// Link name, owned by the arena (the per-platform string table);
    /// ports hand out `&str` borrows, never copies.
    name: String,
    master: MasterId,
    /// The request driving the wires.
    req: Option<OcpRequest>,
    /// `asserted_at + 1` of the pending request.
    req_visible_at: Option<Cycle>,
    /// Set when a request is accepted; consumed by the master.
    accept: Option<(u64, Cycle)>,
    /// `accepted_at + 1` of the unconsumed acceptance.
    accept_visible_at: Option<Cycle>,
    resp: VecDeque<(OcpResponse, Cycle)>,
    /// `pushed_at + 1` of the oldest queued response.
    resp_visible_at: Option<Cycle>,
    next_tag: u64,
    observer: Option<Box<dyn ChannelObserver + Send>>,
}

/// The slab of every OCP link in one platform, owned by the simulation
/// harness and lent (`&`/`&mut`) to components on each tick.
///
/// Created empty; [`LinkArena::channel`] mints connected
/// [`MasterPort`]/[`SlavePort`] endpoint pairs. Because ports are plain
/// indices and the arena is an ordinary owned value, a platform built on
/// it is `Send`: a worker thread can own and run it outright.
#[derive(Default)]
pub struct LinkArena {
    links: Vec<Link>,
    /// Id of the first link stored in `links`. Always 0 for a whole
    /// platform arena; non-zero for a partition sub-arena produced by
    /// [`LinkArena::split_off`], whose ports keep their original ids.
    base: u32,
    /// When set, every write that becomes visible to the *other* side of
    /// a link next cycle appends a wake token to `wakes` (see
    /// [`LinkArena::set_wake_logging`]).
    log_wakes: bool,
    wakes: Vec<u32>,
}

/// Decodes a wake token logged by a [`LinkArena`] (see
/// [`LinkArena::set_wake_logging`]): the touched link, and whether the
/// component that must wake is the one holding the link's *master-side*
/// port (`true`) or its slave-side port (`false`).
pub fn wake_token(token: u32) -> (LinkId, bool) {
    (LinkId(token >> 1), token & 1 != 0)
}

impl LinkArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a connected master/slave endpoint pair for a new OCP link.
    ///
    /// `name` identifies the link in diagnostics and traces; `master` is
    /// stamped into every request asserted through the returned
    /// [`MasterPort`].
    pub fn channel(
        &mut self,
        name: impl Into<String>,
        master: MasterId,
    ) -> (MasterPort, SlavePort) {
        let raw = self.base as usize + self.links.len();
        let id = LinkId(u32::try_from(raw).expect("link arena overflow"));
        self.links.push(Link {
            name: name.into(),
            master,
            req: None,
            req_visible_at: None,
            accept: None,
            accept_visible_at: None,
            resp: VecDeque::new(),
            next_tag: 0,
            resp_visible_at: None,
            observer: None,
        });
        (MasterPort { link: id }, SlavePort { link: id })
    }

    /// The number of links minted so far.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether no links have been minted.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The name of link `id` (a borrow from the arena's string table).
    pub fn name(&self, id: LinkId) -> &str {
        &self.links[self.local(id)].name
    }

    /// Id of the first link this arena stores (0 for a whole-platform
    /// arena, the range start for a partition sub-arena).
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Splits off the tail of the arena: links with ids `>= at` move into
    /// the returned sub-arena, which keeps serving those ids unchanged.
    /// The partitioned mesh scheduler uses this to hand each worker
    /// thread exclusive ownership of a contiguous `LinkId` range; a port
    /// presented to the wrong sub-arena panics on its first access.
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside `[base, base + len]`.
    pub fn split_off(&mut self, at: u32) -> LinkArena {
        let local = (at as usize)
            .checked_sub(self.base as usize)
            .expect("split point below arena base");
        assert!(local <= self.links.len(), "split point past arena end");
        LinkArena {
            links: self.links.split_off(local),
            base: at,
            log_wakes: self.log_wakes,
            wakes: Vec::new(),
        }
    }

    /// Re-attaches a sub-arena produced by [`LinkArena::split_off`].
    ///
    /// # Panics
    ///
    /// Panics unless `tail` starts exactly where this arena ends.
    pub fn append(&mut self, mut tail: LinkArena) {
        assert_eq!(
            tail.base as usize,
            self.base as usize + self.links.len(),
            "appended arena is not contiguous with this one"
        );
        self.links.append(&mut tail.links);
        self.wakes.append(&mut tail.wakes);
    }

    /// Enables (or disables) wake-touch logging.
    ///
    /// While enabled, every port operation that makes new state visible
    /// to the component on the *other* end of a link next cycle —
    /// [`MasterPort::assert_request`]/[`MasterPort::forward_request`]
    /// towards the slave side, [`SlavePort::accept_request`]/
    /// [`SlavePort::push_response`] towards the master side — logs a
    /// token identifying the reader, drained via [`WakeEvents`]. The
    /// sparse scheduling engines use this to pull a sleeping component
    /// out of its wheel exactly when an inbound event becomes visible;
    /// consuming operations (`take_*`) wake nobody. Off by default and
    /// free when off (one branch per write).
    pub fn set_wake_logging(&mut self, on: bool) {
        self.log_wakes = on;
        if !on {
            self.wakes.clear();
        }
    }

    #[inline]
    fn log_wake(&mut self, id: LinkId, master_side: bool) {
        if self.log_wakes {
            self.wakes.push(id.0 << 1 | master_side as u32);
        }
    }

    #[inline]
    fn local(&self, id: LinkId) -> usize {
        id.index()
            .checked_sub(self.base as usize)
            .expect("link id below this sub-arena's range")
    }

    #[inline]
    fn link(&self, id: LinkId) -> &Link {
        let at = self.local(id);
        &self.links[at]
    }

    #[inline]
    fn link_mut(&mut self, id: LinkId) -> &mut Link {
        let at = self.local(id);
        &mut self.links[at]
    }
}

impl WakeEvents for LinkArena {
    fn drain_wakes(&mut self, wake: &mut dyn FnMut(u32)) {
        for i in 0..self.wakes.len() {
            wake(self.wakes[i]);
        }
        self.wakes.clear();
    }
}

impl std::fmt::Debug for LinkArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_list();
        for l in &self.links {
            d.entry(&format_args!(
                "{}: master={} req={:?} accept={:?} resp_queued={}",
                l.name,
                l.master,
                l.req.as_ref().map(|r| r.cmd),
                l.accept,
                l.resp.len()
            ));
        }
        d.finish()
    }
}

/// The core-side endpoint of an OCP link.
///
/// Owned by a CPU core or traffic generator; a plain `Copy` index into
/// the [`LinkArena`], which every method borrows explicitly.
#[derive(Debug, Clone, Copy)]
pub struct MasterPort {
    link: LinkId,
}

/// The network-side endpoint of an OCP link.
///
/// Owned by an interconnect (for master links) or by a slave device (for
/// slave links); a plain `Copy` index into the [`LinkArena`].
#[derive(Debug, Clone, Copy)]
pub struct SlavePort {
    link: LinkId,
}

impl MasterPort {
    /// The id of the link this port is an endpoint of.
    pub fn id(&self) -> LinkId {
        self.link
    }

    /// The link name supplied to [`LinkArena::channel`] (borrowed from
    /// the arena's string table).
    pub fn name<'a>(&self, net: &'a LinkArena) -> &'a str {
        &net.link(self.link).name
    }

    /// The master identity stamped into requests asserted here.
    pub fn master(&self, net: &LinkArena) -> MasterId {
        net.link(self.link).master
    }

    /// Installs a trace observer on this link, replacing any previous one.
    pub fn set_observer(&self, net: &mut LinkArena, observer: Box<dyn ChannelObserver + Send>) {
        net.link_mut(self.link).observer = Some(observer);
    }

    /// Removes and returns the installed observer, if any.
    pub fn take_observer(&self, net: &mut LinkArena) -> Option<Box<dyn ChannelObserver + Send>> {
        net.link_mut(self.link).observer.take()
    }

    /// Asserts `req` on the request wires in cycle `now`.
    ///
    /// The request keeps driving the wires until the network accepts it.
    /// The port stamps the master id and a fresh sequence tag; the stamped
    /// tag is returned.
    ///
    /// # Panics
    ///
    /// Panics if a previous request has not been accepted yet — a
    /// single-threaded blocking master can never legally do this, so it is
    /// a programming error in the master model.
    pub fn assert_request(&self, net: &mut LinkArena, mut req: OcpRequest, now: Cycle) -> u64 {
        let ch = net.link_mut(self.link);
        assert!(
            ch.req.is_none(),
            "master {} asserted a request while one is already pending on {}",
            ch.master,
            ch.name
        );
        req.master = ch.master;
        req.tag = ch.next_tag;
        ch.next_tag += 1;
        let tag = req.tag;
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_request(now, &req);
        }
        ch.req = Some(req);
        ch.req_visible_at = Some(now + 1);
        net.log_wake(self.link, false);
        tag
    }

    /// Asserts `req` without re-stamping its master id or tag.
    ///
    /// Used by interconnects to forward a request received on a master
    /// link onto a slave link while preserving its identity for response
    /// matching and tracing.
    ///
    /// # Panics
    ///
    /// Panics if a previous request has not been accepted yet.
    pub fn forward_request(&self, net: &mut LinkArena, req: OcpRequest, now: Cycle) {
        let ch = net.link_mut(self.link);
        assert!(
            ch.req.is_none(),
            "forwarded a request while one is already pending on {}",
            ch.name
        );
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_request(now, &req);
        }
        ch.req = Some(req);
        ch.req_visible_at = Some(now + 1);
        net.log_wake(self.link, false);
    }

    /// Whether a request is still driving the wires (not yet accepted).
    #[inline]
    pub fn request_pending(&self, net: &LinkArena) -> bool {
        net.link(self.link).req_visible_at.is_some()
    }

    /// Consumes the acceptance event, if one is visible in cycle `now`.
    ///
    /// Returns the accepted request's tag. An acceptance performed by the
    /// network in cycle *t* becomes visible in cycle *t + 1*.
    #[inline]
    pub fn take_accept(&self, net: &mut LinkArena, now: Cycle) -> Option<u64> {
        let ch = net.link_mut(self.link);
        match ch.accept_visible_at {
            Some(at) if at <= now => {}
            _ => return None,
        }
        let (tag, _) = ch.accept.take().expect("visibility said present");
        ch.accept_visible_at = None;
        Some(tag)
    }

    /// Consumes the oldest response, if one is visible in cycle `now`.
    ///
    /// A response pushed by the network in cycle *t* becomes visible in
    /// cycle *t + 1*.
    #[inline]
    pub fn take_response(&self, net: &mut LinkArena, now: Cycle) -> Option<OcpResponse> {
        let ch = net.link_mut(self.link);
        match ch.resp_visible_at {
            Some(at) if at <= now => {}
            _ => return None,
        }
        let (resp, _) = ch.resp.pop_front().expect("visibility said present");
        ch.resp_visible_at = ch.resp.front().map(|&(_, at)| at + 1);
        // A response subsumes the acceptance of the same request: a master
        // blocking on the response would otherwise leave the acceptance
        // event behind to confuse its next posted write.
        if matches!(ch.accept, Some((tag, _)) if tag == resp.tag) {
            ch.accept = None;
            ch.accept_visible_at = None;
        }
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_response_consumed(now, &resp);
        }
        Some(resp)
    }

    /// Whether the link is completely quiet (no request, acceptance or
    /// response in flight).
    #[inline]
    pub fn is_quiet(&self, net: &LinkArena) -> bool {
        let ch = net.link(self.link);
        ch.req_visible_at.is_none()
            && ch.accept_visible_at.is_none()
            && ch.resp_visible_at.is_none()
    }

    /// The earliest cycle at which a queued completion event (an
    /// acceptance or a response) becomes visible to this master.
    ///
    /// Returns `None` when neither kind of event is queued — the master
    /// cannot tell from its port alone when it will next unblock. Used by
    /// [`Component::next_activity`](ntg_sim::Component::next_activity)
    /// implementations of blocked masters to hint the engine's cycle
    /// skipper.
    #[inline]
    pub fn next_event_at(&self, net: &LinkArena) -> Option<Cycle> {
        let ch = net.link(self.link);
        match (ch.accept_visible_at, ch.resp_visible_at) {
            (Some(a), Some(r)) => Some(a.min(r)),
            (a, r) => a.or(r),
        }
    }
}

impl SlavePort {
    /// The id of the link this port is an endpoint of.
    pub fn id(&self) -> LinkId {
        self.link
    }

    /// The link name supplied to [`LinkArena::channel`] (borrowed from
    /// the arena's string table).
    pub fn name<'a>(&self, net: &'a LinkArena) -> &'a str {
        &net.link(self.link).name
    }

    /// Looks at the pending request without accepting it.
    ///
    /// Returns `None` if there is no request or if it was asserted in this
    /// very cycle (assert-to-visible is one cycle). The request is
    /// *borrowed*, not cloned — ownership transfers only at
    /// [`SlavePort::accept_request`].
    #[inline]
    pub fn peek_request<'a>(&self, net: &'a LinkArena, now: Cycle) -> Option<&'a OcpRequest> {
        let ch = net.link(self.link);
        match ch.req_visible_at {
            Some(at) if at <= now => ch.req.as_ref(),
            _ => None,
        }
    }

    /// Whether a request is visible in cycle `now` (clone-free; what
    /// arbiters scan every cycle).
    #[inline]
    pub fn has_request(&self, net: &LinkArena, now: Cycle) -> bool {
        matches!(net.link(self.link).req_visible_at, Some(at) if at <= now)
    }

    /// The visible request's `(addr, beats, expects_response)` without
    /// cloning its payload. Used by address decoders and slave timing.
    #[inline]
    pub fn peek_meta(&self, net: &LinkArena, now: Cycle) -> Option<(u32, u32, bool)> {
        let req = self.peek_request(net, now)?;
        Some((req.addr, req.beats(), req.cmd.expects_response()))
    }

    /// Accepts the pending request, freeing the request wires.
    ///
    /// Returns `None` under the same conditions as
    /// [`SlavePort::peek_request`]. Acceptance is recorded so the master
    /// can unblock (posted-write semantics) and reported to the observer.
    #[inline]
    pub fn accept_request(&self, net: &mut LinkArena, now: Cycle) -> Option<OcpRequest> {
        let ch = net.link_mut(self.link);
        match ch.req_visible_at {
            Some(at) if at <= now => {}
            _ => return None,
        }
        let req = ch.req.take().expect("visibility said present");
        ch.req_visible_at = None;
        // Acceptance is an edge notification: a master that does not care
        // about acceptances (it only ever waits on responses) may leave a
        // stale one behind, which the next acceptance simply replaces.
        ch.accept = Some((req.tag, now));
        ch.accept_visible_at = Some(now + 1);
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_accept(now, &req);
        }
        net.log_wake(self.link, true);
        Some(req)
    }

    /// Pushes a response towards the master in cycle `now`.
    #[inline]
    pub fn push_response(&self, net: &mut LinkArena, resp: OcpResponse, now: Cycle) {
        let ch = net.link_mut(self.link);
        if let Some(obs) = ch.observer.as_mut() {
            obs.on_response(now, &resp);
        }
        ch.resp.push_back((resp, now));
        if ch.resp_visible_at.is_none() {
            ch.resp_visible_at = Some(now + 1);
        }
        net.log_wake(self.link, true);
    }

    /// Whether the link is completely quiet; see [`MasterPort::is_quiet`].
    #[inline]
    pub fn is_quiet(&self, net: &LinkArena) -> bool {
        let ch = net.link(self.link);
        ch.req_visible_at.is_none()
            && ch.accept_visible_at.is_none()
            && ch.resp_visible_at.is_none()
    }

    /// The cycle from which the pending request (if any) is visible on
    /// this side of the link: one cycle after assertion.
    ///
    /// Unlike [`SlavePort::has_request`] this does not depend on `now`,
    /// so arbiters can hint the engine's cycle skipper about requests
    /// asserted this very cycle that only become actionable next cycle.
    #[inline]
    pub fn request_visible_at(&self, net: &LinkArena) -> Option<Cycle> {
        net.link(self.link).req_visible_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{OcpCmd, OcpStatus};

    fn channel(name: &str, master: MasterId) -> (LinkArena, MasterPort, SlavePort) {
        let mut net = LinkArena::new();
        let (m, s) = net.channel(name, master);
        (net, m, s)
    }

    #[test]
    fn request_invisible_in_assert_cycle() {
        let (mut net, m, s) = channel("l", MasterId(0));
        m.assert_request(&mut net, OcpRequest::read(0x10), 5);
        assert!(s.peek_request(&net, 5).is_none());
        assert!(s.accept_request(&mut net, 5).is_none());
        assert!(s.peek_request(&net, 6).is_some());
    }

    #[test]
    fn accept_frees_wires_and_notifies_master_next_cycle() {
        let (mut net, m, s) = channel("l", MasterId(2));
        let tag = m.assert_request(&mut net, OcpRequest::write(0x20, 1), 0);
        assert!(m.request_pending(&net));
        let req = s.accept_request(&mut net, 1).expect("visible at cycle 1");
        assert_eq!(req.master, MasterId(2));
        assert!(!m.request_pending(&net));
        // Acceptance performed in cycle 1 is not visible in cycle 1…
        assert_eq!(m.take_accept(&mut net, 1), None);
        // …but is in cycle 2, exactly once.
        assert_eq!(m.take_accept(&mut net, 2), Some(tag));
        assert_eq!(m.take_accept(&mut net, 3), None);
    }

    #[test]
    fn response_visible_one_cycle_after_push() {
        let (mut net, m, s) = channel("l", MasterId(0));
        m.assert_request(&mut net, OcpRequest::read(0x10), 0);
        s.accept_request(&mut net, 1);
        s.push_response(&mut net, OcpResponse::ok(vec![42], 0), 4);
        assert!(m.take_response(&mut net, 4).is_none());
        let r = m.take_response(&mut net, 5).expect("visible at 5");
        assert_eq!(r.data, vec![42]);
        assert_eq!(r.status, OcpStatus::Ok);
        assert!(m.take_response(&mut net, 6).is_none());
    }

    #[test]
    fn tags_increase_monotonically() {
        let (mut net, m, s) = channel("l", MasterId(0));
        let t0 = m.assert_request(&mut net, OcpRequest::read(0), 0);
        s.accept_request(&mut net, 1);
        m.take_accept(&mut net, 2);
        let t1 = m.assert_request(&mut net, OcpRequest::read(4), 2);
        assert_eq!(t1, t0 + 1);
    }

    #[test]
    #[should_panic(expected = "already pending")]
    fn double_assert_panics() {
        let (mut net, m, _s) = channel("l", MasterId(0));
        m.assert_request(&mut net, OcpRequest::read(0), 0);
        m.assert_request(&mut net, OcpRequest::read(4), 1);
    }

    #[test]
    fn quiet_reflects_all_in_flight_state() {
        let (mut net, m, s) = channel("l", MasterId(0));
        assert!(m.is_quiet(&net) && s.is_quiet(&net));
        m.assert_request(&mut net, OcpRequest::read(0), 0);
        assert!(!m.is_quiet(&net));
        s.accept_request(&mut net, 1);
        assert!(!m.is_quiet(&net), "unconsumed acceptance keeps link busy");
        m.take_accept(&mut net, 2);
        assert!(m.is_quiet(&net));
        s.push_response(&mut net, OcpResponse::ok(vec![1], 0), 3);
        assert!(!s.is_quiet(&net));
        m.take_response(&mut net, 4);
        assert!(m.is_quiet(&net) && s.is_quiet(&net));
    }

    #[test]
    fn responses_preserve_fifo_order() {
        let (mut net, m, s) = channel("l", MasterId(0));
        s.push_response(&mut net, OcpResponse::ok(vec![1], 0), 0);
        s.push_response(&mut net, OcpResponse::ok(vec![2], 1), 1);
        assert_eq!(m.take_response(&mut net, 5).unwrap().word(), 1);
        assert_eq!(m.take_response(&mut net, 5).unwrap().word(), 2);
    }

    #[test]
    fn visibility_helpers_report_event_cycles() {
        let (mut net, m, s) = channel("l", MasterId(0));
        assert_eq!(s.request_visible_at(&net), None);
        assert_eq!(m.next_event_at(&net), None);
        m.assert_request(&mut net, OcpRequest::read(0x10), 5);
        // Asserted at 5 → visible to the slave from 6.
        assert_eq!(s.request_visible_at(&net), Some(6));
        s.accept_request(&mut net, 6);
        assert_eq!(s.request_visible_at(&net), None);
        // Accepted at 6 → acceptance visible to the master from 7.
        assert_eq!(m.next_event_at(&net), Some(7));
        s.push_response(&mut net, OcpResponse::ok(vec![1], 0), 6);
        // Response also from 7; min of the two.
        assert_eq!(m.next_event_at(&net), Some(7));
        m.take_response(&mut net, 7);
        m.take_accept(&mut net, 7);
        assert_eq!(m.next_event_at(&net), None);
    }

    #[test]
    fn burst_request_round_trips_through_channel() {
        let (mut net, m, s) = channel("l", MasterId(1));
        m.assert_request(&mut net, OcpRequest::burst_read(0x100, 4), 0);
        let req = s.accept_request(&mut net, 1).unwrap();
        assert_eq!(req.cmd, OcpCmd::BurstRead);
        assert_eq!(req.beats(), 4);
    }

    #[test]
    fn split_off_sub_arena_serves_original_ids() {
        let mut net = LinkArena::new();
        let (m0, _s0) = net.channel("a", MasterId(0));
        let (m1, s1) = net.channel("b", MasterId(1));
        let (m2, _s2) = net.channel("c", MasterId(2));
        let mut tail = net.split_off(1);
        assert_eq!(net.len(), 1);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.base(), 1);
        // Ports minted before the split keep working against the
        // sub-arena that owns their range.
        assert_eq!(m1.name(&tail), "b");
        assert_eq!(m2.name(&tail), "c");
        assert_eq!(m0.name(&net), "a");
        m1.assert_request(&mut tail, OcpRequest::read(0x10), 3);
        assert!(s1.peek_request(&tail, 4).is_some());
        // New links minted on a sub-arena continue the global id space.
        let (m3, _s3) = tail.channel("d", MasterId(3));
        assert_eq!(m3.id().index(), 3);
        net.append(tail);
        assert_eq!(net.len(), 4);
        assert!(s1.peek_request(&net, 4).is_some());
        assert_eq!(net.name(m3.id()), "d");
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn append_rejects_non_contiguous_tail() {
        let mut net = LinkArena::new();
        net.channel("a", MasterId(0));
        net.channel("b", MasterId(1));
        let tail = {
            let mut other = LinkArena::new();
            other.channel("x", MasterId(0));
            other.channel("y", MasterId(1));
            other.split_off(1)
        };
        net.append(tail); // tail.base == 1 but net ends at 2
    }

    #[test]
    fn wake_log_records_producer_touches_only() {
        let (mut net, m, s) = channel("l", MasterId(0));
        let mut tokens = Vec::new();
        let drain = |net: &mut LinkArena| {
            let mut got = Vec::new();
            net.drain_wakes(&mut |t| got.push(wake_token(t)));
            got
        };
        // Logging off: nothing recorded.
        m.assert_request(&mut net, OcpRequest::read(0x10), 0);
        assert!(drain(&mut net).is_empty());
        s.accept_request(&mut net, 1);
        net.set_wake_logging(true);
        // Producer ops log the reader's side; consumers log nothing.
        s.push_response(&mut net, OcpResponse::ok(vec![1], 0), 2);
        tokens.extend(drain(&mut net));
        assert_eq!(tokens, vec![(m.id(), true)]);
        m.take_response(&mut net, 3);
        assert!(drain(&mut net).is_empty());
        m.assert_request(&mut net, OcpRequest::read(0x14), 3);
        assert_eq!(drain(&mut net), vec![(m.id(), false)]);
        s.accept_request(&mut net, 4);
        assert_eq!(drain(&mut net), vec![(m.id(), true)]);
        // Disabling clears any undrained backlog.
        s.push_response(&mut net, OcpResponse::ok(vec![2], 0), 5);
        net.set_wake_logging(false);
        assert!(drain(&mut net).is_empty());
    }

    #[test]
    fn ports_are_copy_and_arena_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let (net, m, s) = channel("l", MasterId(0));
        let (m2, s2) = (m, s); // Copy, not move
        assert_eq!(m2.id(), m.id());
        assert_eq!(s2.id(), s.id());
        assert_send(&net);
        assert_eq!(net.name(m.id()), "l");
        assert_eq!(net.len(), 1);
    }
}
