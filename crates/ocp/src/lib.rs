//! OCP-style point-to-point interface protocol for the `ntg` platform.
//!
//! The reproduced paper (Mahadevan et al., DATE 2005) attaches every IP
//! core and every traffic generator to the interconnect through an OCP
//! socket; because both speak the same interface, cores and TGs are
//! plug-compatible (the paper's Figure 1). This crate is our OCP: it
//! defines the transaction vocabulary ([`OcpRequest`], [`OcpResponse`]),
//! the arena of single-slot handshaked links that carries them
//! ([`LinkArena`] with its `Copy` [`MasterPort`]/[`SlavePort`] index
//! endpoints), and the observer hook ([`ChannelObserver`]) that
//! `ntg-trace` uses to capture `.trc` traces at the interface boundary.
//!
//! The arena is owned by the simulation harness and lent by reference to
//! every component callback: no `Rc`/`RefCell` shared-ownership
//! bookkeeping on the hot path, and a fully wired platform is a plain
//! `Send` value a worker thread can own.
//!
//! # Handshake timing
//!
//! A channel is a pair of registered slots (request and response). Values
//! written in cycle *t* become visible to the other side in cycle *t + 1*
//! at the earliest, regardless of component tick order — this one rule is
//! what makes the whole simulation deterministic. The protocol is:
//!
//! 1. the master *asserts* a request (`MasterPort::assert_request`);
//! 2. the interconnect *accepts* it one or more cycles later
//!    (`SlavePort::accept_request`); posted writes unblock the master at
//!    this point (`MasterPort::take_accept`);
//! 3. for reads, a response is eventually *pushed* back
//!    (`SlavePort::push_response`) and the master consumes it
//!    (`MasterPort::take_response`).
//!
//! Trace timestamps are defined as: request assert cycle, request accept
//! cycle, response push cycle. A blocked master resumes execution on the
//! cycle *after* the unblocking event, which is exactly the arithmetic the
//! trace-to-program translator in `ntg-core` relies on.
//!
//! # Example
//!
//! ```
//! use ntg_ocp::{LinkArena, MasterId, OcpRequest};
//!
//! let mut net = LinkArena::new();
//! let (master, slave) = net.channel("cpu0", MasterId(0));
//! // Cycle 0: the master asserts a read.
//! master.assert_request(&mut net, OcpRequest::read(0x104), 0);
//! // Cycle 1: the slave side can now see and accept it.
//! assert!(slave.peek_request(&net, 1).is_some());
//! let req = slave.accept_request(&mut net, 1).unwrap();
//! assert_eq!(req.addr, 0x104);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod data;
mod observer;
mod types;

pub use channel::{wake_token, LinkArena, LinkId, MasterPort, SlavePort};
pub use data::DataWords;
pub use observer::{ChannelObserver, NullObserver};
pub use types::{MasterId, OcpCmd, OcpRequest, OcpResponse, OcpStatus, SlaveId};
