//! [`DataWords`]: the inline small-vector carrying OCP payloads.
//!
//! The cycle-true hot path moves one of these per request and response.
//! The common OCP burst on this platform is at most four words (a cache
//! line, see `CacheConfig::default_l1`), so payloads up to
//! [`DataWords::INLINE`] words live inside the value itself — asserting
//! a request, servicing it and pushing the response performs **zero
//! heap allocations**. Longer bursts (up to the OCP limit of 255 beats)
//! spill to a heap buffer exactly once at construction.
//!
//! Equality, ordering-insensitive hashing and `Debug` all see only the
//! logical word slice, never the representation: an inline payload and a
//! spilled payload with the same words compare equal and hash alike, so
//! traces, codecs and tests are representation-blind.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

/// Payload words of one OCP transaction, inline up to
/// [`DataWords::INLINE`] words.
#[derive(Clone)]
pub struct DataWords(Repr);

#[derive(Clone)]
enum Repr {
    /// `len` words stored in `buf[..len]`.
    Inline {
        len: u8,
        buf: [u32; DataWords::INLINE],
    },
    /// Payloads longer than [`DataWords::INLINE`] words.
    Heap(Vec<u32>),
}

impl DataWords {
    /// Payloads up to this many words are stored inline (no heap).
    pub const INLINE: usize = 4;

    /// An empty payload (what read requests carry).
    pub const fn new() -> Self {
        DataWords(Repr::Inline {
            len: 0,
            buf: [0; Self::INLINE],
        })
    }

    /// A single-word payload (single writes, single read responses).
    pub const fn one(word: u32) -> Self {
        DataWords(Repr::Inline {
            len: 1,
            buf: [word, 0, 0, 0],
        })
    }

    /// `count` copies of `word` (the TG `BurstWrite` payload).
    pub fn splat(word: u32, count: usize) -> Self {
        if count <= Self::INLINE {
            let mut buf = [0; Self::INLINE];
            buf[..count].fill(word);
            DataWords(Repr::Inline {
                len: count as u8,
                buf,
            })
        } else {
            DataWords(Repr::Heap(vec![word; count]))
        }
    }

    /// Copies a slice into a payload.
    pub fn from_slice(words: &[u32]) -> Self {
        if words.len() <= Self::INLINE {
            let mut buf = [0; Self::INLINE];
            buf[..words.len()].copy_from_slice(words);
            DataWords(Repr::Inline {
                len: words.len() as u8,
                buf,
            })
        } else {
            DataWords(Repr::Heap(words.to_vec()))
        }
    }

    /// Appends one word, spilling to the heap at the inline boundary.
    pub fn push(&mut self, word: u32) {
        match &mut self.0 {
            Repr::Inline { len, buf } if (*len as usize) < Self::INLINE => {
                buf[*len as usize] = word;
                *len += 1;
            }
            Repr::Inline { len, buf } => {
                let mut v = Vec::with_capacity(Self::INLINE * 2);
                v.extend_from_slice(&buf[..*len as usize]);
                v.push(word);
                self.0 = Repr::Heap(v);
            }
            Repr::Heap(v) => v.push(word),
        }
    }

    /// Number of payload words.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload as a word slice.
    pub fn as_slice(&self) -> &[u32] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Whether the words live inline (no heap buffer). Exposed so tests
    /// can pin the inline/spill boundary.
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }

    /// Iterates over the payload words.
    pub fn iter(&self) -> std::slice::Iter<'_, u32> {
        self.as_slice().iter()
    }
}

impl Default for DataWords {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for DataWords {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl AsRef<[u32]> for DataWords {
    fn as_ref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl fmt::Debug for DataWords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for DataWords {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for DataWords {}

impl Hash for DataWords {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Matches `<[u32] as Hash>`, and thereby the derived hash the
        // payload fields had when they were plain `Vec<u32>`.
        self.as_slice().hash(state);
    }
}

impl From<Vec<u32>> for DataWords {
    fn from(v: Vec<u32>) -> Self {
        if v.len() <= Self::INLINE {
            Self::from_slice(&v)
        } else {
            DataWords(Repr::Heap(v))
        }
    }
}

impl From<&[u32]> for DataWords {
    fn from(s: &[u32]) -> Self {
        Self::from_slice(s)
    }
}

impl<const N: usize> From<[u32; N]> for DataWords {
    fn from(a: [u32; N]) -> Self {
        Self::from_slice(&a)
    }
}

impl FromIterator<u32> for DataWords {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut out = Self::new();
        for w in iter {
            out.push(w);
        }
        out
    }
}

impl<'a> IntoIterator for &'a DataWords {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// Mixed-type equality keeps call sites and tests written against the
// old `Vec<u32>` payloads working unchanged.
impl PartialEq<Vec<u32>> for DataWords {
    fn eq(&self, other: &Vec<u32>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<DataWords> for Vec<u32> {
    fn eq(&self, other: &DataWords) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u32]> for DataWords {
    fn eq(&self, other: &[u32]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u32; N]> for DataWords {
    fn eq(&self, other: &[u32; N]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn empty_and_one_are_inline() {
        assert!(DataWords::new().is_inline());
        assert!(DataWords::new().is_empty());
        let d = DataWords::one(7);
        assert!(d.is_inline());
        assert_eq!(d.as_slice(), &[7]);
    }

    #[test]
    fn inline_boundary_is_exactly_four_words() {
        let at = DataWords::from_slice(&[1, 2, 3, 4]);
        assert!(at.is_inline());
        assert_eq!(at.len(), 4);
        let over = DataWords::from_slice(&[1, 2, 3, 4, 5]);
        assert!(!over.is_inline());
        assert_eq!(over.len(), 5);
    }

    #[test]
    fn push_spills_at_the_boundary_and_keeps_contents() {
        let mut d = DataWords::new();
        for w in 1..=4 {
            d.push(w);
            assert!(d.is_inline());
        }
        d.push(5);
        assert!(!d.is_inline());
        assert_eq!(d.as_slice(), &[1, 2, 3, 4, 5]);
        d.push(6);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn splat_matches_vec_semantics() {
        assert_eq!(DataWords::splat(9, 3), vec![9, 9, 9]);
        assert!(DataWords::splat(9, 3).is_inline());
        let long = DataWords::splat(2, 8);
        assert!(!long.is_inline());
        assert_eq!(long, vec![2; 8]);
        assert!(DataWords::splat(1, 0).is_empty());
    }

    #[test]
    fn collect_builds_incrementally() {
        let d: DataWords = (0..6).collect();
        assert_eq!(d.as_slice(), &[0, 1, 2, 3, 4, 5]);
        let short: DataWords = (0..2).collect();
        assert!(short.is_inline());
    }

    #[test]
    fn equality_and_hash_are_representation_blind() {
        // Same words, once inline and once in a forced heap buffer.
        let inline = DataWords::from_slice(&[1, 2, 3]);
        let heap = DataWords(Repr::Heap(vec![1, 2, 3]));
        assert!(!heap.is_inline());
        assert_eq!(inline, heap);
        assert_eq!(hash_of(&inline), hash_of(&heap));
    }

    #[test]
    fn vec_round_trip_and_mixed_equality() {
        let v = vec![10, 20, 30];
        let d: DataWords = v.clone().into();
        assert_eq!(d, v);
        assert_eq!(v, d);
        assert_eq!(d, [10, 20, 30]);
        let long = vec![1; 9];
        let dl: DataWords = long.clone().into();
        assert!(!dl.is_inline());
        assert_eq!(dl, long);
    }

    #[test]
    fn slice_access_via_deref() {
        let d = DataWords::from_slice(&[5, 6]);
        assert_eq!(d.first(), Some(&5));
        assert_eq!(d.iter().sum::<u32>(), 11);
        assert_eq!(&d[1], &6);
    }

    #[test]
    fn debug_prints_the_slice() {
        assert_eq!(format!("{:?}", DataWords::from_slice(&[1, 2])), "[1, 2]");
    }
}
