//! Transaction vocabulary: commands, requests, responses and identifiers.

use std::fmt;

use crate::data::DataWords;

/// Identifies an OCP master (a CPU core or traffic generator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MasterId(pub u16);

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// Identifies an OCP slave (a memory, semaphore bank, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlaveId(pub u16);

impl fmt::Display for SlaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The four OCP transaction commands used by the platform.
///
/// These are exactly the transaction kinds the paper's traffic generator
/// can issue (its Table 1): single and burst variants of read and write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OcpCmd {
    /// Blocking single-word read.
    Read,
    /// Posted single-word write.
    Write,
    /// Blocking incrementing burst read (cache line refills).
    BurstRead,
    /// Posted incrementing burst write.
    BurstWrite,
}

impl OcpCmd {
    /// Whether this command carries write data towards the slave.
    pub fn is_write(self) -> bool {
        matches!(self, OcpCmd::Write | OcpCmd::BurstWrite)
    }

    /// Whether the master blocks until a data response arrives.
    ///
    /// Writes are posted: the master only waits for the request to be
    /// *accepted*, never for a response.
    pub fn expects_response(self) -> bool {
        !self.is_write()
    }

    /// The short mnemonic used in `.trc` trace files.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OcpCmd::Read => "RD",
            OcpCmd::Write => "WR",
            OcpCmd::BurstRead => "BRD",
            OcpCmd::BurstWrite => "BWR",
        }
    }
}

impl fmt::Display for OcpCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Completion status carried by an [`OcpResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OcpStatus {
    /// The transaction completed normally.
    #[default]
    Ok,
    /// The address decoded to no slave, or the slave rejected the access.
    Error,
}

/// One OCP request as seen at a master interface.
///
/// Word-addressed 32-bit data bus; burst transactions cover `burst`
/// consecutive words starting at `addr`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OcpRequest {
    /// The transaction command.
    pub cmd: OcpCmd,
    /// Byte address of the first (or only) word. Must be word-aligned.
    pub addr: u32,
    /// Write payload: one word per beat for writes, empty for reads.
    /// Inline up to [`DataWords::INLINE`] words — the cycle-true hot
    /// path never heap-allocates for the common short burst.
    pub data: DataWords,
    /// Number of beats (words). `1` for single transactions.
    pub burst: u8,
    /// The issuing master. Stamped by the [`MasterPort`] when asserted.
    ///
    /// [`MasterPort`]: crate::MasterPort
    pub master: MasterId,
    /// Per-master monotonically increasing sequence number, stamped by the
    /// port; lets responses be matched to requests in traces and tests.
    pub tag: u64,
}

impl OcpRequest {
    /// Builds a single-word blocking read.
    pub fn read(addr: u32) -> Self {
        Self {
            cmd: OcpCmd::Read,
            addr,
            data: DataWords::new(),
            burst: 1,
            master: MasterId::default(),
            tag: 0,
        }
    }

    /// Builds a single-word posted write.
    pub fn write(addr: u32, data: u32) -> Self {
        Self {
            cmd: OcpCmd::Write,
            addr,
            data: DataWords::one(data),
            burst: 1,
            master: MasterId::default(),
            tag: 0,
        }
    }

    /// Builds an incrementing burst read of `beats` words.
    ///
    /// # Panics
    ///
    /// Panics if `beats` is zero.
    pub fn burst_read(addr: u32, beats: u8) -> Self {
        assert!(beats > 0, "burst length must be non-zero");
        Self {
            cmd: OcpCmd::BurstRead,
            addr,
            data: DataWords::new(),
            burst: beats,
            master: MasterId::default(),
            tag: 0,
        }
    }

    /// Builds an incrementing burst write; one beat per data word.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or longer than 255 beats.
    pub fn burst_write(addr: u32, data: impl Into<DataWords>) -> Self {
        let data = data.into();
        assert!(
            !data.is_empty() && data.len() <= u8::MAX as usize,
            "burst write must carry 1..=255 words"
        );
        let burst = data.len() as u8;
        Self {
            cmd: OcpCmd::BurstWrite,
            addr,
            data,
            burst,
            master: MasterId::default(),
            tag: 0,
        }
    }

    /// The number of data beats on the bus for this request.
    pub fn beats(&self) -> u32 {
        u32::from(self.burst)
    }

    /// The last byte address touched by this (possibly burst) request.
    pub fn end_addr(&self) -> u32 {
        self.addr + (self.beats() - 1) * 4 + 3
    }
}

/// One OCP response as seen at a master interface.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OcpResponse {
    /// Read payload: one word per beat. Empty for error responses.
    /// Inline up to [`DataWords::INLINE`] words (see [`OcpRequest::data`]).
    pub data: DataWords,
    /// Completion status.
    pub status: OcpStatus,
    /// Copied from the request this response answers.
    pub tag: u64,
}

impl OcpResponse {
    /// Builds a successful response carrying `data`.
    pub fn ok(data: impl Into<DataWords>, tag: u64) -> Self {
        Self {
            data: data.into(),
            status: OcpStatus::Ok,
            tag,
        }
    }

    /// Builds an error response.
    pub fn error(tag: u64) -> Self {
        Self {
            data: DataWords::new(),
            status: OcpStatus::Error,
            tag,
        }
    }

    /// First data word, or zero if the response carries none.
    pub fn word(&self) -> u32 {
        self.data.first().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_classification() {
        assert!(OcpCmd::Write.is_write());
        assert!(OcpCmd::BurstWrite.is_write());
        assert!(!OcpCmd::Read.is_write());
        assert!(OcpCmd::Read.expects_response());
        assert!(OcpCmd::BurstRead.expects_response());
        assert!(!OcpCmd::Write.expects_response());
    }

    #[test]
    fn mnemonics_match_trace_format() {
        assert_eq!(OcpCmd::Read.mnemonic(), "RD");
        assert_eq!(OcpCmd::Write.mnemonic(), "WR");
        assert_eq!(OcpCmd::BurstRead.mnemonic(), "BRD");
        assert_eq!(OcpCmd::BurstWrite.mnemonic(), "BWR");
    }

    #[test]
    fn constructors_fill_fields() {
        let r = OcpRequest::read(0x104);
        assert_eq!(r.cmd, OcpCmd::Read);
        assert_eq!(r.burst, 1);
        assert!(r.data.is_empty());

        let w = OcpRequest::write(0x20, 0x111);
        assert_eq!(w.data, vec![0x111]);

        let br = OcpRequest::burst_read(0x100, 4);
        assert_eq!(br.beats(), 4);
        assert_eq!(br.end_addr(), 0x100 + 12 + 3);

        let bw = OcpRequest::burst_write(0x100, vec![1, 2, 3]);
        assert_eq!(bw.burst, 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_length_burst_read_rejected() {
        let _ = OcpRequest::burst_read(0, 0);
    }

    #[test]
    #[should_panic(expected = "1..=255")]
    fn empty_burst_write_rejected() {
        let _ = OcpRequest::burst_write(0, Vec::new());
    }

    #[test]
    fn response_word_defaults_to_zero() {
        assert_eq!(OcpResponse::error(1).word(), 0);
        assert_eq!(OcpResponse::ok(vec![7, 8], 2).word(), 7);
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(MasterId(3).to_string(), "M3");
        assert_eq!(SlaveId(1).to_string(), "S1");
    }
}
