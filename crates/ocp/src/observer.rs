//! Observer hook for capturing interface activity (used by `ntg-trace`).

use ntg_sim::Cycle;

use crate::types::{OcpRequest, OcpResponse};

/// Receives notifications about every event on one OCP link.
///
/// The trace-collection machinery in `ntg-trace` implements this trait to
/// record `.trc` files at the master interface boundary, exactly where the
/// paper collects its traces. Observers must not influence simulated
/// behaviour — they see events but cannot alter them.
///
/// Event timestamps follow the channel's definitions: `on_request` fires
/// at the assert cycle, `on_accept` at the accept cycle, `on_response` at
/// the push cycle (all *producer*-side instants; consumers see the values
/// one cycle later).
pub trait ChannelObserver {
    /// A master asserted `req` in cycle `now`.
    fn on_request(&mut self, now: Cycle, req: &OcpRequest);

    /// The network accepted `req` in cycle `now`.
    fn on_accept(&mut self, now: Cycle, req: &OcpRequest);

    /// The network pushed `resp` towards the master in cycle `now`.
    fn on_response(&mut self, now: Cycle, resp: &OcpResponse);

    /// The master consumed `resp` in cycle `now`.
    ///
    /// Most observers only need the push instant; the default does
    /// nothing.
    fn on_response_consumed(&mut self, now: Cycle, resp: &OcpResponse) {
        let _ = (now, resp);
    }
}

/// An observer that discards every event.
///
/// Useful as a placeholder and for measuring observer-hook overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl ChannelObserver for NullObserver {
    fn on_request(&mut self, _now: Cycle, _req: &OcpRequest) {}
    fn on_accept(&mut self, _now: Cycle, _req: &OcpRequest) {}
    fn on_response(&mut self, _now: Cycle, _resp: &OcpResponse) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::LinkArena;
    use crate::types::{MasterId, OcpCmd};
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct Log {
        events: Vec<(String, Cycle)>,
    }

    struct SharedLog(Arc<Mutex<Log>>);

    impl ChannelObserver for SharedLog {
        fn on_request(&mut self, now: Cycle, req: &OcpRequest) {
            self.0
                .lock()
                .unwrap()
                .events
                .push((format!("req-{}", req.cmd), now));
        }
        fn on_accept(&mut self, now: Cycle, req: &OcpRequest) {
            self.0
                .lock()
                .unwrap()
                .events
                .push((format!("ack-{}", req.cmd), now));
        }
        fn on_response(&mut self, now: Cycle, _resp: &OcpResponse) {
            self.0.lock().unwrap().events.push(("resp".into(), now));
        }
    }

    #[test]
    fn observer_sees_producer_side_timestamps() {
        let log = Arc::new(Mutex::new(Log::default()));
        let mut net = LinkArena::new();
        let (m, s) = net.channel("l", MasterId(0));
        m.set_observer(&mut net, Box::new(SharedLog(log.clone())));

        m.assert_request(&mut net, crate::OcpRequest::read(0x40), 3);
        s.accept_request(&mut net, 4);
        s.push_response(&mut net, crate::OcpResponse::ok(vec![9], 0), 8);
        m.take_response(&mut net, 9);

        let events = log.lock().unwrap().events.clone();
        assert_eq!(
            events,
            vec![
                (format!("req-{}", OcpCmd::Read), 3),
                (format!("ack-{}", OcpCmd::Read), 4),
                ("resp".into(), 8),
            ]
        );
    }

    #[test]
    fn null_observer_is_inert() {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("l", MasterId(0));
        m.set_observer(&mut net, Box::new(NullObserver));
        m.assert_request(&mut net, crate::OcpRequest::write(0, 1), 0);
        assert!(s.accept_request(&mut net, 1).is_some());
        assert!(m.take_observer(&mut net).is_some());
        assert!(m.take_observer(&mut net).is_none());
    }
}
