//! Property-based tests of the OCP channel handshake invariants.

use ntg_ocp::{channel, MasterId, OcpRequest, OcpResponse};
use proptest::prelude::*;

proptest! {
    /// Visibility rule: whatever cycle a request is asserted in, it is
    /// invisible that cycle and visible every later cycle until accepted.
    #[test]
    fn request_visibility_boundary(assert_at in 0u64..1000, probe in 0u64..1010) {
        let (m, s) = channel("l", MasterId(0));
        m.assert_request(OcpRequest::read(0x10), assert_at);
        let visible = s.peek_request(probe).is_some();
        prop_assert_eq!(visible, probe > assert_at);
    }

    /// Acceptance and response events obey the same one-cycle rule.
    #[test]
    fn completion_visibility_boundary(at in 0u64..1000, probe in 0u64..1010) {
        let (m, s) = channel("l", MasterId(0));
        m.assert_request(OcpRequest::read(0x10), 0);
        prop_assume!(at > 0);
        s.accept_request(at);
        prop_assert_eq!(m.take_accept(probe).is_some(), probe > at);
        let (m2, s2) = channel("l2", MasterId(0));
        let _ = m2;
        s2.push_response(OcpResponse::ok(vec![1], 0), at);
        prop_assert_eq!(m2.take_response(probe).is_some(), probe > at);
    }

    /// Tags increase strictly monotonically over any sequence of
    /// transactions, and each response matches its request's tag.
    #[test]
    fn tags_monotonic(n in 1usize..50) {
        let (m, s) = channel("l", MasterId(3));
        let mut now = 0u64;
        let mut last_tag = None;
        for i in 0..n {
            let tag = m.assert_request(OcpRequest::read(i as u32 * 4), now);
            if let Some(prev) = last_tag {
                prop_assert_eq!(tag, prev + 1);
            }
            last_tag = Some(tag);
            let req = s.accept_request(now + 1).expect("visible");
            prop_assert_eq!(req.tag, tag);
            prop_assert_eq!(req.master, MasterId(3));
            s.push_response(OcpResponse::ok(vec![0], req.tag), now + 2);
            let resp = m.take_response(now + 3).expect("visible");
            prop_assert_eq!(resp.tag, tag);
            now += 4;
        }
    }

    /// A link returns to quiet after any completed transaction, whatever
    /// the timing offsets involved.
    #[test]
    fn quiet_after_completion(d1 in 1u64..10, d2 in 1u64..10, write in any::<bool>()) {
        let (m, s) = channel("l", MasterId(0));
        let req = if write {
            OcpRequest::write(0x20, 9)
        } else {
            OcpRequest::read(0x20)
        };
        let expects = req.cmd.expects_response();
        m.assert_request(req, 0);
        let req = s.accept_request(d1).expect("visible after d1 >= 1");
        if expects {
            s.push_response(OcpResponse::ok(vec![5], req.tag), d1 + d2);
            prop_assert!(m.take_response(d1 + d2 + 1).is_some());
        } else {
            prop_assert!(m.take_accept(d1 + 1).is_some());
        }
        prop_assert!(m.is_quiet(), "link must be quiet after completion");
        prop_assert!(s.is_quiet());
    }
}
