//! Property-based tests for the TG ISA, program formats and translator.

use ntg_core::tgp::{from_tgp, to_tgp};
use ntg_core::{
    assemble, disassemble, TgCond, TgImage, TgInstr, TgItem, TgReg, TgSymInstr, TraceTranslator,
    TranslationMode, TranslatorConfig,
};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = TgReg> {
    (0u8..16).prop_map(TgReg::new)
}

fn cond() -> impl Strategy<Value = TgCond> {
    prop_oneof![
        Just(TgCond::Eq),
        Just(TgCond::Ne),
        Just(TgCond::Ltu),
        Just(TgCond::Geu),
    ]
}

fn any_tg_instr(max_target: u32) -> impl Strategy<Value = TgInstr> {
    prop_oneof![
        reg().prop_map(|addr| TgInstr::Read { addr }),
        (reg(), reg()).prop_map(|(addr, data)| TgInstr::Write { addr, data }),
        (reg(), reg()).prop_map(|(addr, count)| TgInstr::BurstRead { addr, count }),
        (reg(), reg(), reg()).prop_map(|(addr, data, count)| TgInstr::BurstWrite {
            addr,
            data,
            count
        }),
        (reg(), reg(), cond(), 0..max_target).prop_map(|(a, b, cond, target)| TgInstr::If {
            a,
            b,
            cond,
            target
        }),
        (0..max_target).prop_map(|target| TgInstr::Jump { target }),
        (reg(), any::<u32>()).prop_map(|(reg, value)| TgInstr::SetRegister { reg, value }),
        (1u32..1_000_000).prop_map(|cycles| TgInstr::Idle { cycles }),
        any::<u64>().prop_map(|cycle| TgInstr::IdleUntil { cycle }),
        Just(TgInstr::Halt),
    ]
}

proptest! {
    /// Every TG instruction survives binary encode/decode.
    #[test]
    fn tg_isa_round_trip(instr in any_tg_instr(1 << 20)) {
        prop_assert_eq!(TgInstr::decode(instr.encode()), Ok(instr));
    }

    /// Arbitrary word triples never panic the decoder, and successful
    /// decodes re-encode to a fixpoint.
    #[test]
    fn tg_decode_never_panics(w0 in any::<u32>(), w1 in any::<u32>(), w2 in any::<u32>()) {
        if let Ok(instr) = TgInstr::decode([w0, w1, w2]) {
            prop_assert_eq!(TgInstr::decode(instr.encode()), Ok(instr));
        }
    }
}

/// An arbitrary valid TG image (targets inside the program).
fn any_image() -> impl Strategy<Value = TgImage> {
    (1usize..40).prop_flat_map(|n| {
        (
            any::<u16>(),
            prop::collection::vec((reg(), any::<u32>()), 0..8),
            prop::collection::vec(any_tg_instr(n as u32), n),
        )
            .prop_map(|(master, inits, instrs)| TgImage {
                master,
                thread: 0,
                inits,
                instrs,
            })
    })
}

proptest! {
    /// Images survive byte serialisation.
    #[test]
    fn image_bytes_round_trip(image in any_image()) {
        // Targets generated may exceed the instruction count when n is
        // small; clamp them into range first so the image is valid.
        let mut image = image;
        let len = image.instrs.len() as u32;
        for i in &mut image.instrs {
            match i {
                TgInstr::If { target, .. } | TgInstr::Jump { target } => {
                    *target %= len;
                }
                _ => {}
            }
        }
        let bytes = image.to_bytes();
        prop_assert_eq!(TgImage::from_bytes(&bytes), Ok(image));
    }

    /// Disassembling and re-assembling any valid image is the identity.
    #[test]
    fn disassemble_assemble_fixpoint(image in any_image()) {
        let mut image = image;
        let len = image.instrs.len() as u32;
        for i in &mut image.instrs {
            match i {
                TgInstr::If { target, .. } | TgInstr::Jump { target } => {
                    *target %= len;
                }
                _ => {}
            }
        }
        // Idle(0) is not representable symbolically; keep images valid.
        for i in &mut image.instrs {
            if let TgInstr::Idle { cycles } = i {
                if *cycles == 0 {
                    *cycles = 1;
                }
            }
        }
        let program = disassemble(&image);
        let back = assemble(&program).expect("disassembly must assemble");
        prop_assert_eq!(back, image);
    }

    /// `.tgp` text round-trips through print/parse for any program the
    /// disassembler can produce.
    #[test]
    fn tgp_text_round_trip(image in any_image()) {
        let mut image = image;
        let len = image.instrs.len() as u32;
        for i in &mut image.instrs {
            match i {
                TgInstr::If { target, .. } | TgInstr::Jump { target } => {
                    *target %= len;
                }
                TgInstr::Idle { cycles } if *cycles == 0 => *cycles = 1,
                _ => {}
            }
        }
        let program = disassemble(&image);
        let text = to_tgp(&program);
        let back = from_tgp(&text).expect("printed programs parse");
        prop_assert_eq!(back, program);
    }
}

/// A well-formed synthetic trace: alternating transactions with
/// monotonically increasing timestamps.
fn any_trace() -> impl Strategy<Value = ntg_trace::MasterTrace> {
    let tx = (
        any::<bool>(), // write?
        0u32..0x100,   // word index
        any::<u32>(),  // data
        1u64..40,      // gap to request
        1u64..20,      // accept delay
        1u64..30,      // response delay
    );
    prop::collection::vec(tx, 0..25).prop_map(|txs| {
        use ntg_trace::TraceEvent;
        let mut trace = ntg_trace::MasterTrace::new(0, 5);
        let mut now = 0u64;
        for (is_write, word, data, gap, acc, resp) in txs {
            now += gap * 5;
            let addr = 0x1000 + word * 4;
            if is_write {
                trace.events.push(TraceEvent::Request {
                    cmd: ntg_ocp::OcpCmd::Write,
                    addr,
                    data: vec![data],
                    burst: 1,
                    at: now,
                });
                now += acc * 5;
                trace.events.push(TraceEvent::Accept { at: now });
            } else {
                trace.events.push(TraceEvent::Request {
                    cmd: ntg_ocp::OcpCmd::Read,
                    addr,
                    data: vec![],
                    burst: 1,
                    at: now,
                });
                now += acc * 5;
                trace.events.push(TraceEvent::Accept { at: now });
                now += resp * 5;
                trace.events.push(TraceEvent::Response {
                    data: vec![data],
                    at: now,
                });
            }
        }
        trace.halt_at = Some(now + 100);
        trace
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `.trc` text round-trips (exercised here because the generator
    /// lives with the translator tests).
    #[test]
    fn trc_round_trip(trace in any_trace()) {
        let text = trace.to_trc();
        prop_assert_eq!(ntg_trace::MasterTrace::from_trc(&text).expect("parse"), trace);
    }

    /// Translation of any well-formed trace succeeds, is deterministic,
    /// and the resulting program always assembles with every OCP
    /// transaction of the trace represented.
    #[test]
    fn translation_total_and_deterministic(trace in any_trace(), mode_sel in 0u8..3) {
        let mode = match mode_sel {
            0 => TranslationMode::Clone,
            1 => TranslationMode::Timeshift,
            _ => TranslationMode::Reactive,
        };
        let cfg = TranslatorConfig { mode, ..TranslatorConfig::default() };
        let translator = TraceTranslator::new(cfg);
        let p1 = translator.translate(&trace).expect("translates");
        let p2 = translator.translate(&trace).expect("translates");
        prop_assert_eq!(&p1, &p2, "translation must be deterministic");
        assemble(&p1).expect("translated programs assemble");
        // Transaction conservation: one OCP instruction per transaction
        // (no polling ranges configured, so nothing collapses).
        let ocp_instrs = p1
            .instrs()
            .filter(|i| matches!(
                i,
                TgSymInstr::Read(_) | TgSymInstr::Write(..)
                    | TgSymInstr::BurstRead(..) | TgSymInstr::BurstWrite(..)
            ))
            .count();
        let txs = trace.transactions().expect("well-formed").len();
        prop_assert_eq!(ocp_instrs, txs);
        // Exactly one terminator, at the end.
        prop_assert!(matches!(p1.instrs().last(), Some(TgSymInstr::Halt)));
    }

    /// In timeshift/reactive modes the sum of idle cycles never exceeds
    /// the trace's halt time (the TG cannot wait longer than the core
    /// ran).
    #[test]
    fn idle_budget_is_bounded(trace in any_trace()) {
        let translator = TraceTranslator::new(TranslatorConfig::default());
        let program = translator.translate(&trace).expect("translates");
        let total_idle: u64 = program
            .instrs()
            .map(|i| match i {
                TgSymInstr::Idle(n) => u64::from(*n),
                _ => 0,
            })
            .sum();
        let halt_cycles = trace.halt_at.unwrap() / 5;
        prop_assert!(
            total_idle <= halt_cycles,
            "idle {} exceeds halt cycle {}",
            total_idle,
            halt_cycles
        );
    }
}

/// Deterministic label generation: collapsing polls yields Semchk labels
/// numbered in order.
#[test]
fn semchk_labels_are_sequential() {
    let trc = "\
MASTER 0
PERIOD_NS 5
REQ RD 0x000000f0 @10
ACK @15
RESP 0x00000001 @30
REQ WR 0x00001000 0x1 @60
ACK @65
REQ RD 0x000000f4 @100
ACK @105
RESP 0x00000001 @120
END
";
    let trace = ntg_trace::MasterTrace::from_trc(trc).unwrap();
    let translator = TraceTranslator::new(TranslatorConfig {
        pollable: vec![(0xF0, 0x10)],
        mode: TranslationMode::Reactive,
        ..TranslatorConfig::default()
    });
    let program = translator.translate(&trace).unwrap();
    let labels: Vec<_> = program
        .items
        .iter()
        .filter_map(|i| match i {
            TgItem::Label(l) => Some(l.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(labels, vec!["Semchk0", "Semchk1"]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The `.tgp` parser never panics, whatever bytes it is fed.
    #[test]
    fn tgp_parser_never_panics(text in "\\PC{0,400}") {
        let _ = from_tgp(&text);
    }

    /// Nor does the binary image decoder.
    #[test]
    fn image_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = TgImage::from_bytes(&bytes);
    }

    /// A parsed `.tgp` re-prints to something that parses to the same
    /// program (printer/parser fixpoint on *arbitrary accepted* input,
    /// not just printer output).
    #[test]
    fn accepted_tgp_round_trips(text in "\\PC{0,300}") {
        if let Ok(program) = from_tgp(&text) {
            let printed = to_tgp(&program);
            let again = from_tgp(&printed).expect("printed output must parse");
            prop_assert_eq!(again, program);
        }
    }
}
