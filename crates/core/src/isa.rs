//! The TG instruction set (the paper's Table 1) and its binary encoding.

use std::fmt;

/// A TG register, `r0`–`r15`.
///
/// `r0` is the special `rdreg` that captures the data word of every read
/// response (paper §5: "Register rdreg is defined as special register
/// where the value of RD transactions is stored").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TgReg(u8);

impl TgReg {
    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub const fn new(n: u8) -> Self {
        assert!(n < 16, "the TG has registers r0..r15");
        TgReg(n)
    }

    /// The register number.
    pub const fn num(self) -> u8 {
        self.0
    }
}

/// `rdreg`: receives the data of every read response.
pub const RDREG: TgReg = TgReg::new(0);
/// `tempreg`: holds the expected value in translator-generated `Semchk`
/// polling loops (a convention, not hardware-special).
pub const TEMPREG: TgReg = TgReg::new(1);

impl fmt::Display for TgReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            f.write_str("rdreg")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// Branch conditions for the `If` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TgCond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (unsigned)
    Ltu,
    /// `a >= b` (unsigned)
    Geu,
}

impl TgCond {
    /// Evaluates the condition.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            TgCond::Eq => a == b,
            TgCond::Ne => a != b,
            TgCond::Ltu => a < b,
            TgCond::Geu => a >= b,
        }
    }

    /// The mnemonic used in `.tgp` listings.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TgCond::Eq => "EQ",
            TgCond::Ne => "NE",
            TgCond::Ltu => "LTU",
            TgCond::Geu => "GEU",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "EQ" => TgCond::Eq,
            "NE" => TgCond::Ne,
            "LTU" => TgCond::Ltu,
            "GEU" => TgCond::Geu,
            _ => return None,
        })
    }
}

/// A TG instruction in executable (binary) form; branch targets are
/// absolute instruction indices.
///
/// The OCP group and the sequencing group together are the paper's
/// Table 1; `Halt` terminates simulation runs (the paper instead rewinds
/// with `Jump(start)` on test chips — the translator can emit either) and
/// `IdleUntil` is an extension used only by the *clone* fidelity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TgInstr {
    /// Blocking read from the address in `addr`; data lands in `rdreg`.
    Read {
        /// Address register.
        addr: TgReg,
    },
    /// Posted write of `data` to the address in `addr`.
    Write {
        /// Address register.
        addr: TgReg,
        /// Data register.
        data: TgReg,
    },
    /// Blocking burst read of `count` words from `addr`.
    BurstRead {
        /// Address register.
        addr: TgReg,
        /// Beat-count register (1..=255).
        count: TgReg,
    },
    /// Posted burst write of `count` copies of `data` starting at `addr`.
    BurstWrite {
        /// Address register.
        addr: TgReg,
        /// Data register.
        data: TgReg,
        /// Beat-count register (1..=255).
        count: TgReg,
    },
    /// Branch to `target` when `cond(a, b)` holds.
    If {
        /// Left operand register.
        a: TgReg,
        /// Right operand register.
        b: TgReg,
        /// Condition.
        cond: TgCond,
        /// Absolute instruction index.
        target: u32,
    },
    /// Unconditional branch.
    Jump {
        /// Absolute instruction index.
        target: u32,
    },
    /// Load an immediate into a register.
    SetRegister {
        /// Destination register.
        reg: TgReg,
        /// Immediate value.
        value: u32,
    },
    /// Wait for `cycles` cycles (≥ 1).
    Idle {
        /// Number of cycles.
        cycles: u32,
    },
    /// Wait until the global cycle counter reaches `cycle` (no-op if
    /// already past). Clone-mode extension.
    IdleUntil {
        /// Absolute cycle.
        cycle: u64,
    },
    /// Stop the generator.
    Halt,
}

/// Error produced when decoding an invalid TG instruction word triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TgDecodeError {
    /// The undecodable first word.
    pub word0: u32,
}

impl fmt::Display for TgDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid TG instruction word {:#010x}", self.word0)
    }
}

impl std::error::Error for TgDecodeError {}

mod op {
    pub const READ: u8 = 1;
    pub const WRITE: u8 = 2;
    pub const BURST_READ: u8 = 3;
    pub const BURST_WRITE: u8 = 4;
    pub const IF: u8 = 5;
    pub const JUMP: u8 = 6;
    pub const SET_REGISTER: u8 = 7;
    pub const IDLE: u8 = 8;
    pub const HALT: u8 = 9;
    pub const IDLE_UNTIL: u8 = 10;
}

fn cond_code(c: TgCond) -> u8 {
    match c {
        TgCond::Eq => 0,
        TgCond::Ne => 1,
        TgCond::Ltu => 2,
        TgCond::Geu => 3,
    }
}

fn cond_from(code: u8) -> Option<TgCond> {
    Some(match code {
        0 => TgCond::Eq,
        1 => TgCond::Ne,
        2 => TgCond::Ltu,
        3 => TgCond::Geu,
        _ => return None,
    })
}

fn pack(opc: u8, a: u8, b: u8, c: u8) -> u32 {
    u32::from(opc) | (u32::from(a) << 8) | (u32::from(b) << 16) | (u32::from(c) << 24)
}

impl TgInstr {
    /// Encodes the instruction to its fixed three-word binary form.
    pub fn encode(&self) -> [u32; 3] {
        match *self {
            TgInstr::Read { addr } => [pack(op::READ, addr.num(), 0, 0), 0, 0],
            TgInstr::Write { addr, data } => [pack(op::WRITE, addr.num(), data.num(), 0), 0, 0],
            TgInstr::BurstRead { addr, count } => {
                [pack(op::BURST_READ, addr.num(), count.num(), 0), 0, 0]
            }
            TgInstr::BurstWrite { addr, data, count } => [
                pack(op::BURST_WRITE, addr.num(), data.num(), count.num()),
                0,
                0,
            ],
            TgInstr::If { a, b, cond, target } => {
                [pack(op::IF, a.num(), b.num(), cond_code(cond)), target, 0]
            }
            TgInstr::Jump { target } => [pack(op::JUMP, 0, 0, 0), target, 0],
            TgInstr::SetRegister { reg, value } => {
                [pack(op::SET_REGISTER, reg.num(), 0, 0), value, 0]
            }
            TgInstr::Idle { cycles } => [pack(op::IDLE, 0, 0, 0), cycles, 0],
            TgInstr::IdleUntil { cycle } => [
                pack(op::IDLE_UNTIL, 0, 0, 0),
                (cycle & 0xFFFF_FFFF) as u32,
                (cycle >> 32) as u32,
            ],
            TgInstr::Halt => [pack(op::HALT, 0, 0, 0), 0, 0],
        }
    }

    /// Decodes a three-word binary form.
    ///
    /// # Errors
    ///
    /// Returns [`TgDecodeError`] for unknown opcodes, register fields
    /// above 15 or condition codes above 3.
    pub fn decode(words: [u32; 3]) -> Result<Self, TgDecodeError> {
        let [w0, w1, w2] = words;
        let opc = (w0 & 0xFF) as u8;
        let fa = ((w0 >> 8) & 0xFF) as u8;
        let fb = ((w0 >> 16) & 0xFF) as u8;
        let fc = ((w0 >> 24) & 0xFF) as u8;
        let err = TgDecodeError { word0: w0 };
        let reg = |n: u8| -> Result<TgReg, TgDecodeError> {
            if n < 16 {
                Ok(TgReg::new(n))
            } else {
                Err(err)
            }
        };
        Ok(match opc {
            op::READ => TgInstr::Read { addr: reg(fa)? },
            op::WRITE => TgInstr::Write {
                addr: reg(fa)?,
                data: reg(fb)?,
            },
            op::BURST_READ => TgInstr::BurstRead {
                addr: reg(fa)?,
                count: reg(fb)?,
            },
            op::BURST_WRITE => TgInstr::BurstWrite {
                addr: reg(fa)?,
                data: reg(fb)?,
                count: reg(fc)?,
            },
            op::IF => TgInstr::If {
                a: reg(fa)?,
                b: reg(fb)?,
                cond: cond_from(fc).ok_or(err)?,
                target: w1,
            },
            op::JUMP => TgInstr::Jump { target: w1 },
            op::SET_REGISTER => TgInstr::SetRegister {
                reg: reg(fa)?,
                value: w1,
            },
            op::IDLE => TgInstr::Idle { cycles: w1 },
            op::IDLE_UNTIL => TgInstr::IdleUntil {
                cycle: u64::from(w1) | (u64::from(w2) << 32),
            },
            op::HALT => TgInstr::Halt,
            _ => return Err(err),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TgInstr> {
        let r = TgReg::new;
        vec![
            TgInstr::Read { addr: r(2) },
            TgInstr::Write {
                addr: r(2),
                data: r(3),
            },
            TgInstr::BurstRead {
                addr: r(4),
                count: r(5),
            },
            TgInstr::BurstWrite {
                addr: r(4),
                data: r(6),
                count: r(5),
            },
            TgInstr::If {
                a: RDREG,
                b: TEMPREG,
                cond: TgCond::Ne,
                target: 17,
            },
            TgInstr::If {
                a: r(7),
                b: r(8),
                cond: TgCond::Geu,
                target: 0,
            },
            TgInstr::Jump { target: 42 },
            TgInstr::SetRegister {
                reg: r(15),
                value: 0xDEAD_BEEF,
            },
            TgInstr::Idle { cycles: 11 },
            TgInstr::IdleUntil {
                cycle: 0x1_2345_6789,
            },
            TgInstr::Halt,
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for i in samples() {
            assert_eq!(TgInstr::decode(i.encode()), Ok(i), "round trip for {i:?}");
        }
    }

    #[test]
    fn distinct_encodings() {
        let enc: Vec<[u32; 3]> = samples().iter().map(TgInstr::encode).collect();
        let mut sorted = enc.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), enc.len());
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(TgInstr::decode([0xFF, 0, 0]).is_err());
        assert!(TgInstr::decode([0, 0, 0]).is_err(), "opcode 0 is reserved");
    }

    #[test]
    fn bad_register_field_rejected() {
        // Read with addr register 16.
        let w0 = pack(op::READ, 16, 0, 0);
        assert!(TgInstr::decode([w0, 0, 0]).is_err());
    }

    #[test]
    fn bad_condition_rejected() {
        let w0 = pack(op::IF, 0, 1, 9);
        assert!(TgInstr::decode([w0, 5, 0]).is_err());
    }

    #[test]
    fn idle_until_spans_64_bits() {
        let i = TgInstr::IdleUntil { cycle: u64::MAX };
        assert_eq!(TgInstr::decode(i.encode()), Ok(i));
    }

    #[test]
    fn cond_eval() {
        assert!(TgCond::Ne.eval(0, 1));
        assert!(!TgCond::Ne.eval(1, 1));
        assert!(TgCond::Eq.eval(1, 1));
        assert!(TgCond::Ltu.eval(1, 2));
        assert!(TgCond::Geu.eval(2, 2));
        assert_eq!(TgCond::from_mnemonic("NE"), Some(TgCond::Ne));
        assert_eq!(TgCond::from_mnemonic("XX"), None);
    }

    #[test]
    fn rdreg_displays_by_name() {
        assert_eq!(RDREG.to_string(), "rdreg");
        assert_eq!(TgReg::new(5).to_string(), "r5");
    }
}
