//! The `.tgp` symbolic text format (the paper's Figure 3(b)).
//!
//! ```text
//! ; ntg TG program v1
//! MASTER[2,0]
//! REGISTER r2 0x00000104
//! REGISTER tempreg 0x00000001
//! BEGIN
//!   Idle(11)
//! Semchk:
//!   Read(r2)
//!   If(rdreg, tempreg, NE, Semchk)
//!   Halt
//! END
//! ```
//!
//! Serialisation is deterministic: equal programs print to identical
//! text, which is how the paper's validation experiment ("a check across
//! .tgp programs showed no difference at all") is reproduced byte for
//! byte.

use std::fmt::Write as _;

use crate::isa::{TgCond, TgReg};
use crate::program::{TgItem, TgProgram, TgSymInstr};

/// A `.tgp` parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgpParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for TgpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, ".tgp line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TgpParseError {}

fn reg_name(reg: TgReg) -> String {
    match reg.num() {
        0 => "rdreg".into(),
        1 => "tempreg".into(),
        n => format!("r{n}"),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<TgReg, TgpParseError> {
    match s {
        "rdreg" => return Ok(TgReg::new(0)),
        "tempreg" => return Ok(TgReg::new(1)),
        _ => {}
    }
    let err = || TgpParseError {
        line,
        reason: format!("invalid register {s:?}"),
    };
    let n: u8 = s
        .strip_prefix('r')
        .ok_or_else(err)?
        .parse()
        .map_err(|_| err())?;
    if n > 15 {
        return Err(err());
    }
    Ok(TgReg::new(n))
}

fn parse_value(s: &str, line: usize) -> Result<u32, TgpParseError> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| TgpParseError {
        line,
        reason: format!("invalid value {s:?}"),
    })
}

/// Serialises a program to `.tgp` text.
pub fn to_tgp(program: &TgProgram) -> String {
    let mut out = String::new();
    out.push_str("; ntg TG program v1\n");
    let _ = writeln!(out, "MASTER[{},{}]", program.master, program.thread);
    for (reg, value) in &program.inits {
        let _ = writeln!(out, "REGISTER {} {:#010x}", reg_name(*reg), value);
    }
    out.push_str("BEGIN\n");
    for item in &program.items {
        match item {
            TgItem::Label(name) => {
                let _ = writeln!(out, "{name}:");
            }
            TgItem::Instr(i) => {
                let _ = match i {
                    TgSymInstr::Read(a) => writeln!(out, "  Read({})", reg_name(*a)),
                    TgSymInstr::Write(a, d) => {
                        writeln!(out, "  Write({}, {})", reg_name(*a), reg_name(*d))
                    }
                    TgSymInstr::BurstRead(a, c) => {
                        writeln!(out, "  BurstRead({}, {})", reg_name(*a), reg_name(*c))
                    }
                    TgSymInstr::BurstWrite(a, d, c) => writeln!(
                        out,
                        "  BurstWrite({}, {}, {})",
                        reg_name(*a),
                        reg_name(*d),
                        reg_name(*c)
                    ),
                    TgSymInstr::If(a, b, cond, target) => writeln!(
                        out,
                        "  If({}, {}, {}, {})",
                        reg_name(*a),
                        reg_name(*b),
                        cond.mnemonic(),
                        target
                    ),
                    TgSymInstr::Jump(target) => writeln!(out, "  Jump({target})"),
                    TgSymInstr::SetRegister(r, v) => {
                        writeln!(out, "  SetRegister({}, {:#010x})", reg_name(*r), v)
                    }
                    TgSymInstr::Idle(n) => writeln!(out, "  Idle({n})"),
                    TgSymInstr::IdleUntil(n) => writeln!(out, "  IdleUntil({n})"),
                    TgSymInstr::Halt => writeln!(out, "  Halt"),
                };
            }
        }
    }
    out.push_str("END\n");
    out
}

/// Parses `.tgp` text.
///
/// # Errors
///
/// Returns a [`TgpParseError`] naming the offending line.
pub fn from_tgp(text: &str) -> Result<TgProgram, TgpParseError> {
    let mut program = TgProgram::default();
    let mut saw_master = false;
    let mut in_body = false;
    let mut saw_end = false;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let err = |reason: String| TgpParseError {
            line: line_no,
            reason,
        };
        if saw_end {
            return Err(err("content after END".into()));
        }
        if let Some(rest) = line.strip_prefix("MASTER[") {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| err("missing ] in MASTER header".into()))?;
            let (m, t) = inner
                .split_once(',')
                .ok_or_else(|| err("MASTER header needs [id,thread]".into()))?;
            program.master = m
                .trim()
                .parse()
                .map_err(|_| err(format!("invalid master id {m:?}")))?;
            program.thread = t
                .trim()
                .parse()
                .map_err(|_| err(format!("invalid thread id {t:?}")))?;
            saw_master = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("REGISTER ") {
            if in_body {
                return Err(err("REGISTER after BEGIN".into()));
            }
            let mut parts = rest.split_whitespace();
            let reg = parse_reg(
                parts.next().ok_or_else(|| err("missing register".into()))?,
                line_no,
            )?;
            let value = parse_value(
                parts.next().ok_or_else(|| err("missing value".into()))?,
                line_no,
            )?;
            program.inits.push((reg, value));
            continue;
        }
        if line == "BEGIN" {
            in_body = true;
            continue;
        }
        if line == "END" {
            saw_end = true;
            continue;
        }
        if !in_body {
            return Err(err(format!("unexpected {line:?} before BEGIN")));
        }
        if let Some(label) = line.strip_suffix(':') {
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(format!("invalid label {label:?}")));
            }
            program.label(label);
            continue;
        }
        // Instruction: Name(args...) or bare Halt.
        let (name, args) = match line.find('(') {
            Some(p) => {
                let inner = line[p + 1..]
                    .strip_suffix(')')
                    .ok_or_else(|| err("missing )".into()))?;
                (
                    &line[..p],
                    inner
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .collect::<Vec<_>>(),
                )
            }
            None => (line, Vec::new()),
        };
        let want = |n: usize| -> Result<(), TgpParseError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(TgpParseError {
                    line: line_no,
                    reason: format!("{name} expects {n} argument(s), found {}", args.len()),
                })
            }
        };
        let instr = match name {
            "Read" => {
                want(1)?;
                TgSymInstr::Read(parse_reg(args[0], line_no)?)
            }
            "Write" => {
                want(2)?;
                TgSymInstr::Write(parse_reg(args[0], line_no)?, parse_reg(args[1], line_no)?)
            }
            "BurstRead" => {
                want(2)?;
                TgSymInstr::BurstRead(parse_reg(args[0], line_no)?, parse_reg(args[1], line_no)?)
            }
            "BurstWrite" => {
                want(3)?;
                TgSymInstr::BurstWrite(
                    parse_reg(args[0], line_no)?,
                    parse_reg(args[1], line_no)?,
                    parse_reg(args[2], line_no)?,
                )
            }
            "If" => {
                want(4)?;
                let cond = TgCond::from_mnemonic(args[2]).ok_or_else(|| TgpParseError {
                    line: line_no,
                    reason: format!("unknown condition {:?}", args[2]),
                })?;
                TgSymInstr::If(
                    parse_reg(args[0], line_no)?,
                    parse_reg(args[1], line_no)?,
                    cond,
                    args[3].to_owned(),
                )
            }
            "Jump" => {
                want(1)?;
                TgSymInstr::Jump(args[0].to_owned())
            }
            "SetRegister" => {
                want(2)?;
                TgSymInstr::SetRegister(
                    parse_reg(args[0], line_no)?,
                    parse_value(args[1], line_no)?,
                )
            }
            "Idle" => {
                want(1)?;
                TgSymInstr::Idle(parse_value(args[0], line_no)?)
            }
            "IdleUntil" => {
                want(1)?;
                let v: u64 = args[0].parse().map_err(|_| TgpParseError {
                    line: line_no,
                    reason: format!("invalid cycle {:?}", args[0]),
                })?;
                TgSymInstr::IdleUntil(v)
            }
            "Halt" => {
                want(0)?;
                TgSymInstr::Halt
            }
            _ => {
                return Err(err(format!("unknown instruction {name:?}")));
            }
        };
        program.push(instr);
    }
    if !saw_end {
        return Err(TgpParseError {
            line: text.lines().count(),
            reason: "missing END".into(),
        });
    }
    if !saw_master {
        return Err(TgpParseError {
            line: 1,
            reason: "missing MASTER header".into(),
        });
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{RDREG, TEMPREG};

    fn sample() -> TgProgram {
        let mut p = TgProgram::new(2);
        p.inits.push((TgReg::new(2), 0x104));
        p.inits.push((TEMPREG, 1));
        p.label("start");
        p.push(TgSymInstr::Idle(11));
        p.push(TgSymInstr::Read(TgReg::new(2)));
        p.push(TgSymInstr::SetRegister(TgReg::new(3), 0x111));
        p.push(TgSymInstr::Write(TgReg::new(2), TgReg::new(3)));
        p.push(TgSymInstr::BurstRead(TgReg::new(2), TgReg::new(4)));
        p.push(TgSymInstr::BurstWrite(
            TgReg::new(2),
            TgReg::new(3),
            TgReg::new(4),
        ));
        p.label("Semchk");
        p.push(TgSymInstr::Read(TgReg::new(2)));
        p.push(TgSymInstr::If(RDREG, TEMPREG, TgCond::Ne, "Semchk".into()));
        p.push(TgSymInstr::IdleUntil(1_000_000));
        p.push(TgSymInstr::Jump("start".into()));
        p.push(TgSymInstr::Halt);
        p
    }

    #[test]
    fn round_trips() {
        let p = sample();
        let text = to_tgp(&p);
        let back = from_tgp(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn serialisation_is_deterministic() {
        assert_eq!(to_tgp(&sample()), to_tgp(&sample()));
    }

    #[test]
    fn prints_named_special_registers() {
        let text = to_tgp(&sample());
        assert!(text.contains("If(rdreg, tempreg, NE, Semchk)"));
        assert!(text.contains("REGISTER tempreg 0x00000001"));
    }

    #[test]
    fn parses_paper_style_listing() {
        let text = "\
; Master Core
MASTER[0,0]
REGISTER rdreg 0x00000000
REGISTER r2 0x00000104
BEGIN
start:
  Idle(11)
  Read(r2)
Semchk:
  Read(r2)
  If(rdreg, tempreg, NE, Semchk)
  Jump(start)
END
";
        let p = from_tgp(text).unwrap();
        assert_eq!(p.master, 0);
        assert_eq!(p.len_instrs(), 5);
    }

    #[test]
    fn register_after_begin_is_error() {
        let text = "MASTER[0,0]\nBEGIN\nREGISTER r2 0\nEND\n";
        assert!(from_tgp(text).is_err());
    }

    #[test]
    fn wrong_arity_is_error() {
        let text = "MASTER[0,0]\nBEGIN\n  Read(r1, r2)\nEND\n";
        let e = from_tgp(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.reason.contains("expects 1"));
    }

    #[test]
    fn unknown_instruction_is_error() {
        let text = "MASTER[0,0]\nBEGIN\n  Frobnicate(r1)\nEND\n";
        assert!(from_tgp(text).is_err());
    }

    #[test]
    fn missing_end_is_error() {
        assert!(from_tgp("MASTER[0,0]\nBEGIN\n").is_err());
    }

    #[test]
    fn register_out_of_range_is_error() {
        let text = "MASTER[0,0]\nBEGIN\n  Read(r16)\nEND\n";
        assert!(from_tgp(text).is_err());
    }
}
