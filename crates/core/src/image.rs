//! The binary TG image (`.bin`) loaded into a TG's instruction memory.

use std::fmt;

use crate::isa::{TgInstr, TgReg};

/// Magic number at the start of every `.bin` image (`"NTGB"`).
pub const TG_IMAGE_MAGIC: [u8; 4] = *b"NTGB";
/// Current image format version.
pub const TG_IMAGE_VERSION: u32 = 1;

/// A fully resolved, executable TG program.
///
/// Produced by [`assemble`](crate::assemble) from a symbolic
/// [`TgProgram`](crate::TgProgram); loadable into a [`TgCore`]
/// (simulation) or, in the paper's vision, into the instruction memory of
/// a TG device on a NoC test chip. Serialises to a deterministic
/// little-endian byte image.
///
/// [`TgCore`]: crate::TgCore
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TgImage {
    /// The emulated master's id.
    pub master: u16,
    /// The emulated thread id.
    pub thread: u16,
    /// Register-file initialisation.
    pub inits: Vec<(TgReg, u32)>,
    /// The instruction stream; branch targets are indices into it.
    pub instrs: Vec<TgInstr>,
}

/// Error produced when deserialising a `.bin` image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TgImageError {
    /// The magic number or version did not match.
    BadHeader,
    /// The byte stream ended prematurely or had trailing bytes.
    Truncated,
    /// An instruction failed to decode.
    BadInstruction {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A register-init entry named a register above 15.
    BadRegister,
    /// A branch target pointed outside the program.
    BadTarget {
        /// Index of the offending instruction.
        index: usize,
    },
}

impl fmt::Display for TgImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgImageError::BadHeader => write!(f, "not a TG image (bad magic/version)"),
            TgImageError::Truncated => write!(f, "truncated or oversized TG image"),
            TgImageError::BadInstruction { index } => {
                write!(f, "undecodable instruction at index {index}")
            }
            TgImageError::BadRegister => write!(f, "register init names an invalid register"),
            TgImageError::BadTarget { index } => {
                write!(f, "branch target out of range at index {index}")
            }
        }
    }
}

impl std::error::Error for TgImageError {}

impl TgImage {
    /// Serialises the image to its on-disk byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.inits.len() * 8 + self.instrs.len() * 12);
        out.extend_from_slice(&TG_IMAGE_MAGIC);
        out.extend_from_slice(&TG_IMAGE_VERSION.to_le_bytes());
        out.extend_from_slice(&u32::from(self.master).to_le_bytes());
        out.extend_from_slice(&u32::from(self.thread).to_le_bytes());
        out.extend_from_slice(&(self.inits.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.instrs.len() as u32).to_le_bytes());
        for (reg, value) in &self.inits {
            out.extend_from_slice(&u32::from(reg.num()).to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
        for instr in &self.instrs {
            for w in instr.encode() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Deserialises an image, validating every instruction and branch
    /// target.
    ///
    /// # Errors
    ///
    /// Returns a [`TgImageError`] describing the first problem found.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TgImageError> {
        fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, TgImageError> {
            let end = *pos + 4;
            let chunk = bytes.get(*pos..end).ok_or(TgImageError::Truncated)?;
            *pos = end;
            Ok(u32::from_le_bytes(chunk.try_into().expect("4 bytes")))
        }
        let magic = bytes.get(0..4).ok_or(TgImageError::Truncated)?;
        if magic != TG_IMAGE_MAGIC {
            return Err(TgImageError::BadHeader);
        }
        let mut pos = 4usize;
        if take_u32(bytes, &mut pos)? != TG_IMAGE_VERSION {
            return Err(TgImageError::BadHeader);
        }
        let master = take_u32(bytes, &mut pos)? as u16;
        let thread = take_u32(bytes, &mut pos)? as u16;
        let n_inits = take_u32(bytes, &mut pos)? as usize;
        let n_instrs = take_u32(bytes, &mut pos)? as usize;
        let mut inits = Vec::with_capacity(n_inits.min(1 << 16));
        for _ in 0..n_inits {
            let reg = take_u32(bytes, &mut pos)?;
            let value = take_u32(bytes, &mut pos)?;
            if reg > 15 {
                return Err(TgImageError::BadRegister);
            }
            inits.push((TgReg::new(reg as u8), value));
        }
        let mut instrs = Vec::with_capacity(n_instrs.min(1 << 20));
        for index in 0..n_instrs {
            let words = [
                take_u32(bytes, &mut pos)?,
                take_u32(bytes, &mut pos)?,
                take_u32(bytes, &mut pos)?,
            ];
            let instr =
                TgInstr::decode(words).map_err(|_| TgImageError::BadInstruction { index })?;
            instrs.push(instr);
        }
        if pos != bytes.len() {
            return Err(TgImageError::Truncated);
        }
        let image = Self {
            master,
            thread,
            inits,
            instrs,
        };
        image.validate_targets()?;
        Ok(image)
    }

    /// Checks that all branch targets land inside the program.
    ///
    /// # Errors
    ///
    /// Returns [`TgImageError::BadTarget`] naming the first bad branch.
    pub fn validate_targets(&self) -> Result<(), TgImageError> {
        for (index, instr) in self.instrs.iter().enumerate() {
            let target = match instr {
                TgInstr::If { target, .. } | TgInstr::Jump { target } => Some(*target),
                _ => None,
            };
            if let Some(t) = target {
                if t as usize >= self.instrs.len() {
                    return Err(TgImageError::BadTarget { index });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{TgCond, RDREG, TEMPREG};

    fn sample() -> TgImage {
        TgImage {
            master: 4,
            thread: 0,
            inits: vec![(TgReg::new(2), 0x104), (TEMPREG, 1)],
            instrs: vec![
                TgInstr::Idle { cycles: 11 },
                TgInstr::Read {
                    addr: TgReg::new(2),
                },
                TgInstr::If {
                    a: RDREG,
                    b: TEMPREG,
                    cond: TgCond::Ne,
                    target: 1,
                },
                TgInstr::Halt,
            ],
        }
    }

    #[test]
    fn byte_round_trip() {
        let img = sample();
        let bytes = img.to_bytes();
        assert_eq!(TgImage::from_bytes(&bytes).unwrap(), img);
    }

    #[test]
    fn bytes_are_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(TgImage::from_bytes(&bytes), Err(TgImageError::BadHeader));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        assert_eq!(
            TgImage::from_bytes(&bytes[..bytes.len() - 1]),
            Err(TgImageError::Truncated)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(TgImage::from_bytes(&bytes), Err(TgImageError::Truncated));
    }

    #[test]
    fn out_of_range_target_rejected() {
        let mut img = sample();
        img.instrs[2] = TgInstr::Jump { target: 99 };
        let bytes = img.to_bytes();
        assert_eq!(
            TgImage::from_bytes(&bytes),
            Err(TgImageError::BadTarget { index: 2 })
        );
    }

    #[test]
    fn empty_image_round_trips() {
        let img = TgImage {
            master: 0,
            thread: 0,
            inits: vec![],
            instrs: vec![],
        };
        assert_eq!(TgImage::from_bytes(&img.to_bytes()).unwrap(), img);
    }
}
