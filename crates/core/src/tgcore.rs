//! The TG processor simulation model: a multi-cycle "very simple
//! instruction set processor" (paper §4).

use ntg_ocp::{DataWords, LinkArena, MasterPort, OcpRequest, OcpStatus};
use ntg_sim::{Activity, Component, Cycle};

use crate::image::TgImage;
use crate::isa::TgInstr;

/// Execution statistics of one TG.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TgStats {
    /// Instructions executed (each `Idle` counts once).
    pub instructions: u64,
    /// Single reads issued.
    pub reads: u64,
    /// Single writes issued.
    pub writes: u64,
    /// Burst reads issued.
    pub burst_reads: u64,
    /// Burst writes issued.
    pub burst_writes: u64,
    /// Cycles spent in `Idle`/`IdleUntil`.
    pub idle_cycles: u64,
    /// Cycles spent blocked on the interconnect (request asserted,
    /// waiting for acceptance or a response) — the RUN-state residency
    /// lost to memory latency and arbitration, including the round-trip
    /// portion of SEMCHK-style poll loops.
    pub wait_cycles: u64,
}

/// A fault that stopped a TG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TgFault {
    /// Execution ran past the last instruction without `Halt`.
    PcOutOfRange {
        /// The offending pc.
        pc: usize,
    },
    /// A burst count register held 0 or a value above 255.
    BadBurstCount {
        /// The offending pc.
        pc: usize,
        /// The register's value.
        value: u32,
    },
    /// The interconnect returned an error response.
    BusError {
        /// The pc of the offending OCP instruction.
        pc: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Ready,
    Idling { remaining: u32 },
    IdlingUntil { cycle: u64 },
    WaitResp,
    WaitAccept,
    Halted,
}

/// The traffic-generator core: executes a [`TgImage`] against an OCP
/// master port.
///
/// Plug-compatible with `ntg_cpu::CpuCore` at the OCP boundary and
/// follows the identical blocking discipline: OCP instructions assert
/// their request in their execution cycle; reads block until the response
/// and capture its first data word in `rdreg`; writes are posted but
/// block until accepted; the next instruction executes on the cycle after
/// the unblocking event. All other instructions take one cycle, except
/// `Idle(n)` (exactly `n` cycles) and `IdleUntil(c)` (up to cycle `c`).
///
/// The simulation speedup the paper reports comes from this model doing
/// drastically less work per cycle than an instruction-set simulator with
/// caches — there is no fetch/decode from simulated memory, no cache
/// lookups, no register forwarding; just a small state machine.
pub struct TgCore {
    name: String,
    port: MasterPort,
    image: TgImage,
    regs: [u32; 16],
    pc: usize,
    state: State,
    halt_cycle: Option<Cycle>,
    fault: Option<TgFault>,
    stats: TgStats,
}

impl TgCore {
    /// Creates a TG executing `image` through `port`.
    ///
    /// Register-file initialisation from the image is applied
    /// immediately (it costs zero simulated cycles, like a program
    /// load).
    pub fn new(name: impl Into<String>, port: MasterPort, image: TgImage) -> Self {
        let mut regs = [0u32; 16];
        for (reg, value) in &image.inits {
            regs[reg.num() as usize] = *value;
        }
        Self {
            name: name.into(),
            port,
            image,
            regs,
            pc: 0,
            state: State::Ready,
            halt_cycle: None,
            fault: None,
            stats: TgStats::default(),
        }
    }

    /// Whether the TG has halted (normally or by fault).
    pub fn halted(&self) -> bool {
        self.state == State::Halted
    }

    /// Whether the TG is blocked on an outstanding OCP transaction
    /// (request asserted, waiting for acceptance or a response).
    ///
    /// A scheduler (see [`TgMultiCore`](crate::TgMultiCore)) must not
    /// preempt a blocked generator: a real master cannot retract a
    /// request that is already driving the wires.
    pub fn is_blocked(&self) -> bool {
        matches!(self.state, State::WaitResp | State::WaitAccept)
    }

    /// The cycle in which `Halt` executed, if it has.
    pub fn halt_cycle(&self) -> Option<Cycle> {
        self.halt_cycle
    }

    /// The fault that stopped the TG, if any.
    pub fn fault(&self) -> Option<TgFault> {
        self.fault
    }

    /// Current register values (`regs()[0]` is `rdreg`).
    pub fn regs(&self) -> [u32; 16] {
        self.regs
    }

    /// Execution statistics.
    pub fn stats(&self) -> TgStats {
        self.stats
    }

    fn stop_with_fault(&mut self, now: Cycle, fault: TgFault) {
        self.fault = Some(fault);
        self.halt_cycle = Some(now);
        self.state = State::Halted;
    }

    /// Resolves waits; returns whether an instruction may execute now.
    fn resolve(&mut self, now: Cycle, net: &mut LinkArena) -> bool {
        match self.state {
            State::Ready => true,
            State::Halted => false,
            State::Idling { remaining } => {
                self.stats.idle_cycles += 1;
                if remaining <= 1 {
                    self.state = State::Ready;
                } else {
                    self.state = State::Idling {
                        remaining: remaining - 1,
                    };
                }
                false
            }
            State::IdlingUntil { cycle } => {
                if now >= cycle {
                    self.state = State::Ready;
                    true
                } else {
                    self.stats.idle_cycles += 1;
                    false
                }
            }
            State::WaitResp => match self.port.take_response(net, now) {
                Some(resp) => {
                    if resp.status != OcpStatus::Ok {
                        self.stop_with_fault(now, TgFault::BusError { pc: self.pc - 1 });
                        return false;
                    }
                    self.regs[0] = resp.data.first().copied().unwrap_or(0);
                    self.state = State::Ready;
                    true
                }
                None => {
                    self.stats.wait_cycles += 1;
                    false
                }
            },
            State::WaitAccept => {
                if self.port.take_accept(net, now).is_some() {
                    self.state = State::Ready;
                    true
                } else {
                    self.stats.wait_cycles += 1;
                    false
                }
            }
        }
    }

    fn execute(&mut self, now: Cycle, net: &mut LinkArena) {
        let Some(&instr) = self.image.instrs.get(self.pc) else {
            self.stop_with_fault(now, TgFault::PcOutOfRange { pc: self.pc });
            return;
        };
        self.stats.instructions += 1;
        let reg = |r: crate::isa::TgReg| self.regs[r.num() as usize];
        match instr {
            TgInstr::Read { addr } => {
                self.port
                    .assert_request(net, OcpRequest::read(reg(addr)), now);
                self.stats.reads += 1;
                self.state = State::WaitResp;
                self.pc += 1;
            }
            TgInstr::Write { addr, data } => {
                self.port
                    .assert_request(net, OcpRequest::write(reg(addr), reg(data)), now);
                self.stats.writes += 1;
                self.state = State::WaitAccept;
                self.pc += 1;
            }
            TgInstr::BurstRead { addr, count } => {
                let n = reg(count);
                if n == 0 || n > 255 {
                    self.stop_with_fault(
                        now,
                        TgFault::BadBurstCount {
                            pc: self.pc,
                            value: n,
                        },
                    );
                    return;
                }
                self.port
                    .assert_request(net, OcpRequest::burst_read(reg(addr), n as u8), now);
                self.stats.burst_reads += 1;
                self.state = State::WaitResp;
                self.pc += 1;
            }
            TgInstr::BurstWrite { addr, data, count } => {
                let n = reg(count);
                if n == 0 || n > 255 {
                    self.stop_with_fault(
                        now,
                        TgFault::BadBurstCount {
                            pc: self.pc,
                            value: n,
                        },
                    );
                    return;
                }
                let payload = DataWords::splat(reg(data), n as usize);
                self.port
                    .assert_request(net, OcpRequest::burst_write(reg(addr), payload), now);
                self.stats.burst_writes += 1;
                self.state = State::WaitAccept;
                self.pc += 1;
            }
            TgInstr::If { a, b, cond, target } => {
                self.pc = if cond.eval(reg(a), reg(b)) {
                    target as usize
                } else {
                    self.pc + 1
                };
            }
            TgInstr::Jump { target } => {
                self.pc = target as usize;
            }
            TgInstr::SetRegister { reg: r, value } => {
                self.regs[r.num() as usize] = value;
                self.pc += 1;
            }
            TgInstr::Idle { cycles } => {
                // This cycle is the first idle cycle.
                self.stats.idle_cycles += 1;
                if cycles > 1 {
                    self.state = State::Idling {
                        remaining: cycles - 1,
                    };
                }
                self.pc += 1;
            }
            TgInstr::IdleUntil { cycle } => {
                self.stats.idle_cycles += 1;
                if cycle > now + 1 {
                    self.state = State::IdlingUntil { cycle };
                }
                self.pc += 1;
            }
            TgInstr::Halt => {
                self.halt_cycle = Some(now);
                self.state = State::Halted;
            }
        }
    }
}

impl Component<LinkArena> for TgCore {
    fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        if self.resolve(now, net) {
            self.execute(now, net);
        }
    }

    #[inline]
    fn is_idle(&self, net: &LinkArena) -> bool {
        self.halted() && self.port.is_quiet(net)
    }

    #[inline]
    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        match self.state {
            State::Ready => Activity::Busy,
            State::Halted => {
                if self.port.is_quiet(net) {
                    Activity::Drained
                } else {
                    Activity::Busy
                }
            }
            State::Idling { remaining } => Activity::IdleUntil(now + Cycle::from(remaining)),
            // `cycle <= now` happens when a multi-core scheduler resumes a
            // task past its deadline; the next tick executes immediately.
            State::IdlingUntil { cycle } if cycle > now => Activity::IdleUntil(cycle),
            State::IdlingUntil { .. } => Activity::Busy,
            State::WaitResp | State::WaitAccept => match self.port.next_event_at(net) {
                Some(at) if at > now => Activity::IdleUntil(at),
                Some(_) => Activity::Busy,
                None => Activity::waiting(),
            },
        }
    }

    fn skip(&mut self, now: Cycle, next: Cycle, _net: &mut LinkArena) {
        let n = next - now;
        match self.state {
            State::Idling { remaining } => {
                debug_assert!(n <= Cycle::from(remaining));
                self.stats.idle_cycles += n;
                let left = remaining - n as u32;
                if left == 0 {
                    self.state = State::Ready;
                } else {
                    self.state = State::Idling { remaining: left };
                }
            }
            State::IdlingUntil { cycle } => {
                debug_assert!(next <= cycle);
                self.stats.idle_cycles += n;
            }
            // Each skipped blocked cycle would have been a failed
            // `resolve` tick; replicate its counter effect exactly.
            State::WaitResp | State::WaitAccept => {
                self.stats.wait_cycles += n;
            }
            // Ready is never skipped; halted ticks have no side effects.
            State::Ready | State::Halted => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::{TgCond, TgReg, RDREG, TEMPREG};
    use crate::program::{TgProgram, TgSymInstr};
    use ntg_mem::MemoryDevice;
    use ntg_ocp::MasterId;

    fn build(f: impl FnOnce(&mut TgProgram)) -> TgImage {
        let mut p = TgProgram::new(0);
        f(&mut p);
        assemble(&p).unwrap()
    }

    /// TG wired straight into one memory device at 0x1000.
    fn system(image: TgImage) -> (LinkArena, TgCore, MemoryDevice) {
        let mut net = LinkArena::new();
        let (mport, sport) = net.channel("tg0", MasterId(0));
        let mem = MemoryDevice::new("ram", 0x1000, 0x1000, sport);
        (net, TgCore::new("tg0", mport, image), mem)
    }

    fn run(net: &mut LinkArena, tg: &mut TgCore, mem: &mut MemoryDevice, max: Cycle) -> Cycle {
        for now in 0..max {
            tg.tick(now, net);
            mem.tick(now, net);
            if tg.halted() && tg.port.is_quiet(net) {
                return now;
            }
        }
        panic!("TG did not halt within {max} cycles");
    }

    #[test]
    fn idle_then_halt_timing_is_exact() {
        let img = build(|p| {
            p.push(TgSymInstr::Idle(11));
            p.push(TgSymInstr::Halt);
        });
        let (mut net, mut tg, mut mem) = system(img);
        run(&mut net, &mut tg, &mut mem, 100);
        // Idle occupies cycles 0..=10, halt executes at 11.
        assert_eq!(tg.halt_cycle(), Some(11));
        assert_eq!(tg.stats().idle_cycles, 11);
    }

    #[test]
    fn idle_one_costs_one_cycle() {
        let img = build(|p| {
            p.push(TgSymInstr::Idle(1));
            p.push(TgSymInstr::Halt);
        });
        let (mut net, mut tg, mut mem) = system(img);
        run(&mut net, &mut tg, &mut mem, 100);
        assert_eq!(tg.halt_cycle(), Some(1));
    }

    #[test]
    fn read_blocks_and_captures_rdreg() {
        let img = build(|p| {
            p.inits.push((TgReg::new(2), 0x1010));
            p.push(TgSymInstr::Read(TgReg::new(2)));
            p.push(TgSymInstr::Halt);
        });
        let (mut net, mut tg, mut mem) = system(img);
        mem.poke(0x1010, 0xCAFE);
        run(&mut net, &mut tg, &mut mem, 100);
        assert_eq!(tg.regs()[0], 0xCAFE);
        // read asserts @0, resp pushed @3, visible @4 → halt at 4.
        assert_eq!(tg.halt_cycle(), Some(4));
        // Cycles 1..=3 were failed resolves while blocked.
        assert_eq!(tg.stats().wait_cycles, 3);
    }

    #[test]
    fn write_is_posted_but_waits_for_accept() {
        let img = build(|p| {
            p.inits.push((TgReg::new(2), 0x1004));
            p.inits.push((TgReg::new(3), 0x99));
            p.push(TgSymInstr::Write(TgReg::new(2), TgReg::new(3)));
            p.push(TgSymInstr::Halt);
        });
        let (mut net, mut tg, mut mem) = system(img);
        run(&mut net, &mut tg, &mut mem, 100);
        assert_eq!(mem.peek(0x1004), 0x99);
        // write asserts @0, accepted @3 (after 1 ws + 1 beat), visible
        // @4 → halt at 4.
        assert_eq!(tg.halt_cycle(), Some(4));
        assert_eq!(tg.stats().wait_cycles, 3);
    }

    #[test]
    fn burst_read_uses_count_register() {
        let img = build(|p| {
            p.inits.push((TgReg::new(2), 0x1000));
            p.inits.push((TgReg::new(4), 4));
            p.push(TgSymInstr::BurstRead(TgReg::new(2), TgReg::new(4)));
            p.push(TgSymInstr::Halt);
        });
        let (mut net, mut tg, mut mem) = system(img);
        mem.load_words(0x1000, &[7, 8, 9, 10]);
        run(&mut net, &mut tg, &mut mem, 100);
        assert_eq!(tg.regs()[0], 7, "rdreg holds the first burst word");
        assert_eq!(tg.stats().burst_reads, 1);
    }

    #[test]
    fn burst_write_repeats_data_word() {
        let img = build(|p| {
            p.inits.push((TgReg::new(2), 0x1020));
            p.inits.push((TgReg::new(3), 0xAB));
            p.inits.push((TgReg::new(4), 3));
            p.push(TgSymInstr::BurstWrite(
                TgReg::new(2),
                TgReg::new(3),
                TgReg::new(4),
            ));
            p.push(TgSymInstr::Halt);
        });
        let (mut net, mut tg, mut mem) = system(img);
        run(&mut net, &mut tg, &mut mem, 100);
        assert_eq!(mem.peek(0x1020), 0xAB);
        assert_eq!(mem.peek(0x1028), 0xAB);
    }

    #[test]
    fn bad_burst_count_faults() {
        let img = build(|p| {
            p.inits.push((TgReg::new(2), 0x1000));
            p.inits.push((TgReg::new(4), 0));
            p.push(TgSymInstr::BurstRead(TgReg::new(2), TgReg::new(4)));
        });
        let (mut net, mut tg, mut mem) = system(img);
        for now in 0..10 {
            tg.tick(now, &mut net);
            mem.tick(now, &mut net);
        }
        assert_eq!(tg.fault(), Some(TgFault::BadBurstCount { pc: 0, value: 0 }));
    }

    #[test]
    fn running_off_the_end_faults() {
        let img = build(|p| {
            p.push(TgSymInstr::Idle(1));
        });
        let (mut net, mut tg, mut mem) = system(img);
        for now in 0..10 {
            tg.tick(now, &mut net);
            mem.tick(now, &mut net);
        }
        assert_eq!(tg.fault(), Some(TgFault::PcOutOfRange { pc: 1 }));
    }

    #[test]
    fn semchk_loop_polls_until_expected() {
        // Poll 0x1000 until it reads 5. The memory starts at 0; we flip
        // it after a while, emulating another master's release.
        let img = build(|p| {
            p.inits.push((TgReg::new(2), 0x1000));
            p.inits.push((TEMPREG, 5));
            p.label("semchk");
            p.push(TgSymInstr::Read(TgReg::new(2)));
            p.push(TgSymInstr::If(RDREG, TEMPREG, TgCond::Ne, "semchk".into()));
            p.push(TgSymInstr::Halt);
        });
        let (mut net, mut tg, mut mem) = system(img);
        let mut halted_at = None;
        for now in 0..200 {
            if now == 40 {
                mem.poke(0x1000, 5);
            }
            tg.tick(now, &mut net);
            mem.tick(now, &mut net);
            if tg.halted() {
                halted_at = Some(now);
                break;
            }
        }
        let at = halted_at.expect("poll loop must terminate");
        assert!(at > 40, "several failed polls before the flip");
        assert!(tg.stats().reads >= 5, "polled repeatedly");
        assert_eq!(tg.regs()[0], 5);
    }

    #[test]
    fn idle_until_waits_for_absolute_cycle() {
        let img = build(|p| {
            p.push(TgSymInstr::IdleUntil(20));
            p.push(TgSymInstr::Halt);
        });
        let (mut net, mut tg, mut mem) = system(img);
        run(&mut net, &mut tg, &mut mem, 100);
        assert_eq!(tg.halt_cycle(), Some(20));
    }

    #[test]
    fn idle_until_in_the_past_is_single_cycle() {
        let img = build(|p| {
            p.push(TgSymInstr::Idle(30));
            p.push(TgSymInstr::IdleUntil(5));
            p.push(TgSymInstr::Halt);
        });
        let (mut net, mut tg, mut mem) = system(img);
        run(&mut net, &mut tg, &mut mem, 100);
        assert_eq!(tg.halt_cycle(), Some(31), "acts as a one-cycle idle");
    }

    #[test]
    fn jump_rewinds_like_the_paper_listing() {
        // start: Write; Jump(start) — runs forever; check it repeats.
        let img = build(|p| {
            p.inits.push((TgReg::new(2), 0x1000));
            p.inits.push((TgReg::new(3), 1));
            p.label("start");
            p.push(TgSymInstr::Write(TgReg::new(2), TgReg::new(3)));
            p.push(TgSymInstr::Jump("start".into()));
        });
        let (mut net, mut tg, mut mem) = system(img);
        for now in 0..100 {
            tg.tick(now, &mut net);
            mem.tick(now, &mut net);
        }
        assert!(!tg.halted());
        assert!(tg.stats().writes >= 3, "rewound and re-issued");
    }
}
