//! Small, self-contained pseudo-random number generation.
//!
//! The repository builds with **no external crates** (DESIGN §6), so the
//! stochastic-baseline traffic generator and the sweep engine's per-job
//! seed derivation use this in-tree generator instead of the `rand`
//! crate:
//!
//! * [`SplitMix64`] — Steele/Lea/Vigna's 64-bit mixer. Used to expand a
//!   user seed into generator state and to derive independent per-stream
//!   seeds (`splitmix64(base ^ stream_hash)`).
//! * [`Xoshiro256`] — Blackman/Vigna's `xoshiro256**`, a fast
//!   general-purpose generator with a 256-bit state and excellent
//!   statistical quality for simulation workloads.
//!
//! Both are tiny public-domain algorithms, re-implemented here from the
//! published reference code. Determinism contract: for a given seed the
//! output sequence is fixed forever — campaign results and regression
//! tests may rely on it.

/// SplitMix64: a 64-bit state mixer used for seeding and seed derivation.
///
/// # Example
///
/// ```
/// use ntg_core::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(SplitMix64::new(42).next_u64(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a mixer from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives an independent 64-bit seed from a base seed and a stream
/// label, so unrelated consumers (campaign jobs, per-core sources) get
/// decorrelated generators from one user-facing seed.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

/// `xoshiro256**` — the workhorse generator.
///
/// # Example
///
/// ```
/// use ntg_core::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from_u64(7);
/// let x = rng.range_u32(10, 20);
/// assert!((10..=20).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator by expanding `seed` through [`SplitMix64`]
    /// (the seeding procedure recommended by the algorithm's authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output (upper half — the stronger bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, n)` (`n` ≥ 1), via Lemire's widening
    /// multiply — unbiased enough for traffic modelling without a
    /// rejection loop.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform `u32` in `[min, max]` (inclusive; `max` is clamped up to
    /// `min`).
    pub fn range_u32(&mut self, min: u32, max: u32) -> u32 {
        let max = max.max(min);
        min + self.below(u64::from(max - min) + 1) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the published
        // splitmix64.c.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256::seed_from_u64(99);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256::seed_from_u64(99);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Xoshiro256::seed_from_u64(100);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn range_u32_inclusive_bounds() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..2000 {
            let v = r.range_u32(3, 6);
            assert!((3..=6).contains(&v));
            lo |= v == 3;
            hi |= v == 6;
        }
        assert!(lo && hi);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(21);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut r = Xoshiro256::seed_from_u64(31);
        let hits = (0..10_000).filter(|_| r.bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        let mut r = Xoshiro256::seed_from_u64(32);
        assert!((0..100).all(|_| !r.bool(0.0)));
        assert!((0..100).all(|_| r.bool(1.0)));
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0));
    }
}
