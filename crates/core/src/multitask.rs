//! Preemptive multitasking on one TG socket (the paper's §7 future
//! work).
//!
//! The paper closes with: "Research will also include analysis of the
//! behavior of a system in which multiple tasks run on a single
//! processor and are dynamically scheduled by an OS, either based upon
//! timeslices (preemptive multitasking) or upon transition to a sleep
//! state… Context switching-related issues will need to be modeled."
//!
//! [`TgMultiCore`] implements the timeslice variant: several TG programs
//! (one per task) share a single OCP master socket under round-robin
//! scheduling with a fixed quantum and a modelled context-switch penalty.
//! Preemption only happens at instruction boundaries while the running
//! task is not blocked on an outstanding OCP transaction — hardware
//! cannot retract a request that is already driving the wires.

use ntg_ocp::{LinkArena, MasterPort};
use ntg_sim::{Activity, Component, Cycle};

use crate::image::TgImage;
use crate::tgcore::{TgCore, TgFault, TgStats};

/// Scheduler parameters for [`TgMultiCore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimesliceConfig {
    /// Cycles a task may run before it becomes preemptible.
    pub quantum: u32,
    /// Idle cycles charged for every context switch (register save,
    /// scheduler work).
    pub switch_penalty: u32,
}

impl Default for TimesliceConfig {
    /// 100-cycle quantum, 20-cycle switch penalty.
    fn default() -> Self {
        Self {
            quantum: 100,
            switch_penalty: 20,
        }
    }
}

/// Scheduling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Context switches performed.
    pub switches: u64,
    /// Cycles spent in switch penalties.
    pub switch_cycles: u64,
}

/// Several TG programs time-sliced onto one OCP master socket.
///
/// Each task is a full [`TgCore`] sharing the socket's [`MasterPort`];
/// only the scheduled task ticks, so the port is never contended. The
/// multicore halts when every task has halted.
///
/// # Example
///
/// See `crates/core/tests/multitask.rs` for a full system test; the
/// shape is:
///
/// ```ignore
/// let mt = TgMultiCore::new("tg0", port, vec![task_a, task_b],
///                           TimesliceConfig::default());
/// ```
pub struct TgMultiCore {
    name: String,
    tasks: Vec<TgCore>,
    current: usize,
    slice_left: u32,
    switching: u32,
    cfg: TimesliceConfig,
    stats: SchedulerStats,
}

impl TgMultiCore {
    /// Creates a multitasking TG running `images` as tasks, round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty or the quantum is zero.
    pub fn new(
        name: impl Into<String>,
        port: MasterPort,
        images: Vec<TgImage>,
        cfg: TimesliceConfig,
    ) -> Self {
        assert!(!images.is_empty(), "need at least one task");
        assert!(cfg.quantum > 0, "quantum must be non-zero");
        let name = name.into();
        let tasks = images
            .into_iter()
            .enumerate()
            .map(|(i, image)| TgCore::new(format!("{name}.task{i}"), port, image))
            .collect();
        Self {
            name,
            tasks,
            current: 0,
            slice_left: cfg.quantum,
            switching: 0,
            cfg,
            stats: SchedulerStats::default(),
        }
    }

    /// Whether every task has halted.
    pub fn halted(&self) -> bool {
        self.tasks.iter().all(TgCore::halted)
    }

    /// The halt cycle of the last task to finish, if all have.
    pub fn halt_cycle(&self) -> Option<Cycle> {
        self.tasks
            .iter()
            .map(TgCore::halt_cycle)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }

    /// The first fault in any task, if one occurred.
    pub fn fault(&self) -> Option<TgFault> {
        self.tasks.iter().find_map(TgCore::fault)
    }

    /// Per-task execution statistics.
    pub fn task_stats(&self) -> Vec<TgStats> {
        self.tasks.iter().map(TgCore::stats).collect()
    }

    /// Per-task halt cycles (None for still-running tasks).
    pub fn task_halt_cycles(&self) -> Vec<Option<Cycle>> {
        self.tasks.iter().map(TgCore::halt_cycle).collect()
    }

    /// Scheduler statistics.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Index of the task currently owning the socket.
    pub fn current_task(&self) -> usize {
        self.current
    }

    /// Rotates to the next runnable task (if any other exists).
    fn preempt(&mut self) {
        let n = self.tasks.len();
        let next = (1..=n)
            .map(|k| (self.current + k) % n)
            .find(|&i| !self.tasks[i].halted());
        if let Some(next) = next {
            if next != self.current {
                self.current = next;
                self.switching = self.cfg.switch_penalty;
                self.stats.switches += 1;
            }
        }
        self.slice_left = self.cfg.quantum;
    }
}

impl Component<LinkArena> for TgMultiCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        if self.halted() {
            return;
        }
        if self.switching > 0 {
            self.switching -= 1;
            self.stats.switch_cycles += 1;
            return;
        }
        // If the current task halted, hand over immediately (no penalty
        // refund: the switch still costs).
        if self.tasks[self.current].halted() {
            self.preempt();
            if self.switching > 0 {
                self.switching -= 1;
                self.stats.switch_cycles += 1;
                return;
            }
        }
        self.tasks[self.current].tick(now, net);
        self.slice_left = self.slice_left.saturating_sub(1);
        if self.slice_left == 0 {
            if self.tasks[self.current].is_blocked() {
                // Cannot retract an in-flight request; retry next cycle.
                self.slice_left = 1;
            } else {
                self.preempt();
            }
        }
    }

    fn is_idle(&self, _net: &LinkArena) -> bool {
        self.halted()
    }

    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        if self.halted() {
            // Tasks share one port; any task's quiet check covers it.
            return if self.tasks[self.current].is_idle(net) {
                Activity::Drained
            } else {
                Activity::Busy
            };
        }
        if self.switching > 0 {
            return Activity::IdleUntil(now + Cycle::from(self.switching));
        }
        if self.tasks[self.current].halted() {
            // The hand-over happens inside tick.
            return Activity::Busy;
        }
        // The running task's wake, clipped to the end of the timeslice:
        // the tick that exhausts the slice performs the preemption and
        // must execute for real.
        if self.slice_left <= 1 {
            return Activity::Busy;
        }
        let slice_end = now + Cycle::from(self.slice_left) - 1;
        match self.tasks[self.current].next_activity(now, net) {
            Activity::IdleUntil(w) if w.min(slice_end) > now => {
                Activity::IdleUntil(w.min(slice_end))
            }
            _ => Activity::Busy,
        }
    }

    fn skip(&mut self, now: Cycle, next: Cycle, net: &mut LinkArena) {
        if self.halted() {
            return;
        }
        let n = (next - now) as u32;
        if self.switching > 0 {
            debug_assert!(Cycle::from(self.switching) >= next - now);
            self.switching -= n;
            self.stats.switch_cycles += u64::from(n);
            return;
        }
        // Scheduled-task idle window: replicate the task's bookkeeping
        // and the per-tick slice countdown. The hint above guarantees
        // `next` stays short of the preempting tick, so `slice_left`
        // never reaches zero here.
        self.tasks[self.current].skip(now, next, net);
        self.slice_left -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::TgReg;
    use crate::program::{TgProgram, TgSymInstr};
    use ntg_mem::MemoryDevice;
    use ntg_ocp::MasterId;

    /// A task that writes `value` to `addr` then idles a bit, `n` times.
    fn writer_task(addr: u32, value: u32, n: usize) -> TgImage {
        let mut p = TgProgram::new(0);
        p.inits.push((TgReg::new(2), addr));
        p.inits.push((TgReg::new(3), value));
        for _ in 0..n {
            p.push(TgSymInstr::Write(TgReg::new(2), TgReg::new(3)));
            p.push(TgSymInstr::Idle(30));
        }
        p.push(TgSymInstr::Halt);
        assemble(&p).unwrap()
    }

    fn run(net: &mut LinkArena, mt: &mut TgMultiCore, mem: &mut MemoryDevice, max: Cycle) -> Cycle {
        for now in 0..max {
            mt.tick(now, net);
            mem.tick(now, net);
            if mt.halted() {
                return now;
            }
        }
        panic!("multitask TG did not halt");
    }

    #[test]
    fn two_tasks_interleave_and_complete() {
        let mut net = LinkArena::new();
        let (mport, sport) = net.channel("tg", MasterId(0));
        let mut mem = MemoryDevice::new("ram", 0x1000, 0x100, sport);
        let mut mt = TgMultiCore::new(
            "tg",
            mport,
            vec![
                writer_task(0x1000, 0xAAAA, 4),
                writer_task(0x1004, 0xBBBB, 4),
            ],
            TimesliceConfig {
                quantum: 40,
                switch_penalty: 5,
            },
        );
        run(&mut net, &mut mt, &mut mem, 10_000);
        assert_eq!(mem.peek(0x1000), 0xAAAA);
        assert_eq!(mem.peek(0x1004), 0xBBBB);
        assert!(
            mt.scheduler_stats().switches >= 2,
            "tasks must actually interleave: {:?}",
            mt.scheduler_stats()
        );
        assert!(mt.fault().is_none());
    }

    #[test]
    fn context_switch_penalty_lengthens_the_run() {
        let build = |penalty: u32| {
            let mut net = LinkArena::new();
            let (mport, sport) = net.channel("tg", MasterId(0));
            let mem = MemoryDevice::new("ram", 0x1000, 0x100, sport);
            let mt = TgMultiCore::new(
                "tg",
                mport,
                vec![writer_task(0x1000, 1, 6), writer_task(0x1004, 2, 6)],
                TimesliceConfig {
                    quantum: 25,
                    switch_penalty: penalty,
                },
            );
            (net, mt, mem)
        };
        let (mut net1, mut cheap, mut mem1) = build(0);
        let t_cheap = run(&mut net1, &mut cheap, &mut mem1, 100_000);
        let (mut net2, mut costly, mut mem2) = build(40);
        let t_costly = run(&mut net2, &mut costly, &mut mem2, 100_000);
        assert!(
            t_costly > t_cheap,
            "switch penalty must cost cycles: {t_cheap} vs {t_costly}"
        );
        assert_eq!(
            costly.scheduler_stats().switch_cycles,
            costly.scheduler_stats().switches * 40
        );
    }

    #[test]
    fn preemption_never_interrupts_a_blocked_transaction() {
        // Quantum of 1: the scheduler wants to switch every cycle, but
        // must defer while a write waits for acceptance. If it switched
        // mid-transaction the other task's assert would panic the
        // channel ("already pending").
        let mut net = LinkArena::new();
        let (mport, sport) = net.channel("tg", MasterId(0));
        let mut mem = MemoryDevice::new("ram", 0x1000, 0x100, sport);
        let mut mt = TgMultiCore::new(
            "tg",
            mport,
            vec![writer_task(0x1000, 7, 5), writer_task(0x1004, 8, 5)],
            TimesliceConfig {
                quantum: 1,
                switch_penalty: 0,
            },
        );
        run(&mut net, &mut mt, &mut mem, 100_000);
        assert_eq!(mem.peek(0x1000), 7);
        assert_eq!(mem.peek(0x1004), 8);
    }

    #[test]
    fn single_task_never_switches() {
        let mut net = LinkArena::new();
        let (mport, sport) = net.channel("tg", MasterId(0));
        let mut mem = MemoryDevice::new("ram", 0x1000, 0x100, sport);
        let mut mt = TgMultiCore::new(
            "tg",
            mport,
            vec![writer_task(0x1000, 3, 3)],
            TimesliceConfig {
                quantum: 5,
                switch_penalty: 10,
            },
        );
        run(&mut net, &mut mt, &mut mem, 10_000);
        assert_eq!(mt.scheduler_stats().switches, 0);
    }

    #[test]
    fn halt_cycle_is_the_last_task_finish() {
        let mut net = LinkArena::new();
        let (mport, sport) = net.channel("tg", MasterId(0));
        let mut mem = MemoryDevice::new("ram", 0x1000, 0x100, sport);
        let mut mt = TgMultiCore::new(
            "tg",
            mport,
            vec![writer_task(0x1000, 1, 1), writer_task(0x1004, 2, 8)],
            TimesliceConfig::default(),
        );
        run(&mut net, &mut mt, &mut mem, 100_000);
        let finishes = mt.task_halt_cycles();
        assert_eq!(mt.halt_cycle(), finishes.iter().flatten().copied().max());
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_task_list_rejected() {
        let mut net = LinkArena::new();
        let (mport, _sport) = net.channel("tg", MasterId(0));
        let _ = TgMultiCore::new("tg", mport, vec![], TimesliceConfig::default());
    }
}
