//! The symbolic TG program form (`.tgp` content, before label
//! resolution).

use crate::isa::{TgCond, TgReg};

/// A symbolic TG instruction; branch targets are label names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TgSymInstr {
    /// Blocking read from the address in a register.
    Read(TgReg),
    /// Posted write: `Write(addr, data)`.
    Write(TgReg, TgReg),
    /// Blocking burst read: `BurstRead(addr, count)`.
    BurstRead(TgReg, TgReg),
    /// Posted burst write: `BurstWrite(addr, data, count)`.
    BurstWrite(TgReg, TgReg, TgReg),
    /// Conditional branch: `If(a, b, cond, label)`.
    If(TgReg, TgReg, TgCond, String),
    /// Unconditional branch to a label.
    Jump(String),
    /// Load an immediate.
    SetRegister(TgReg, u32),
    /// Wait a fixed number of cycles (≥ 1).
    Idle(u32),
    /// Wait until an absolute cycle (clone-mode extension).
    IdleUntil(u64),
    /// Stop.
    Halt,
}

/// One listing item: a label definition or an instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TgItem {
    /// A label at this position.
    Label(String),
    /// An instruction.
    Instr(TgSymInstr),
}

/// A complete symbolic TG program: what a `.tgp` file holds.
///
/// Consists of the core header (`MASTER[id, thread]`, paper Figure 3(b)),
/// the register-file initialisation (`REGISTER` directives — loaded at
/// program-load time, costing zero cycles) and the instruction listing
/// between `BEGIN` and `END`.
///
/// Programs translated from traces collected on *different* interconnects
/// compare equal (`PartialEq`) — reproducing the paper's validation
/// experiment is literally an `assert_eq!` on this type.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TgProgram {
    /// The emulated master's id.
    pub master: u16,
    /// The emulated thread id (0 — multithreaded cores are future work in
    /// the paper too).
    pub thread: u16,
    /// Register-file initialisation, applied before cycle 0.
    pub inits: Vec<(TgReg, u32)>,
    /// The listing.
    pub items: Vec<TgItem>,
}

impl TgProgram {
    /// Creates an empty program for `master`.
    pub fn new(master: u16) -> Self {
        Self {
            master,
            thread: 0,
            inits: Vec::new(),
            items: Vec::new(),
        }
    }

    /// Appends a label.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.items.push(TgItem::Label(name.into()));
        self
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: TgSymInstr) -> &mut Self {
        self.items.push(TgItem::Instr(instr));
        self
    }

    /// The number of instructions (labels excluded).
    pub fn len_instrs(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, TgItem::Instr(_)))
            .count()
    }

    /// Iterates over the instructions (labels skipped).
    pub fn instrs(&self) -> impl Iterator<Item = &TgSymInstr> {
        self.items.iter().filter_map(|i| match i {
            TgItem::Instr(instr) => Some(instr),
            TgItem::Label(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{RDREG, TEMPREG};

    #[test]
    fn builder_collects_items() {
        let mut p = TgProgram::new(3);
        p.inits.push((TgReg::new(2), 0x104));
        p.push(TgSymInstr::Idle(11));
        p.push(TgSymInstr::Read(TgReg::new(2)));
        p.label("semchk");
        p.push(TgSymInstr::Read(TgReg::new(2)));
        p.push(TgSymInstr::If(
            RDREG,
            TEMPREG,
            crate::isa::TgCond::Ne,
            "semchk".into(),
        ));
        p.push(TgSymInstr::Halt);
        assert_eq!(p.len_instrs(), 5);
        assert_eq!(p.items.len(), 6);
        assert_eq!(p.instrs().count(), 5);
    }

    #[test]
    fn equality_is_structural() {
        let mut a = TgProgram::new(0);
        a.push(TgSymInstr::Idle(3));
        let mut b = TgProgram::new(0);
        b.push(TgSymInstr::Idle(3));
        assert_eq!(a, b);
        b.push(TgSymInstr::Halt);
        assert_ne!(a, b);
    }
}
