//! Stochastic traffic generation — the baseline the paper argues
//! *against*.
//!
//! The paper's related work (§2, citing Lahiri et al.): "a stochastic
//! model is used for NoC exploration. Traffic behavior is statistically
//! represented by means of uniform, Gaussian, or Poisson distributions.
//! Such distributions assume a degree of correlation within the
//! communication transactions which is unlikely in a SoC environment.
//! … since the characteristics (functionality and timing) of the IP core
//! are not captured, such models are unreliable for optimizing NoC
//! features."
//!
//! [`StochasticTg`] implements that baseline so the claim can be
//! *measured* (see the `ablation_stochastic` experiment binary): a
//! blocking OCP master issuing random reads/writes with configurable
//! inter-arrival and address distributions, seeded for reproducibility.
//! It has no application structure — no compute/communication phases, no
//! cache-refill bursts tied to program locality, and crucially no
//! *reactivity*: it never polls, so synchronisation dynamics are absent
//! from its traffic.

use crate::rng::Xoshiro256;
use ntg_ocp::{DataWords, LinkArena, MasterPort, OcpRequest, OcpStatus};
use ntg_sim::{Activity, Component, Cycle};

/// Inter-arrival (idle-gap) distribution between transactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GapDistribution {
    /// Uniform in `[min, max]` cycles.
    Uniform {
        /// Smallest gap.
        min: u32,
        /// Largest gap (inclusive).
        max: u32,
    },
    /// Geometric with mean `mean` cycles — the discrete analogue of the
    /// exponential inter-arrival of a Poisson process.
    Geometric {
        /// Mean gap in cycles (≥ 1).
        mean: u32,
    },
    /// Every gap exactly `gap` cycles (periodic traffic).
    Fixed {
        /// The constant gap.
        gap: u32,
    },
}

impl GapDistribution {
    fn sample(&self, rng: &mut Xoshiro256) -> u32 {
        match *self {
            GapDistribution::Uniform { min, max } => rng.range_u32(min, max),
            GapDistribution::Geometric { mean } => {
                let p = 1.0 / f64::from(mean.max(1));
                // Clamp away from 0 so ln(u) stays finite.
                let u = rng.f64().max(f64::EPSILON);
                (u.ln() / (1.0 - p).ln()).floor() as u32
            }
            GapDistribution::Fixed { gap } => gap,
        }
    }
}

/// Configuration of a [`StochasticTg`].
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticConfig {
    /// RNG seed (runs are reproducible per seed).
    pub seed: u64,
    /// Word-aligned address ranges `(base, size)` to draw targets from,
    /// uniformly.
    pub ranges: Vec<(u32, u32)>,
    /// Probability in `[0, 1]` that a transaction is a write.
    pub write_fraction: f64,
    /// Probability in `[0, 1]` that a read is a 4-beat burst (modelling
    /// cache-refill-like traffic without any actual locality).
    pub burst_fraction: f64,
    /// Idle-gap distribution between transactions.
    pub gap: GapDistribution,
    /// Total transactions to issue before halting.
    pub transactions: u64,
}

impl Default for StochasticConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            ranges: vec![(0x1000, 0x1000)],
            write_fraction: 0.4,
            burst_fraction: 0.2,
            gap: GapDistribution::Geometric { mean: 10 },
            transactions: 1_000,
        }
    }
}

impl StochasticConfig {
    /// Serialises the configuration for the persistent artifact store
    /// (little-endian, deterministic; framing/versioning is the
    /// caller's concern — store entries carry their own header and
    /// checksum).
    pub fn encode(&self, w: &mut ntg_trace::ByteWriter) {
        w.u64(self.seed);
        w.u32(self.ranges.len() as u32);
        for &(base, size) in &self.ranges {
            w.u32(base);
            w.u32(size);
        }
        w.f64(self.write_fraction);
        w.f64(self.burst_fraction);
        match self.gap {
            GapDistribution::Uniform { min, max } => {
                w.u8(0);
                w.u32(min);
                w.u32(max);
            }
            GapDistribution::Geometric { mean } => {
                w.u8(1);
                w.u32(mean);
            }
            GapDistribution::Fixed { gap } => {
                w.u8(2);
                w.u32(gap);
            }
        }
        w.u64(self.transactions);
    }

    /// Deserialises a configuration written by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`BinCodecError`](ntg_trace::BinCodecError) on a
    /// truncated stream or an undefined distribution tag.
    pub fn decode(r: &mut ntg_trace::ByteReader<'_>) -> Result<Self, ntg_trace::BinCodecError> {
        let seed = r.u64()?;
        let n_ranges = r.u32()? as usize;
        let mut ranges = Vec::with_capacity(n_ranges.min(1 << 16));
        for _ in 0..n_ranges {
            let base = r.u32()?;
            let size = r.u32()?;
            ranges.push((base, size));
        }
        let write_fraction = r.f64()?;
        let burst_fraction = r.f64()?;
        let tag_at = r.offset();
        let gap = match r.u8()? {
            0 => GapDistribution::Uniform {
                min: r.u32()?,
                max: r.u32()?,
            },
            1 => GapDistribution::Geometric { mean: r.u32()? },
            2 => GapDistribution::Fixed { gap: r.u32()? },
            _ => return Err(ntg_trace::BinCodecError::BadTag { offset: tag_at }),
        };
        let transactions = r.u64()?;
        Ok(Self {
            seed,
            ranges,
            write_fraction,
            burst_fraction,
            gap,
            transactions,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idling { remaining: u32 },
    WaitResp,
    WaitAccept,
    Ready,
    Halted,
}

/// A stochastic (statistically distributed) OCP traffic source.
///
/// Blocking like every platform master: reads wait for their response,
/// writes for acceptance — so the *offered load* adapts to network
/// back-pressure even though the traffic itself carries no application
/// structure.
pub struct StochasticTg {
    name: String,
    port: MasterPort,
    cfg: StochasticConfig,
    rng: Xoshiro256,
    state: State,
    issued: u64,
    errors: u64,
    halt_cycle: Option<Cycle>,
}

impl StochasticTg {
    /// Creates a stochastic source.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.ranges` is empty, a range is empty/misaligned, or
    /// the fractions are outside `[0, 1]`.
    pub fn new(name: impl Into<String>, port: MasterPort, cfg: StochasticConfig) -> Self {
        assert!(!cfg.ranges.is_empty(), "need at least one address range");
        for &(base, size) in &cfg.ranges {
            assert!(
                base % 4 == 0 && size >= 4 && size % 4 == 0,
                "ranges must be word-aligned and non-empty"
            );
        }
        assert!(
            (0.0..=1.0).contains(&cfg.write_fraction) && (0.0..=1.0).contains(&cfg.burst_fraction),
            "fractions must be within [0, 1]"
        );
        let rng = Xoshiro256::seed_from_u64(cfg.seed);
        Self {
            name: name.into(),
            port,
            cfg,
            rng,
            state: State::Ready,
            issued: 0,
            errors: 0,
            halt_cycle: None,
        }
    }

    /// Whether the configured number of transactions has been issued and
    /// completed.
    pub fn halted(&self) -> bool {
        self.state == State::Halted
    }

    /// The cycle the last transaction completed in, if done.
    pub fn halt_cycle(&self) -> Option<Cycle> {
        self.halt_cycle
    }

    /// Transactions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Error responses received so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    fn pick_addr(&mut self, burst_words: u32) -> u32 {
        let idx = self.rng.below(self.cfg.ranges.len() as u64) as usize;
        let (base, size) = self.cfg.ranges[idx];
        let words = size / 4;
        let span = words.saturating_sub(burst_words - 1).max(1);
        base + self.rng.below(u64::from(span)) as u32 * 4
    }

    fn issue(&mut self, now: Cycle, net: &mut LinkArena) {
        let is_write = self.rng.bool(self.cfg.write_fraction);
        let is_burst = self.rng.bool(self.cfg.burst_fraction);
        let req = match (is_write, is_burst) {
            (false, false) => OcpRequest::read(self.pick_addr(1)),
            (false, true) => OcpRequest::burst_read(self.pick_addr(4), 4),
            (true, false) => {
                let addr = self.pick_addr(1);
                let data = self.rng.next_u32();
                OcpRequest::write(addr, data)
            }
            (true, true) => {
                let addr = self.pick_addr(4);
                let data: DataWords = (0..4).map(|_| self.rng.next_u32()).collect();
                OcpRequest::burst_write(addr, data)
            }
        };
        let expects = req.cmd.expects_response();
        self.port.assert_request(net, req, now);
        self.issued += 1;
        self.state = if expects {
            State::WaitResp
        } else {
            State::WaitAccept
        };
    }

    fn after_completion(&mut self, now: Cycle) -> bool {
        if self.issued >= self.cfg.transactions {
            self.halt_cycle = Some(now);
            self.state = State::Halted;
            return false;
        }
        let gap = self.cfg.gap.sample(&mut self.rng);
        if gap > 0 {
            self.state = State::Idling { remaining: gap };
            false
        } else {
            self.state = State::Ready;
            true
        }
    }
}

impl Component<LinkArena> for StochasticTg {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        let ready = match self.state {
            State::Halted => false,
            State::Ready => true,
            State::Idling { remaining } => {
                if remaining <= 1 {
                    self.state = State::Ready;
                } else {
                    self.state = State::Idling {
                        remaining: remaining - 1,
                    };
                }
                false
            }
            State::WaitResp => match self.port.take_response(net, now) {
                Some(resp) => {
                    if resp.status != OcpStatus::Ok {
                        self.errors += 1;
                    }
                    self.after_completion(now)
                }
                None => false,
            },
            State::WaitAccept => {
                if self.port.take_accept(net, now).is_some() {
                    self.after_completion(now)
                } else {
                    false
                }
            }
        };
        if ready {
            self.issue(now, net);
        }
    }

    fn is_idle(&self, net: &LinkArena) -> bool {
        self.halted() && self.port.is_quiet(net)
    }

    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        match self.state {
            State::Ready => Activity::Busy,
            State::Halted => {
                if self.port.is_quiet(net) {
                    Activity::Drained
                } else {
                    Activity::Busy
                }
            }
            State::Idling { remaining } => Activity::IdleUntil(now + Cycle::from(remaining)),
            State::WaitResp | State::WaitAccept => match self.port.next_event_at(net) {
                Some(at) if at > now => Activity::IdleUntil(at),
                Some(_) => Activity::Busy,
                None => Activity::waiting(),
            },
        }
    }

    fn skip(&mut self, now: Cycle, next: Cycle, _net: &mut LinkArena) {
        if let State::Idling { remaining } = self.state {
            let n = (next - now) as u32;
            debug_assert!(n <= remaining);
            if n == remaining {
                self.state = State::Ready;
            } else {
                self.state = State::Idling {
                    remaining: remaining - n,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_mem::MemoryDevice;
    use ntg_ocp::MasterId;

    fn run_to_halt(cfg: StochasticConfig) -> (StochasticTg, MemoryDevice, Cycle) {
        let mut net = LinkArena::new();
        let (mport, sport) = net.channel("stg", MasterId(0));
        let mut mem = MemoryDevice::new("ram", 0x1000, 0x1000, sport);
        let mut tg = StochasticTg::new("stg", mport, cfg);
        for now in 0..2_000_000u64 {
            tg.tick(now, &mut net);
            mem.tick(now, &mut net);
            if tg.halted() {
                return (tg, mem, now);
            }
        }
        panic!("stochastic TG did not finish");
    }

    #[test]
    fn issues_the_configured_number_of_transactions() {
        let (tg, mem, _) = run_to_halt(StochasticConfig {
            transactions: 200,
            ..StochasticConfig::default()
        });
        assert_eq!(tg.issued(), 200);
        assert_eq!(tg.errors(), 0);
        assert_eq!(mem.reads() + mem.writes(), 200);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let cfg = StochasticConfig {
            transactions: 150,
            seed: 42,
            ..StochasticConfig::default()
        };
        let (_, _, t1) = run_to_halt(cfg.clone());
        let (_, _, t2) = run_to_halt(cfg);
        assert_eq!(t1, t2, "same seed must give identical runs");
    }

    #[test]
    fn different_seeds_differ() {
        let base = StochasticConfig {
            transactions: 150,
            ..StochasticConfig::default()
        };
        let (_, _, t1) = run_to_halt(StochasticConfig {
            seed: 1,
            ..base.clone()
        });
        let (_, _, t2) = run_to_halt(StochasticConfig { seed: 2, ..base });
        assert_ne!(t1, t2, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn write_fraction_zero_means_all_reads() {
        let (_, mem, _) = run_to_halt(StochasticConfig {
            transactions: 100,
            write_fraction: 0.0,
            ..StochasticConfig::default()
        });
        assert_eq!(mem.writes(), 0);
        assert_eq!(mem.reads(), 100);
    }

    #[test]
    fn mean_gap_scales_run_length() {
        let quick = run_to_halt(StochasticConfig {
            transactions: 100,
            gap: GapDistribution::Fixed { gap: 2 },
            ..StochasticConfig::default()
        })
        .2;
        let slow = run_to_halt(StochasticConfig {
            transactions: 100,
            gap: GapDistribution::Fixed { gap: 40 },
            ..StochasticConfig::default()
        })
        .2;
        assert!(
            slow > quick + 100 * 30,
            "larger gaps must stretch the run: {quick} vs {slow}"
        );
    }

    #[test]
    fn bursts_stay_inside_the_range() {
        let (tg, _, _) = run_to_halt(StochasticConfig {
            transactions: 300,
            burst_fraction: 1.0,
            ranges: vec![(0x1000, 0x20)], // 8 words: bursts must fit
            ..StochasticConfig::default()
        });
        assert_eq!(tg.errors(), 0, "no out-of-range bursts");
    }

    #[test]
    #[should_panic(expected = "at least one address range")]
    fn empty_ranges_rejected() {
        let mut net = LinkArena::new();
        let (mport, _s) = net.channel("stg", MasterId(0));
        let _ = StochasticTg::new(
            "stg",
            mport,
            StochasticConfig {
                ranges: vec![],
                ..StochasticConfig::default()
            },
        );
    }

    #[test]
    fn config_codec_round_trips() {
        for cfg in [
            StochasticConfig::default(),
            StochasticConfig {
                seed: u64::MAX,
                ranges: vec![(0x1000, 0x200), (0x1b00_0000, 0x100)],
                write_fraction: 0.375,
                burst_fraction: 1.0,
                gap: GapDistribution::Uniform { min: 0, max: 99 },
                transactions: 0,
            },
            StochasticConfig {
                gap: GapDistribution::Fixed { gap: 7 },
                ..StochasticConfig::default()
            },
        ] {
            let mut w = ntg_trace::ByteWriter::new();
            cfg.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ntg_trace::ByteReader::new(&bytes);
            let back = StochasticConfig::decode(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn config_decode_rejects_bad_gap_tag() {
        let mut w = ntg_trace::ByteWriter::new();
        StochasticConfig::default().encode(&mut w);
        let mut bytes = w.into_bytes();
        // The gap tag sits right after seed(8) + len(4) + one range(8) +
        // two f64 fractions(16).
        bytes[36] = 9;
        let mut r = ntg_trace::ByteReader::new(&bytes);
        assert!(matches!(
            StochasticConfig::decode(&mut r),
            Err(ntg_trace::BinCodecError::BadTag { offset: 36 })
        ));
    }
}
