//! `ntg-translate` — the trace-to-TG-program translator as a command-line
//! tool: reads a `.trc` trace, writes a `.tgp` program.
//!
//! ```text
//! Usage: ntg-translate [OPTIONS] <input.trc>
//!
//! Options:
//!   -o <file>              output path (default: stdout)
//!   --pollable <base:size> pollable address range, hex; repeatable
//!   --mode <m>             clone | timeshift | reactive (default)
//!   --loop                 end with Jump(start) instead of Halt
//!   --poll-idle <n>        extra idle cycles inside Semchk loops
//! ```

use std::process::ExitCode;

use ntg_core::tgp::to_tgp;
use ntg_core::{TraceTranslator, TranslationMode, TranslatorConfig};
use ntg_trace::MasterTrace;

fn fail(msg: &str) -> ExitCode {
    eprintln!("ntg-translate: {msg}");
    ExitCode::FAILURE
}

fn parse_hex(s: &str) -> Option<u32> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    u32::from_str_radix(s, 16).ok()
}

fn main() -> ExitCode {
    let mut input = None;
    let mut output = None;
    let mut cfg = TranslatorConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => output = args.next(),
            "--pollable" => {
                let Some(spec) = args.next() else {
                    return fail("--pollable needs base:size");
                };
                let Some((base, size)) = spec.split_once(':') else {
                    return fail("--pollable needs base:size");
                };
                let (Some(base), Some(size)) = (parse_hex(base), parse_hex(size)) else {
                    return fail("--pollable values must be hex");
                };
                cfg.pollable.push((base, size));
            }
            "--mode" => {
                cfg.mode = match args.next().as_deref() {
                    Some("clone") => TranslationMode::Clone,
                    Some("timeshift") => TranslationMode::Timeshift,
                    Some("reactive") => TranslationMode::Reactive,
                    _ => return fail("--mode must be clone|timeshift|reactive"),
                };
            }
            "--loop" => cfg.loop_forever = true,
            "--poll-idle" => {
                let Some(n) = args.next().and_then(|s| s.parse().ok()) else {
                    return fail("--poll-idle needs a number");
                };
                cfg.poll_idle = n;
            }
            "--help" | "-h" => {
                eprintln!("usage: ntg-translate [-o out.tgp] [--pollable base:size]... [--mode m] [--loop] <input.trc>");
                return ExitCode::SUCCESS;
            }
            _ if input.is_none() => input = Some(arg),
            _ => return fail(&format!("unexpected argument {arg:?}")),
        }
    }
    let Some(input) = input else {
        return fail("missing input .trc file");
    };
    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {input}: {e}")),
    };
    let trace = match MasterTrace::from_trc(&text) {
        Ok(t) => t,
        Err(e) => return fail(&e.to_string()),
    };
    let program = match TraceTranslator::new(cfg).translate(&trace) {
        Ok(p) => p,
        Err(e) => return fail(&e.to_string()),
    };
    let listing = to_tgp(&program);
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, listing) {
                return fail(&format!("cannot write {path}: {e}"));
            }
        }
        None => print!("{listing}"),
    }
    ExitCode::SUCCESS
}
