//! `ntg-tgasm` — the TG assembler/disassembler as a command-line tool:
//! `.tgp` → `.bin` (default) or `.bin` → `.tgp` (`-d`).
//!
//! ```text
//! Usage: ntg-tgasm [-d] [-o <file>] <input>
//! ```
//!
//! The paper's flow uses exactly this step: "an assembler is used to
//! convert the symbolic TG program into a binary image (.bin) which can
//! be loaded into the TG instruction memory and executed" (§5).

use std::process::ExitCode;

use ntg_core::tgp::{from_tgp, to_tgp};
use ntg_core::{assemble, disassemble, TgImage};

fn fail(msg: &str) -> ExitCode {
    eprintln!("ntg-tgasm: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut input = None;
    let mut output = None;
    let mut dis = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => output = args.next(),
            "-d" | "--disassemble" => dis = true,
            "--help" | "-h" => {
                eprintln!("usage: ntg-tgasm [-d] [-o out] <input>");
                return ExitCode::SUCCESS;
            }
            _ if input.is_none() => input = Some(arg),
            _ => return fail(&format!("unexpected argument {arg:?}")),
        }
    }
    let Some(input) = input else {
        return fail("missing input file");
    };
    if dis {
        // .bin → .tgp
        let bytes = match std::fs::read(&input) {
            Ok(b) => b,
            Err(e) => return fail(&format!("cannot read {input}: {e}")),
        };
        let image = match TgImage::from_bytes(&bytes) {
            Ok(i) => i,
            Err(e) => return fail(&e.to_string()),
        };
        let listing = to_tgp(&disassemble(&image));
        match output {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, listing) {
                    return fail(&format!("cannot write {path}: {e}"));
                }
            }
            None => print!("{listing}"),
        }
    } else {
        // .tgp → .bin
        let text = match std::fs::read_to_string(&input) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read {input}: {e}")),
        };
        let program = match from_tgp(&text) {
            Ok(p) => p,
            Err(e) => return fail(&e.to_string()),
        };
        let image = match assemble(&program) {
            Ok(i) => i,
            Err(e) => return fail(&e.to_string()),
        };
        let Some(path) = output else {
            return fail("-o <file> is required when assembling (binary output)");
        };
        if let Err(e) = std::fs::write(&path, image.to_bytes()) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        eprintln!(
            "ntg-tgasm: wrote {} instructions ({} bytes)",
            image.instrs.len(),
            image.to_bytes().len()
        );
    }
    ExitCode::SUCCESS
}
