//! The trace-to-TG-program translator (paper §5).
//!
//! Consumes a [`MasterTrace`] collected at an OCP interface plus
//! *platform knowledge* — which address ranges are pollable and the clock
//! period — and emits a symbolic [`TgProgram`]:
//!
//! * register-file `REGISTER` initialisation covering the first
//!   transaction's operands (zero execution cycles, as in the paper's
//!   Figure 3(b));
//! * `SetRegister` instructions only when an operand register's value
//!   must change;
//! * `Idle` waits sized as `gap − setup`, where the gap runs from the
//!   previous transaction's *unblock* instant (response for reads, accept
//!   for posted writes) to the next request's assert instant, minus one
//!   cycle for the unblock-to-execute transition and one cycle per setup
//!   instruction — negative results clamp to zero, which is the
//!   "minimal timing mismatch" error source the paper discusses;
//! * in [`TranslationMode::Reactive`], maximal runs of single-word reads
//!   to one pollable address collapse into a canonical `Semchk` loop that
//!   re-reads until the *final observed value* appears. The canonical
//!   loop is independent of how many failed polls the reference run
//!   happened to contain — which is exactly why programs translated from
//!   traces on different interconnects are identical (the paper's first
//!   experiment).

use ntg_ocp::OcpCmd;
use ntg_sim::{ClockConfig, Cycle};
use ntg_trace::{MasterTrace, TraceError, Transaction};

use crate::isa::{TgCond, TgReg, RDREG, TEMPREG};
use crate::program::{TgProgram, TgSymInstr};

/// Version of the *on-disk artifact format family* — the trace binary
/// codec, the calibration-config codec and the TG image layout taken
/// together. Bump it whenever any of those encodings changes shape:
/// [`TranslatorConfig::cache_key`] folds it in, so every persistent
/// store entry keyed by an old version simply stops matching and is
/// rebuilt, instead of being misread by the new decoder.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// The operand-register convention used by generated programs.
mod regs {
    use crate::isa::TgReg;
    /// Address operand.
    pub const ADDR: TgReg = TgReg::new(2);
    /// Write-data operand.
    pub const DATA: TgReg = TgReg::new(3);
    /// Burst-count operand.
    pub const COUNT: TgReg = TgReg::new(4);
}

/// The paper's three traffic-modelling fidelity levels (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TranslationMode {
    /// Replay requests at their recorded absolute cycle times
    /// (`IdleUntil`); latency changes do not propagate.
    Clone,
    /// Tie each request to the completion of the previous one; latency
    /// changes shift subsequent traffic.
    Timeshift,
    /// Timeshifting plus `Semchk` regeneration of polling — the paper's
    /// full TG model.
    #[default]
    Reactive,
}

impl std::fmt::Display for TranslationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TranslationMode::Clone => "clone",
            TranslationMode::Timeshift => "timeshift",
            TranslationMode::Reactive => "reactive",
        })
    }
}

impl std::str::FromStr for TranslationMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "clone" => Ok(TranslationMode::Clone),
            "timeshift" => Ok(TranslationMode::Timeshift),
            "reactive" => Ok(TranslationMode::Reactive),
            _ => Err(format!(
                "unknown translation mode `{s}` (expected clone, timeshift or reactive)"
            )),
        }
    }
}

/// Platform knowledge handed to the translator.
#[derive(Debug, Clone, Default)]
pub struct TranslatorConfig {
    /// `(base, size)` of every pollable address range (semaphores,
    /// synchronisation flags) — see
    /// [`AddressMap::pollable_ranges`](ntg_mem::AddressMap::pollable_ranges).
    pub pollable: Vec<(u32, u32)>,
    /// Fidelity level.
    pub mode: TranslationMode,
    /// End the program with `Jump(start)` instead of `Halt` (hardware
    /// test-chip style, paper Figure 3(b)).
    pub loop_forever: bool,
    /// Extra idle cycles inserted inside each `Semchk` loop to slow down
    /// re-polling (0 matches a tight two-instruction CPU poll loop).
    pub poll_idle: u32,
}

impl TranslatorConfig {
    /// A stable 64-bit fingerprint of every field that influences
    /// translation output.
    ///
    /// Two configurations with equal keys produce identical TG programs
    /// from identical traces, so the key is usable as a cache key for
    /// translated artifacts (the `ntg-explore` campaign engine keys its
    /// TG-binary cache on `(workload, cores, trace fabric, cache_key)`).
    ///
    /// The hash is FNV-1a with fixed field ordering — stable across
    /// processes, platforms and releases (unlike `std`'s `DefaultHasher`,
    /// whose algorithm is explicitly unspecified) — and salted with
    /// [`STORE_FORMAT_VERSION`], so bumping the on-disk format retires
    /// every stale persistent-store entry at the key level.
    pub fn cache_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        eat(&STORE_FORMAT_VERSION.to_le_bytes());
        let mode = match self.mode {
            TranslationMode::Clone => 0u8,
            TranslationMode::Timeshift => 1,
            TranslationMode::Reactive => 2,
        };
        eat(&[mode, u8::from(self.loop_forever)]);
        eat(&self.poll_idle.to_le_bytes());
        eat(&(self.pollable.len() as u64).to_le_bytes());
        for &(base, size) in &self.pollable {
            eat(&base.to_le_bytes());
            eat(&size.to_le_bytes());
        }
        h
    }
}

/// Errors produced by translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslationError {
    /// The trace was malformed.
    Trace(TraceError),
    /// The trace declared a zero clock period.
    BadPeriod,
}

impl std::fmt::Display for TranslationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslationError::Trace(e) => write!(f, "trace error: {e}"),
            TranslationError::BadPeriod => write!(f, "trace declares a zero clock period"),
        }
    }
}

impl std::error::Error for TranslationError {}

impl From<TraceError> for TranslationError {
    fn from(e: TraceError) -> Self {
        TranslationError::Trace(e)
    }
}

/// One unit of emission: a plain transaction or a collapsed polling run.
#[derive(Debug)]
enum Group<'a> {
    Single(&'a Transaction),
    Poll {
        addr: u32,
        expected: u32,
        first_req_at: Cycle,
        last: &'a Transaction,
    },
}

/// The trace-to-program translator.
///
/// # Example
///
/// ```
/// use ntg_core::{TraceTranslator, TranslatorConfig};
/// use ntg_trace::MasterTrace;
///
/// let trc = "MASTER 0\nPERIOD_NS 5\nREQ RD 0x00000104 @55\nACK @60\n\
///            RESP 0x088000f0 @75\nEND\n";
/// let trace = MasterTrace::from_trc(trc)?;
/// let translator = TraceTranslator::new(TranslatorConfig::default());
/// let program = translator.translate(&trace)?;
/// assert_eq!(program.master, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceTranslator {
    cfg: TranslatorConfig,
}

impl TraceTranslator {
    /// Creates a translator with the given platform knowledge.
    pub fn new(cfg: TranslatorConfig) -> Self {
        Self { cfg }
    }

    fn is_pollable(&self, addr: u32) -> bool {
        self.cfg
            .pollable
            .iter()
            .any(|&(base, size)| addr >= base && (addr - base) < size)
    }

    fn is_poll_read(&self, tx: &Transaction) -> bool {
        tx.cmd == OcpCmd::Read && tx.burst == 1 && self.is_pollable(tx.addr)
    }

    /// Groups transactions, collapsing polling runs in reactive mode.
    fn group<'a>(&self, txs: &'a [Transaction]) -> Vec<Group<'a>> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < txs.len() {
            let tx = &txs[i];
            if self.cfg.mode == TranslationMode::Reactive && self.is_poll_read(tx) {
                let mut j = i;
                while j + 1 < txs.len()
                    && self.is_poll_read(&txs[j + 1])
                    && txs[j + 1].addr == tx.addr
                {
                    j += 1;
                }
                out.push(Group::Poll {
                    addr: tx.addr,
                    expected: txs[j].resp_word(),
                    first_req_at: 0, // filled by caller with cycle conversion
                    last: &txs[j],
                });
                // Patch first_req_at now that we know the clock — done in
                // translate(); store ns in the meantime.
                if let Some(Group::Poll { first_req_at, .. }) = out.last_mut() {
                    *first_req_at = tx.req_at;
                }
                i = j + 1;
            } else {
                out.push(Group::Single(tx));
                i += 1;
            }
        }
        out
    }

    /// Translates `trace` into a symbolic TG program.
    ///
    /// # Errors
    ///
    /// Returns a [`TranslationError`] if the trace is malformed or
    /// declares a zero period.
    pub fn translate(&self, trace: &MasterTrace) -> Result<TgProgram, TranslationError> {
        if trace.period_ns == 0 {
            return Err(TranslationError::BadPeriod);
        }
        let clk = ClockConfig::new(trace.period_ns);
        let txs = trace.transactions()?;
        let groups = self.group(&txs);

        let mut program = TgProgram::new(trace.master);
        if self.cfg.loop_forever {
            program.label("start");
        }
        // Tracked operand-register contents (None = unknown).
        let mut cur_addr: Option<u32> = None;
        let mut cur_data: Option<u32> = None;
        let mut cur_count: Option<u32> = None;
        let mut cur_temp: Option<u32> = None;
        // Unblock cycle of the previous group and its trailing overhead
        // (1 for the `If` that closes a poll loop).
        let mut prev_unblock: Option<Cycle> = None;
        let mut prev_overhead: Cycle = 0;
        let mut poll_label = 0usize;

        for (gi, group) in groups.iter().enumerate() {
            // Figure out the register setup this group needs.
            let mut setup: Vec<(TgReg, u32)> = Vec::new();
            let (req_at_ns, unblock_ns) = match group {
                Group::Single(tx) => {
                    if cur_addr != Some(tx.addr) {
                        setup.push((regs::ADDR, tx.addr));
                    }
                    if tx.cmd.is_write() {
                        let word = tx.data.first().copied().unwrap_or(0);
                        if cur_data != Some(word) {
                            setup.push((regs::DATA, word));
                        }
                    }
                    if tx.burst != 1 && cur_count != Some(u32::from(tx.burst)) {
                        setup.push((regs::COUNT, u32::from(tx.burst)));
                    }
                    (tx.req_at, tx.unblock_at())
                }
                Group::Poll {
                    addr,
                    expected,
                    first_req_at,
                    last,
                } => {
                    if cur_addr != Some(*addr) {
                        setup.push((regs::ADDR, *addr));
                    }
                    if cur_temp != Some(*expected) {
                        setup.push((TEMPREG, *expected));
                    }
                    (*first_req_at, last.unblock_at())
                }
            };

            // First group: hoist setup into REGISTER initialisation.
            let hoisted = gi == 0;
            if hoisted {
                for (reg, value) in &setup {
                    program.inits.push((*reg, *value));
                }
            }
            let m = if hoisted { 0 } else { setup.len() as Cycle };
            if !hoisted {
                for (reg, value) in &setup {
                    program.push(TgSymInstr::SetRegister(*reg, *value));
                }
            }
            // Apply register tracking.
            for (reg, value) in &setup {
                match *reg {
                    r if r == regs::ADDR => cur_addr = Some(*value),
                    r if r == regs::DATA => cur_data = Some(*value),
                    r if r == regs::COUNT => cur_count = Some(*value),
                    r if r == TEMPREG => cur_temp = Some(*value),
                    _ => {}
                }
            }

            let t = clk.ns_to_cycles(req_at_ns);
            match self.cfg.mode {
                TranslationMode::Clone => {
                    program.push(TgSymInstr::IdleUntil(t));
                }
                TranslationMode::Timeshift | TranslationMode::Reactive => {
                    // Negative gaps (a setup sequence longer than the
                    // core's compute gap) clamp to zero: the TG issues a
                    // cycle or two late. This is the paper's "minimal
                    // timing mismatch" error source; bus-pipeline
                    // quantisation usually re-absorbs it.
                    let raw = match prev_unblock {
                        None => t as i64 - m as i64,
                        Some(u) => t as i64 - (u + 1 + m + prev_overhead) as i64,
                    };
                    if raw > 0 {
                        program.push(TgSymInstr::Idle(raw as u32));
                    }
                }
            }

            // The transaction(s) themselves.
            prev_overhead = 0;
            match group {
                Group::Single(tx) => {
                    match tx.cmd {
                        OcpCmd::Read => program.push(TgSymInstr::Read(regs::ADDR)),
                        OcpCmd::Write => program.push(TgSymInstr::Write(regs::ADDR, regs::DATA)),
                        OcpCmd::BurstRead => {
                            program.push(TgSymInstr::BurstRead(regs::ADDR, regs::COUNT))
                        }
                        OcpCmd::BurstWrite => program.push(TgSymInstr::BurstWrite(
                            regs::ADDR,
                            regs::DATA,
                            regs::COUNT,
                        )),
                    };
                }
                Group::Poll { .. } => {
                    let label = format!("Semchk{poll_label}");
                    poll_label += 1;
                    program.label(label.clone());
                    if self.cfg.poll_idle > 0 {
                        program.push(TgSymInstr::Idle(self.cfg.poll_idle));
                    }
                    program.push(TgSymInstr::Read(regs::ADDR));
                    program.push(TgSymInstr::If(RDREG, TEMPREG, TgCond::Ne, label));
                    // The closing `If` executes after the successful
                    // response; the next group's idle must account for
                    // it.
                    prev_overhead = 1;
                }
            }
            prev_unblock = Some(clk.ns_to_cycles(unblock_ns));
        }

        // Trailing compute time: the core may run long after its last
        // transaction (Cacheloop in the extreme). The completion
        // timestamp recorded in the trace sizes the final idle wait so
        // the TG halts in the same cycle the core did.
        if let Some(halt_ns) = trace.halt_at {
            let h = clk.ns_to_cycles(halt_ns);
            match self.cfg.mode {
                TranslationMode::Clone => {
                    if h > 0 {
                        program.push(TgSymInstr::IdleUntil(h));
                    }
                }
                TranslationMode::Timeshift | TranslationMode::Reactive => {
                    let raw = match prev_unblock {
                        None => h as i64,
                        Some(u) => h as i64 - (u + 1 + prev_overhead) as i64,
                    };
                    if raw > 0 {
                        program.push(TgSymInstr::Idle(raw as u32));
                    }
                }
            }
        }
        if self.cfg.loop_forever {
            program.push(TgSymInstr::Jump("start".into()));
        } else {
            program.push(TgSymInstr::Halt);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TgItem;

    #[test]
    fn cache_key_is_stable_and_discriminating() {
        let base = TranslatorConfig {
            pollable: vec![(0x100, 0x40)],
            mode: TranslationMode::Reactive,
            loop_forever: false,
            poll_idle: 0,
        };
        assert_eq!(base.cache_key(), base.clone().cache_key());
        let mut other = base.clone();
        other.mode = TranslationMode::Clone;
        assert_ne!(base.cache_key(), other.cache_key());
        let mut other = base.clone();
        other.poll_idle = 3;
        assert_ne!(base.cache_key(), other.cache_key());
        let mut other = base.clone();
        other.pollable.push((0x200, 0x10));
        assert_ne!(base.cache_key(), other.cache_key());
    }

    fn translate(trc: &str, cfg: TranslatorConfig) -> TgProgram {
        let trace = MasterTrace::from_trc(trc).unwrap();
        TraceTranslator::new(cfg).translate(&trace).unwrap()
    }

    /// The paper's Figure 3(a) opening: RD @55, resp @75, WR @90, RD
    /// @140 (all ns, 5 ns cycle).
    const FIG3_HEAD: &str = "\
MASTER 0
PERIOD_NS 5
REQ RD 0x00000104 @55
ACK @60
RESP 0x088000f0 @75
REQ WR 0x00000020 0x00000111 @90
ACK @95
REQ RD 0x00000031 @140
ACK @145
RESP 0x00002236 @165
END
";

    #[test]
    fn figure3_head_translates_like_the_paper() {
        let p = translate(FIG3_HEAD, TranslatorConfig::default());
        // First transaction's address is hoisted into REGISTER inits.
        assert!(p.inits.contains(&(regs::ADDR, 0x104)));
        let instrs: Vec<_> = p.instrs().cloned().collect();
        // Idle(11) — first request at cycle 11 (55 ns / 5), paper: "the
        // TG has no instruction to perform until the 11th cycle".
        assert_eq!(instrs[0], TgSymInstr::Idle(11));
        assert_eq!(instrs[1], TgSymInstr::Read(regs::ADDR));
        // WR @90: response consumed at 75 ns (cycle 15); two setups
        // (addr, data); idle = 18 - 15 - 1 - 2 = 0 → no Idle emitted.
        assert_eq!(instrs[2], TgSymInstr::SetRegister(regs::ADDR, 0x20));
        assert_eq!(instrs[3], TgSymInstr::SetRegister(regs::DATA, 0x111));
        assert_eq!(instrs[4], TgSymInstr::Write(regs::ADDR, regs::DATA));
        // RD @140 (cycle 28): write accepted at 95 ns (cycle 19); one
        // setup; idle = 28 - 19 - 1 - 1 = 7.
        assert_eq!(instrs[5], TgSymInstr::SetRegister(regs::ADDR, 0x31));
        assert_eq!(instrs[6], TgSymInstr::Idle(7));
        assert_eq!(instrs[7], TgSymInstr::Read(regs::ADDR));
        assert_eq!(instrs[8], TgSymInstr::Halt);
        assert_eq!(instrs.len(), 9);
    }

    const POLL_TRACE: &str = "\
MASTER 0
PERIOD_NS 5
REQ RD 0x000000ff @210
ACK @215
RESP 0x00000000 @270
REQ RD 0x000000ff @285
ACK @290
RESP 0x00000000 @310
REQ RD 0x000000ff @315
ACK @320
RESP 0x00000001 @330
END
";

    fn poll_cfg() -> TranslatorConfig {
        TranslatorConfig {
            pollable: vec![(0xF0, 0x20)],
            ..TranslatorConfig::default()
        }
    }

    #[test]
    fn polling_collapses_to_semchk_loop() {
        let p = translate(POLL_TRACE, poll_cfg());
        let instrs: Vec<_> = p.instrs().cloned().collect();
        // Inits hoisted: addr + expected value.
        assert!(p.inits.contains(&(regs::ADDR, 0xFF)));
        assert!(p.inits.contains(&(TEMPREG, 1)));
        assert_eq!(
            instrs,
            vec![
                TgSymInstr::Idle(42),
                TgSymInstr::Read(regs::ADDR),
                TgSymInstr::If(RDREG, TEMPREG, TgCond::Ne, "Semchk0".into()),
                TgSymInstr::Halt,
            ]
        );
        assert!(p.items.contains(&TgItem::Label("Semchk0".into())));
    }

    #[test]
    fn semchk_is_independent_of_poll_count() {
        // The same semaphore acquired instantly (one successful read)
        // must produce the same program as three polls — that is what
        // makes translation interconnect-invariant.
        let quick = "\
MASTER 0
PERIOD_NS 5
REQ RD 0x000000ff @210
ACK @215
RESP 0x00000001 @240
END
";
        let a = translate(POLL_TRACE, poll_cfg());
        let b = translate(quick, poll_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn non_pollable_reads_are_not_collapsed() {
        let p = translate(POLL_TRACE, TranslatorConfig::default());
        let reads = p
            .instrs()
            .filter(|i| matches!(i, TgSymInstr::Read(_)))
            .count();
        assert_eq!(reads, 3, "without platform knowledge, replay verbatim");
    }

    #[test]
    fn timeshift_mode_never_emits_semchk() {
        let cfg = TranslatorConfig {
            mode: TranslationMode::Timeshift,
            ..poll_cfg()
        };
        let p = translate(POLL_TRACE, cfg);
        assert!(p.items.iter().all(|i| !matches!(i, TgItem::Label(_))));
        assert_eq!(
            p.instrs()
                .filter(|i| matches!(i, TgSymInstr::Read(_)))
                .count(),
            3
        );
    }

    #[test]
    fn clone_mode_uses_absolute_idles() {
        let cfg = TranslatorConfig {
            mode: TranslationMode::Clone,
            ..TranslatorConfig::default()
        };
        let p = translate(FIG3_HEAD, cfg);
        let untils: Vec<u64> = p
            .instrs()
            .filter_map(|i| match i {
                TgSymInstr::IdleUntil(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(untils, vec![11, 18, 28]);
        assert!(p.instrs().all(|i| !matches!(i, TgSymInstr::Idle(_))));
    }

    #[test]
    fn burst_reads_set_count_once() {
        let trc = "\
MASTER 0
PERIOD_NS 5
REQ BRD 0x00000100 len=4 @10
ACK @15
RESP 0x1,0x2,0x3,0x4 @40
REQ BRD 0x00000200 len=4 @100
ACK @105
RESP 0x1,0x2,0x3,0x4 @130
END
";
        let p = translate(trc, TranslatorConfig::default());
        let count_sets = p
            .instrs()
            .filter(|i| matches!(i, TgSymInstr::SetRegister(r, _) if *r == regs::COUNT))
            .count();
        // First burst's count is hoisted; the second reuses it.
        assert_eq!(count_sets, 0);
        assert!(p.inits.contains(&(regs::COUNT, 4)));
        assert_eq!(
            p.instrs()
                .filter(|i| matches!(i, TgSymInstr::BurstRead(_, _)))
                .count(),
            2
        );
    }

    #[test]
    fn unchanged_write_data_is_not_reset() {
        let trc = "\
MASTER 0
PERIOD_NS 5
REQ WR 0x00000020 0x00000007 @10
ACK @15
REQ WR 0x00000024 0x00000007 @50
ACK @55
END
";
        let p = translate(trc, TranslatorConfig::default());
        let data_sets = p
            .instrs()
            .filter(|i| matches!(i, TgSymInstr::SetRegister(r, _) if *r == regs::DATA))
            .count();
        assert_eq!(data_sets, 0, "same data value, register reused");
        let addr_sets = p
            .instrs()
            .filter(|i| matches!(i, TgSymInstr::SetRegister(r, _) if *r == regs::ADDR))
            .count();
        assert_eq!(addr_sets, 1, "second write needs a new address only");
    }

    #[test]
    fn loop_forever_emits_rewind_jump() {
        let cfg = TranslatorConfig {
            loop_forever: true,
            ..TranslatorConfig::default()
        };
        let p = translate(FIG3_HEAD, cfg);
        assert_eq!(p.items.first(), Some(&TgItem::Label("start".into())));
        assert!(matches!(
            p.instrs().last(),
            Some(TgSymInstr::Jump(t)) if t == "start"
        ));
        assert!(p.instrs().all(|i| !matches!(i, TgSymInstr::Halt)));
    }

    #[test]
    fn empty_trace_is_just_halt() {
        let p = translate("MASTER 5\nPERIOD_NS 5\nEND\n", TranslatorConfig::default());
        assert_eq!(p.master, 5);
        let instrs: Vec<_> = p.instrs().cloned().collect();
        assert_eq!(instrs, vec![TgSymInstr::Halt]);
    }

    #[test]
    fn zero_period_is_rejected() {
        let trace = MasterTrace::new(0, 0);
        let err = TraceTranslator::default().translate(&trace).unwrap_err();
        assert_eq!(err, TranslationError::BadPeriod);
    }

    #[test]
    fn poll_idle_paces_the_semchk_loop() {
        let cfg = TranslatorConfig {
            poll_idle: 3,
            ..poll_cfg()
        };
        let p = translate(POLL_TRACE, cfg);
        let instrs: Vec<_> = p.instrs().cloned().collect();
        // Loop body: Idle(3); Read; If — the pad slows re-polling.
        let pos = instrs
            .iter()
            .position(|i| matches!(i, TgSymInstr::Read(_)))
            .unwrap();
        assert_eq!(instrs[pos - 1], TgSymInstr::Idle(3));
        assert!(matches!(instrs[pos + 1], TgSymInstr::If(..)));
        // The label sits before the pad so the Idle is inside the loop.
        let items = &p.items;
        let label_idx = items
            .iter()
            .position(|i| matches!(i, crate::program::TgItem::Label(l) if l == "Semchk0"))
            .unwrap();
        assert!(matches!(
            items[label_idx + 1],
            crate::program::TgItem::Instr(TgSymInstr::Idle(3))
        ));
    }

    #[test]
    fn burst_write_data_uses_first_word() {
        let trc = "\
MASTER 0
PERIOD_NS 5
REQ BWR 0x00000100 0x7,0x7,0x7 len=3 @10
ACK @30
END
";
        let p = translate(trc, TranslatorConfig::default());
        assert!(p.inits.contains(&(regs::DATA, 7)));
        assert!(p.inits.contains(&(regs::COUNT, 3)));
        assert!(p.instrs().any(|i| matches!(i, TgSymInstr::BurstWrite(..))));
    }

    #[test]
    fn halt_stamp_generates_trailing_idle() {
        let trc = "\
MASTER 0
PERIOD_NS 5
REQ WR 0x00000100 0x1 @10
ACK @20
HALT @500
END
";
        let p = translate(trc, TranslatorConfig::default());
        let instrs: Vec<_> = p.instrs().cloned().collect();
        // Write accepted at cycle 4; halt at cycle 100: idle = 100-4-1.
        assert_eq!(instrs.last(), Some(&TgSymInstr::Halt));
        assert_eq!(instrs[instrs.len() - 2], TgSymInstr::Idle(95));
    }

    #[test]
    fn translated_program_assembles() {
        let p = translate(POLL_TRACE, poll_cfg());
        crate::asm::assemble(&p).expect("generated programs always assemble");
    }
}
