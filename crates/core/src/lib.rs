//! The Traffic Generator (TG) — the primary contribution of the
//! reproduced paper.
//!
//! Mahadevan et al. (DATE 2005) replace bit- and cycle-true IP cores with
//! tiny programmable *traffic generators* that reproduce each core's
//! communication behaviour at its OCP interface, so that subsequent
//! design-space exploration of interconnects runs 2–4× faster at near-100%
//! cycle accuracy. The TG is "a very simple instruction set processor"
//! with an instruction memory and a register file but no data memory
//! (paper §4); its instruction set is the paper's Table 1.
//!
//! This crate implements the complete TG tool flow:
//!
//! | stage | module | artifact |
//! |-------|--------|----------|
//! | trace → symbolic program | [`translate`] | [`TgProgram`] (`.tgp`) |
//! | symbolic ⇄ text          | [`tgp`]       | `.tgp` listing |
//! | symbolic → binary image  | [`assemble`]  | [`TgImage`] (`.bin`) |
//! | binary → symbolic        | [`disassemble`] | round-trip validation |
//! | execution               | [`TgCore`]    | OCP traffic |
//!
//! # The three fidelity levels (paper §3)
//!
//! The translator supports the paper's three traffic-modelling levels as
//! [`TranslationMode`]s, which the ablation benches compare:
//!
//! * **Clone** — replay requests at their recorded absolute times;
//!   inadequate once network latency changes.
//! * **Timeshift** — tie each request to the completion of the previous
//!   one, so latency changes propagate.
//! * **Reactive** (default) — additionally recognise polling of
//!   semaphores/synchronisation flags and regenerate it as a `Semchk`
//!   conditional loop, so the *number* of transactions adapts to the
//!   interconnect, not just their times.
//!
//! # Timing model of the TG core
//!
//! One instruction per cycle; `Idle(n)` costs `n` cycles; OCP
//! instructions assert their request in their execution cycle, block
//! until the response (reads) or the acceptance (posted writes), and the
//! next instruction executes on the cycle after the unblocking event —
//! the exact discipline `ntg-cpu` cores follow, which is what makes the
//! translator's idle-gap arithmetic exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod image;
mod isa;
mod multitask;
mod program;
pub mod rng;
mod stochastic;
mod tgcore;
pub mod tgp;
mod tgslave;
pub mod translate;

pub use asm::{assemble, disassemble, TgAsmError};
pub use image::{TgImage, TgImageError};
pub use isa::{TgCond, TgDecodeError, TgInstr, TgReg, RDREG, TEMPREG};
pub use multitask::{SchedulerStats, TgMultiCore, TimesliceConfig};
pub use program::{TgItem, TgProgram, TgSymInstr};
pub use stochastic::{GapDistribution, StochasticConfig, StochasticTg};
pub use tgcore::{TgCore, TgFault, TgStats};
pub use tgslave::{TgSlave, TgSlaveBehavior};
pub use translate::{
    TraceTranslator, TranslationError, TranslationMode, TranslatorConfig, STORE_FORMAT_VERSION,
};
