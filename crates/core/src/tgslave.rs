//! Slave traffic generators (the paper's §4, TG entities 2 and 3).
//!
//! The paper defines three TG entities: the programmable *master* TG
//! (entity 1, [`TgCore`](crate::TgCore)), "a TG emulating a shared
//! memory (an OCP slave) … [which] must contain a data structure
//! modeling an actual shared memory" (entity 2), and "a TG emulating a
//! slave memory … able to respond, possibly with dummy values" (entity
//! 3). Only the master TG is needed inside a simulation environment —
//! the simulator provides real slaves — but on a NoC *test chip* every
//! socket must be a TG, so this module implements the slave entities
//! too: "both slave TG modules are much simpler in design with respect
//! to the master TG, as their logic basically just involves a small
//! state machine to handle OCP transactions".
//!
//! [`TgSlave`] covers all slave flavours through [`TgSlaveBehavior`]:
//!
//! * [`Memory`](TgSlaveBehavior::Memory) — entity 2: a real backing
//!   store, so data-dependent control flow in master TGs (semaphore
//!   polling, flag barriers) behaves exactly as with a real memory;
//! * [`Dummy`](TgSlaveBehavior::Dummy) — entity 3: no storage; reads
//!   return a configurable pattern (cheapest possible silicon);
//! * [`Semaphore`](TgSlaveBehavior::Semaphore) — the hardware
//!   test-and-set bank, needed on a test chip for reactive traffic.

use ntg_ocp::{DataWords, LinkArena, OcpCmd, OcpRequest, OcpResponse, SlavePort};
use ntg_sim::{Activity, Component, Cycle};

/// What a [`TgSlave`] does with the transactions it receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TgSlaveBehavior {
    /// Entity 2: backed by a real data store.
    Memory,
    /// Entity 3: reads return `pattern ^ addr` (recognisably fake but
    /// address-dependent); writes are absorbed.
    Dummy {
        /// Base pattern for generated read data.
        pattern: u32,
    },
    /// Test-and-set semaphore cells (reset to 1/free).
    Semaphore,
}

enum State {
    Idle,
    Busy { done_at: Cycle },
}

/// A slave traffic generator: a small OCP state machine with optional
/// backing store.
///
/// Timing matches the platform's real devices: a request visible in
/// cycle *t* is accepted — with its read response pushed — after
/// `wait_states + beats` cycles, and writes complete silently at
/// acceptance.
pub struct TgSlave {
    name: String,
    base: u32,
    behavior: TgSlaveBehavior,
    store: Vec<u32>,
    wait_states: Cycle,
    port: SlavePort,
    state: State,
    reads: u64,
    writes: u64,
    errors: u64,
}

impl TgSlave {
    /// Creates a slave TG covering `[base, base + size_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if `base`/`size_bytes` are not word-aligned or size is
    /// zero.
    pub fn new(
        name: impl Into<String>,
        base: u32,
        size_bytes: u32,
        behavior: TgSlaveBehavior,
        port: SlavePort,
    ) -> Self {
        assert!(
            base.is_multiple_of(4) && size_bytes.is_multiple_of(4) && size_bytes > 0,
            "slave TG must be word-aligned and non-empty"
        );
        let words = (size_bytes / 4) as usize;
        let store = match behavior {
            TgSlaveBehavior::Memory => vec![0; words],
            TgSlaveBehavior::Semaphore => vec![1; words],
            TgSlaveBehavior::Dummy { .. } => Vec::new(),
        };
        Self {
            name: name.into(),
            base,
            behavior,
            store,
            wait_states: 1,
            port,
            state: State::Idle,
            reads: 0,
            writes: 0,
            errors: 0,
        }
    }

    /// Overrides the wait states (default 1).
    pub fn set_wait_states(&mut self, wait_states: Cycle) {
        self.wait_states = wait_states;
    }

    /// The behaviour this slave was built with.
    pub fn behavior(&self) -> TgSlaveBehavior {
        self.behavior
    }

    /// Host-side view of a stored word (Memory/Semaphore only).
    ///
    /// # Panics
    ///
    /// Panics on dummy slaves or out-of-range addresses.
    pub fn peek(&self, addr: u32) -> u32 {
        assert!(
            !matches!(self.behavior, TgSlaveBehavior::Dummy { .. }),
            "dummy slave TGs store nothing"
        );
        self.store[self.index(addr).expect("peek out of range")]
    }

    /// Reads serviced so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes serviced so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Error responses produced so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    fn index(&self, addr: u32) -> Option<usize> {
        if !addr.is_multiple_of(4) || addr < self.base {
            return None;
        }
        let idx = ((addr - self.base) / 4) as usize;
        let words = match self.behavior {
            TgSlaveBehavior::Dummy { .. } => usize::MAX, // dummy: any address
            _ => self.store.len(),
        };
        (idx < words).then_some(idx)
    }

    fn service(&mut self, req: &OcpRequest) -> Option<OcpResponse> {
        let beats = req.beats();
        let in_range = (0..beats).all(|b| self.index(req.addr + b * 4).is_some());
        if !in_range || (matches!(self.behavior, TgSlaveBehavior::Semaphore) && beats != 1) {
            self.errors += 1;
            return req
                .cmd
                .expects_response()
                .then(|| OcpResponse::error(req.tag));
        }
        match (req.cmd, self.behavior) {
            (OcpCmd::Read | OcpCmd::BurstRead, TgSlaveBehavior::Dummy { pattern }) => {
                self.reads += 1;
                let data: DataWords = (0..beats).map(|b| pattern ^ (req.addr + b * 4)).collect();
                Some(OcpResponse::ok(data, req.tag))
            }
            (OcpCmd::Read, TgSlaveBehavior::Semaphore) => {
                self.reads += 1;
                let idx = self.index(req.addr).expect("range checked");
                let value = self.store[idx];
                if value == 1 {
                    self.store[idx] = 0;
                }
                Some(OcpResponse::ok(DataWords::one(value), req.tag))
            }
            (OcpCmd::Read | OcpCmd::BurstRead, TgSlaveBehavior::Memory) => {
                self.reads += 1;
                let data: DataWords = (0..beats)
                    .map(|b| self.store[self.index(req.addr + b * 4).expect("range checked")])
                    .collect();
                Some(OcpResponse::ok(data, req.tag))
            }
            (OcpCmd::BurstRead, TgSlaveBehavior::Semaphore) => {
                unreachable!("semaphore bursts rejected above")
            }
            (OcpCmd::Write | OcpCmd::BurstWrite, behavior) => {
                self.writes += 1;
                match behavior {
                    TgSlaveBehavior::Dummy { .. } => {}
                    TgSlaveBehavior::Semaphore => {
                        let idx = self.index(req.addr).expect("range checked");
                        self.store[idx] = req.data.first().copied().unwrap_or(0) & 1;
                    }
                    TgSlaveBehavior::Memory => {
                        for (b, w) in req.data.iter().enumerate() {
                            let idx = self
                                .index(req.addr + (b as u32) * 4)
                                .expect("range checked");
                            self.store[idx] = *w;
                        }
                    }
                }
                None
            }
        }
    }
}

impl Component<LinkArena> for TgSlave {
    fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        match &self.state {
            State::Idle => {
                if let Some((_, beats, _)) = self.port.peek_meta(net, now) {
                    let done_at = now + self.wait_states + Cycle::from(beats);
                    self.state = State::Busy { done_at };
                }
            }
            State::Busy { done_at } => {
                if now >= *done_at {
                    self.state = State::Idle;
                    let req = self
                        .port
                        .accept_request(net, now)
                        .expect("request stays asserted during service");
                    if let Some(resp) = self.service(&req) {
                        self.port.push_response(net, resp, now);
                    }
                }
            }
        }
    }

    #[inline]
    fn is_idle(&self, net: &LinkArena) -> bool {
        matches!(self.state, State::Idle) && self.port.is_quiet(net)
    }

    // Service ticks before `done_at` and idle ticks with no visible
    // request have no side effects, so the default no-op `skip` is exact.
    #[inline]
    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        match self.state {
            State::Busy { done_at } if done_at > now => Activity::IdleUntil(done_at),
            State::Busy { .. } => Activity::Busy,
            State::Idle => match self.port.request_visible_at(net) {
                Some(at) if at > now => Activity::IdleUntil(at),
                Some(_) => Activity::Busy,
                None if self.port.is_quiet(net) => Activity::Drained,
                // Produced output queued for the fabric to collect;
                // nothing for the device to do until then.
                None => Activity::waiting(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntg_ocp::{MasterId, MasterPort};

    fn transact(
        net: &mut LinkArena,
        slave: &mut TgSlave,
        m: &MasterPort,
        req: OcpRequest,
        start: Cycle,
    ) -> Option<OcpResponse> {
        let expects = req.cmd.expects_response();
        m.assert_request(net, req, start);
        for now in start..start + 100 {
            slave.tick(now, net);
            if expects {
                if let Some(resp) = m.take_response(net, now) {
                    return Some(resp);
                }
            } else if m.take_accept(net, now).is_some() {
                return None;
            }
        }
        panic!("transaction did not complete");
    }

    #[test]
    fn memory_behavior_stores_and_returns() {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("l", MasterId(0));
        let mut sl = TgSlave::new("mem", 0x100, 0x40, TgSlaveBehavior::Memory, s);
        transact(&mut net, &mut sl, &m, OcpRequest::write(0x108, 0xAA55), 0);
        let r = transact(&mut net, &mut sl, &m, OcpRequest::read(0x108), 20).unwrap();
        assert_eq!(r.word(), 0xAA55);
        assert_eq!(sl.peek(0x108), 0xAA55);
    }

    #[test]
    fn dummy_behavior_answers_everything_with_pattern() {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("l", MasterId(0));
        let mut sl = TgSlave::new(
            "dummy",
            0x100,
            0x40,
            TgSlaveBehavior::Dummy { pattern: 0xF0F0 },
            s,
        );
        let r = transact(&mut net, &mut sl, &m, OcpRequest::read(0x104), 0).unwrap();
        assert_eq!(r.word(), 0xF0F0 ^ 0x104);
        // Even far outside its nominal size: a dummy always answers.
        let r = transact(&mut net, &mut sl, &m, OcpRequest::read(0xBEEF_0000), 20).unwrap();
        assert_eq!(r.word(), 0xF0F0 ^ 0xBEEF_0000);
        transact(&mut net, &mut sl, &m, OcpRequest::write(0x104, 1), 40);
        assert_eq!(sl.writes(), 1);
    }

    #[test]
    fn semaphore_behavior_is_test_and_set() {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("l", MasterId(0));
        let mut sl = TgSlave::new("sem", 0x0, 0x10, TgSlaveBehavior::Semaphore, s);
        let first = transact(&mut net, &mut sl, &m, OcpRequest::read(0x4), 0).unwrap();
        assert_eq!(first.word(), 1, "first read acquires");
        let second = transact(&mut net, &mut sl, &m, OcpRequest::read(0x4), 20).unwrap();
        assert_eq!(second.word(), 0, "second read fails");
        transact(&mut net, &mut sl, &m, OcpRequest::write(0x4, 1), 40);
        assert_eq!(sl.peek(0x4), 1, "write releases");
    }

    #[test]
    fn semaphore_rejects_bursts() {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("l", MasterId(0));
        let mut sl = TgSlave::new("sem", 0x0, 0x10, TgSlaveBehavior::Semaphore, s);
        let r = transact(&mut net, &mut sl, &m, OcpRequest::burst_read(0x0, 2), 0).unwrap();
        assert_eq!(r.status, ntg_ocp::OcpStatus::Error);
        assert_eq!(sl.errors(), 1);
    }

    #[test]
    fn memory_rejects_out_of_range() {
        let mut net = LinkArena::new();
        let (m, s) = net.channel("l", MasterId(0));
        let mut sl = TgSlave::new("mem", 0x100, 0x10, TgSlaveBehavior::Memory, s);
        let r = transact(&mut net, &mut sl, &m, OcpRequest::read(0x200), 0).unwrap();
        assert_eq!(r.status, ntg_ocp::OcpStatus::Error);
    }

    #[test]
    #[should_panic(expected = "store nothing")]
    fn dummy_peek_panics() {
        let mut net = LinkArena::new();
        let (_m, s) = net.channel("l", MasterId(0));
        let sl = TgSlave::new("d", 0, 4, TgSlaveBehavior::Dummy { pattern: 0 }, s);
        let _ = sl.peek(0);
    }
}
