//! TG assembler and disassembler: symbolic [`TgProgram`] ⇄ binary
//! [`TgImage`].

use std::collections::HashMap;
use std::fmt;

use crate::image::TgImage;
use crate::isa::TgInstr;
use crate::program::{TgItem, TgProgram, TgSymInstr};

/// Errors produced by [`assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TgAsmError {
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A branch referenced an undefined label.
    UnknownLabel(String),
    /// An `Idle` of zero cycles (use no instruction instead).
    ZeroIdle {
        /// Instruction index.
        index: usize,
    },
}

impl fmt::Display for TgAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgAsmError::DuplicateLabel(l) => write!(f, "label {l:?} defined twice"),
            TgAsmError::UnknownLabel(l) => write!(f, "label {l:?} is not defined"),
            TgAsmError::ZeroIdle { index } => {
                write!(f, "Idle(0) at instruction {index} is not executable")
            }
        }
    }
}

impl std::error::Error for TgAsmError {}

/// Assembles a symbolic program into an executable image, resolving
/// labels to absolute instruction indices.
///
/// # Errors
///
/// Returns a [`TgAsmError`] for duplicate/unknown labels or `Idle(0)`.
pub fn assemble(program: &TgProgram) -> Result<TgImage, TgAsmError> {
    // Pass 1: label positions (in instruction indices).
    let mut labels: HashMap<&str, u32> = HashMap::new();
    let mut idx: u32 = 0;
    for item in &program.items {
        match item {
            TgItem::Label(name) => {
                if labels.insert(name, idx).is_some() {
                    return Err(TgAsmError::DuplicateLabel(name.clone()));
                }
            }
            TgItem::Instr(_) => idx += 1,
        }
    }
    // Pass 2: emit.
    let lookup = |name: &str| -> Result<u32, TgAsmError> {
        labels
            .get(name)
            .copied()
            .ok_or_else(|| TgAsmError::UnknownLabel(name.to_owned()))
    };
    let mut instrs = Vec::with_capacity(idx as usize);
    for item in &program.items {
        let TgItem::Instr(sym) = item else { continue };
        let index = instrs.len();
        let instr = match sym {
            TgSymInstr::Read(addr) => TgInstr::Read { addr: *addr },
            TgSymInstr::Write(addr, data) => TgInstr::Write {
                addr: *addr,
                data: *data,
            },
            TgSymInstr::BurstRead(addr, count) => TgInstr::BurstRead {
                addr: *addr,
                count: *count,
            },
            TgSymInstr::BurstWrite(addr, data, count) => TgInstr::BurstWrite {
                addr: *addr,
                data: *data,
                count: *count,
            },
            TgSymInstr::If(a, b, cond, label) => TgInstr::If {
                a: *a,
                b: *b,
                cond: *cond,
                target: lookup(label)?,
            },
            TgSymInstr::Jump(label) => TgInstr::Jump {
                target: lookup(label)?,
            },
            TgSymInstr::SetRegister(reg, value) => TgInstr::SetRegister {
                reg: *reg,
                value: *value,
            },
            TgSymInstr::Idle(cycles) => {
                if *cycles == 0 {
                    return Err(TgAsmError::ZeroIdle { index });
                }
                TgInstr::Idle { cycles: *cycles }
            }
            TgSymInstr::IdleUntil(cycle) => TgInstr::IdleUntil { cycle: *cycle },
            TgSymInstr::Halt => TgInstr::Halt,
        };
        instrs.push(instr);
    }
    Ok(TgImage {
        master: program.master,
        thread: program.thread,
        inits: program.inits.clone(),
        instrs,
    })
}

/// Disassembles an image back into a symbolic program.
///
/// Branch targets become generated labels (`L<index>`), so
/// `assemble(&disassemble(&img))` reproduces `img` exactly — the
/// round-trip property the test suite and the paper's validation flow
/// rely on.
pub fn disassemble(image: &TgImage) -> TgProgram {
    // Collect every branch target.
    let mut targets: Vec<u32> = image
        .instrs
        .iter()
        .filter_map(|i| match i {
            TgInstr::If { target, .. } | TgInstr::Jump { target } => Some(*target),
            _ => None,
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of = |t: u32| format!("L{t}");

    let mut program = TgProgram::new(image.master);
    program.thread = image.thread;
    program.inits = image.inits.clone();
    for (idx, instr) in image.instrs.iter().enumerate() {
        if targets.binary_search(&(idx as u32)).is_ok() {
            program.label(label_of(idx as u32));
        }
        let sym = match instr {
            TgInstr::Read { addr } => TgSymInstr::Read(*addr),
            TgInstr::Write { addr, data } => TgSymInstr::Write(*addr, *data),
            TgInstr::BurstRead { addr, count } => TgSymInstr::BurstRead(*addr, *count),
            TgInstr::BurstWrite { addr, data, count } => {
                TgSymInstr::BurstWrite(*addr, *data, *count)
            }
            TgInstr::If { a, b, cond, target } => TgSymInstr::If(*a, *b, *cond, label_of(*target)),
            TgInstr::Jump { target } => TgSymInstr::Jump(label_of(*target)),
            TgInstr::SetRegister { reg, value } => TgSymInstr::SetRegister(*reg, *value),
            TgInstr::Idle { cycles } => TgSymInstr::Idle(*cycles),
            TgInstr::IdleUntil { cycle } => TgSymInstr::IdleUntil(*cycle),
            TgInstr::Halt => TgSymInstr::Halt,
        };
        program.push(sym);
    }
    // A target one past the last instruction (e.g. a forward jump to the
    // end) still needs its label.
    if targets.binary_search(&(image.instrs.len() as u32)).is_ok() {
        program.label(label_of(image.instrs.len() as u32));
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{TgCond, TgReg, RDREG, TEMPREG};

    fn poll_program() -> TgProgram {
        let mut p = TgProgram::new(1);
        p.inits.push((TgReg::new(2), 0xFF));
        p.inits.push((TEMPREG, 1));
        p.push(TgSymInstr::Idle(11));
        p.label("semchk");
        p.push(TgSymInstr::Read(TgReg::new(2)));
        p.push(TgSymInstr::If(RDREG, TEMPREG, TgCond::Ne, "semchk".into()));
        p.push(TgSymInstr::Halt);
        p
    }

    #[test]
    fn assembles_poll_loop() {
        let img = assemble(&poll_program()).unwrap();
        assert_eq!(img.instrs.len(), 4);
        assert_eq!(
            img.instrs[2],
            TgInstr::If {
                a: RDREG,
                b: TEMPREG,
                cond: TgCond::Ne,
                target: 1,
            }
        );
        img.validate_targets().unwrap();
    }

    #[test]
    fn assemble_disassemble_round_trip() {
        let img = assemble(&poll_program()).unwrap();
        let back = disassemble(&img);
        let img2 = assemble(&back).unwrap();
        assert_eq!(img, img2);
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut p = TgProgram::new(0);
        p.label("x").push(TgSymInstr::Halt).label("x");
        assert_eq!(assemble(&p), Err(TgAsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn unknown_label_rejected() {
        let mut p = TgProgram::new(0);
        p.push(TgSymInstr::Jump("nowhere".into()));
        assert_eq!(
            assemble(&p),
            Err(TgAsmError::UnknownLabel("nowhere".into()))
        );
    }

    #[test]
    fn zero_idle_rejected() {
        let mut p = TgProgram::new(0);
        p.push(TgSymInstr::Idle(0));
        assert_eq!(assemble(&p), Err(TgAsmError::ZeroIdle { index: 0 }));
    }

    #[test]
    fn forward_jump_to_end_round_trips() {
        let mut p = TgProgram::new(0);
        p.push(TgSymInstr::Jump("end".into()));
        p.push(TgSymInstr::Idle(5));
        p.label("end");
        p.push(TgSymInstr::Halt);
        let img = assemble(&p).unwrap();
        assert_eq!(img.instrs[0], TgInstr::Jump { target: 2 });
        let img2 = assemble(&disassemble(&img)).unwrap();
        assert_eq!(img, img2);
    }

    #[test]
    fn rewind_jump_like_paper_listing() {
        // The paper's Figure 3(b) ends with `Jump(start)` to rewind.
        let mut p = TgProgram::new(0);
        p.label("start");
        p.push(TgSymInstr::Idle(11));
        p.push(TgSymInstr::Read(TgReg::new(2)));
        p.push(TgSymInstr::Jump("start".into()));
        let img = assemble(&p).unwrap();
        assert_eq!(img.instrs[2], TgInstr::Jump { target: 0 });
    }
}
