//! Cycle-true interconnect models for the `ntg` platform.
//!
//! The reproduced paper measures its traffic generators on the AMBA AHB
//! interconnect of MPARM, validates trace translation against the ×pipes
//! packet-switched NoC, and mentions STBus as a third supported fabric.
//! This crate implements behavioural equivalents of all three, plus an
//! idealised fixed-latency fabric:
//!
//! * [`AmbaBus`] — a single-owner shared bus with centralised arbitration
//!   (round-robin or fixed priority): one transaction occupies the bus
//!   from grant to completion, like an AHB without split transfers.
//! * [`XpipesNoc`] — a 2D-mesh wormhole packet-switched NoC with XY
//!   routing, per-link backpressure and network-interface
//!   (de)packetisation, in the spirit of ×pipes.
//! * [`CrossbarBus`] — a full crossbar with per-slave arbitration
//!   (STBus-like): transactions to different slaves proceed in parallel.
//! * [`IdealInterconnect`] — fixed latency, unlimited bandwidth; the
//!   "transactional fabric model" the paper suggests for cheap reference
//!   runs.
//!
//! Every model connects *n* master links to *m* slave links through the
//! system [`AddressMap`](ntg_mem::AddressMap) and is plug-compatible with
//! both CPU cores and traffic generators, because everything speaks the
//! OCP channel protocol of `ntg-ocp`.
//!
//! # Shared conventions
//!
//! * An unmapped read receives an error response; an unmapped write is
//!   accepted and dropped (the master must be unblocked) — both are
//!   counted in the model's statistics.
//! * Masters have at most one outstanding transaction (the platform's
//!   cores and TGs are blocking), but every model tolerates any mix of
//!   masters issuing back-to-back requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amba;
mod crossbar;
mod ideal;
mod xpipes;

pub use amba::{AmbaBus, Arbitration, BusStats};
pub use crossbar::CrossbarBus;
pub use ideal::IdealInterconnect;
pub use xpipes::{RegionSpec, XpipesConfig, XpipesNoc};

use ntg_ocp::{LinkArena, LinkId};
use ntg_sim::observe::Contention;
use ntg_sim::Component;

/// Which interconnect family a model belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterconnectKind {
    /// Shared bus ([`AmbaBus`]).
    Amba,
    /// Packet-switched mesh ([`XpipesNoc`]).
    Xpipes,
    /// Full crossbar ([`CrossbarBus`]).
    Crossbar,
    /// Fixed-latency ideal fabric ([`IdealInterconnect`]).
    Ideal,
}

impl std::fmt::Display for InterconnectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InterconnectKind::Amba => "amba",
            InterconnectKind::Xpipes => "xpipes",
            InterconnectKind::Crossbar => "crossbar",
            InterconnectKind::Ideal => "ideal",
        };
        f.write_str(s)
    }
}

/// Common interface of every interconnect model.
///
/// Implementors are [`Component`]s over the [`LinkArena`] context,
/// constructed from the network-side endpoints of all master and slave
/// links plus the address map. The `Send` supertrait is what lets a
/// fully wired platform migrate to a campaign worker thread.
pub trait Interconnect: Component<LinkArena> + Send {
    /// The model family.
    fn kind(&self) -> InterconnectKind;

    /// Total transactions accepted from masters so far.
    fn transactions(&self) -> u64;

    /// Unmapped-address events observed so far.
    fn decode_errors(&self) -> u64;

    /// `(mean, max)` of the model's characteristic latency metric in
    /// cycles — bus occupancy for buses, packet latency for NoCs — if
    /// the model records one and has seen traffic.
    fn latency_summary(&self) -> Option<(f64, u64)> {
        None
    }

    /// Cycles the fabric spent occupied carrying traffic — the
    /// numerator of a utilization figure (divide by simulated cycles).
    /// Bus models count owner-occupied cycles, the mesh counts flit
    /// hops; models without a meaningful notion report 0.
    fn utilization_cycles(&self) -> u64 {
        0
    }

    /// Arbitration-contention summary: lost arbitration rounds, the
    /// grant-latency distribution, and per-master link counters.
    ///
    /// Built on demand (report time); the counters behind it are
    /// maintained alloc-free at transaction events during simulation.
    fn contention(&self) -> Contention {
        Contention::new(0)
    }

    /// Downcast hook for the partitioned-mesh scheduler: the ×pipes NoC
    /// returns itself, every other fabric (which has no spatial
    /// partition to exploit) returns `None`.
    fn as_xpipes_mut(&mut self) -> Option<&mut XpipesNoc> {
        None
    }

    /// Switches the model between dense per-tick scanning (the default)
    /// and event-driven endpoint worklists.
    ///
    /// In event mode the sparse scheduling engine promises to call
    /// [`wake_link`](Self::wake_link) for every link touch whose reader
    /// is this model, so the model may skip scanning endpoints nothing
    /// has touched. Models whose scans are already proportional to the
    /// traffic (buses with a handful of links) ignore this; behaviour
    /// must be bit-identical either way.
    fn set_event_driven(&mut self, _on: bool) {}

    /// Notifies an event-driven model (see
    /// [`set_event_driven`](Self::set_event_driven)) that `link` was
    /// written this cycle with this model as the reader: a master
    /// asserted a request, or a slave accepted/responded. No-op in
    /// dense mode and for models that never go event-driven.
    fn wake_link(&mut self, _link: LinkId) {}
}
