//! The AMBA-AHB-like shared bus.

use std::sync::Arc;

use ntg_mem::AddressMap;
use ntg_ocp::{LinkArena, MasterPort, OcpResponse, SlavePort};
use ntg_sim::observe::{Contention, LinkMetrics};
use ntg_sim::stats::Histogram;
use ntg_sim::{Activity, Component, Cycle};

use crate::{Interconnect, InterconnectKind};

/// Bus arbitration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Arbitration {
    /// Rotate priority after every grant (fair).
    #[default]
    RoundRobin,
    /// Lower master index always wins (AHB-style static priority).
    FixedPriority,
}

/// Aggregate bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Transactions granted bus ownership.
    pub grants: u64,
    /// Read (single + burst) transactions.
    pub reads: u64,
    /// Write (single + burst) transactions.
    pub writes: u64,
    /// Cycles the bus was occupied by a transaction.
    pub busy_cycles: u64,
    /// Unmapped-address events.
    pub decode_errors: u64,
}

#[derive(Debug, Clone, Copy)]
enum BusState {
    Idle,
    /// Extra arbitration cycles before the transfer starts.
    Granting {
        master: usize,
        until: Cycle,
    },
    /// Transfer in progress; the bus is owned until the slave finishes.
    WaitSlave {
        master: usize,
        slave: usize,
        expects_response: bool,
        granted_at: Cycle,
    },
}

/// A single-owner pipelined shared bus in the spirit of AMBA AHB.
///
/// One transaction owns the bus from grant until the slave completes it
/// (acceptance for posted writes, response delivery for reads); competing
/// requests wait at their master interfaces, which is where the paper's
/// contention-dependent "network latency" (its `t_nwk`) comes from on a
/// shared bus.
///
/// # Timing
///
/// With the default zero extra arbitration cycles, a single read takes
/// six cycles end to end on an unloaded bus with a 1-wait-state slave:
/// assert → grant (+1 visibility) → slave sees it (+1) → service
/// (1 + beats) → response hop back (+1) → consume (+1). Burst reads add
/// one cycle per extra beat. This fixed, deterministic pipeline is what
/// the trace-replay accuracy of the TG flow relies on.
pub struct AmbaBus {
    name: String,
    masters: Vec<SlavePort>,
    slaves: Vec<MasterPort>,
    map: Arc<AddressMap>,
    arbitration: Arbitration,
    extra_grant_cycles: Cycle,
    rr_next: usize,
    state: BusState,
    stats: BusStats,
    occupancy: Histogram,
    conflicts: u64,
    grant_wait: Histogram,
    links: Vec<LinkMetrics>,
}

impl AmbaBus {
    /// Creates a bus connecting `masters` to `slaves` under `map`.
    ///
    /// `masters` holds the network-side endpoint of each master link
    /// (index = master id); `slaves` the network-side endpoint of each
    /// slave link (index = [`SlaveId`](ntg_ocp::SlaveId) in the map).
    pub fn new(
        name: impl Into<String>,
        masters: Vec<SlavePort>,
        slaves: Vec<MasterPort>,
        map: Arc<AddressMap>,
    ) -> Self {
        let links = vec![LinkMetrics::default(); masters.len()];
        Self {
            name: name.into(),
            masters,
            slaves,
            map,
            arbitration: Arbitration::default(),
            extra_grant_cycles: 0,
            rr_next: 0,
            state: BusState::Idle,
            stats: BusStats::default(),
            occupancy: Histogram::new("bus_occupancy_cycles"),
            conflicts: 0,
            grant_wait: Histogram::new("grant_wait"),
            links,
        }
    }

    /// Selects the arbitration policy (default round-robin).
    pub fn set_arbitration(&mut self, arbitration: Arbitration) {
        self.arbitration = arbitration;
    }

    /// Adds extra arbitration latency to every grant (default 0).
    pub fn set_extra_grant_cycles(&mut self, cycles: Cycle) {
        self.extra_grant_cycles = cycles;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Per-transaction bus-occupancy histogram (grant to completion, in
    /// cycles): the distribution behind the paper's contention-dependent
    /// network latency.
    pub fn occupancy(&self) -> &Histogram {
        &self.occupancy
    }

    fn arbitrate(&self, net: &LinkArena, now: Cycle) -> Option<usize> {
        let n = self.masters.len();
        let start = match self.arbitration {
            Arbitration::RoundRobin => self.rr_next,
            Arbitration::FixedPriority => 0,
        };
        (0..n)
            .map(|i| (start + i) % n)
            .find(|&m| self.masters[m].has_request(net, now))
    }

    fn start_transfer(&mut self, net: &mut LinkArena, master: usize, now: Cycle) {
        // Contention bookkeeping, read before acceptance consumes the
        // request: how long the winner waited, and whether anyone lost
        // this round of arbitration.
        let stall = now
            - self.masters[master]
                .request_visible_at(net)
                .expect("arbitrated request must still be visible");
        let contended = self
            .masters
            .iter()
            .enumerate()
            .any(|(m, port)| m != master && port.has_request(net, now));
        let req = self.masters[master]
            .accept_request(net, now)
            .expect("arbitrated request must still be visible");
        match self.map.slave_for(req.addr) {
            None => {
                self.stats.decode_errors += 1;
                if req.cmd.expects_response() {
                    self.masters[master].push_response(net, OcpResponse::error(req.tag), now);
                }
                self.state = BusState::Idle;
            }
            Some(slave_id) => {
                let slave = slave_id.0 as usize;
                let expects_response = req.cmd.expects_response();
                if expects_response {
                    self.stats.reads += 1;
                } else {
                    self.stats.writes += 1;
                }
                self.stats.grants += 1;
                if contended {
                    self.conflicts += 1;
                }
                self.grant_wait.record(stall);
                self.links[master].grants += 1;
                self.links[master].stall_cycles += stall;
                self.slaves[slave].forward_request(net, req, now);
                self.state = BusState::WaitSlave {
                    master,
                    slave,
                    expects_response,
                    granted_at: now,
                };
            }
        }
        if self.arbitration == Arbitration::RoundRobin {
            self.rr_next = (master + 1) % self.masters.len();
        }
    }
}

impl Component<LinkArena> for AmbaBus {
    fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        match self.state {
            BusState::Idle => {
                if let Some(master) = self.arbitrate(net, now) {
                    if self.extra_grant_cycles == 0 {
                        self.start_transfer(net, master, now);
                    } else {
                        self.state = BusState::Granting {
                            master,
                            until: now + self.extra_grant_cycles,
                        };
                    }
                }
            }
            BusState::Granting { master, until } => {
                if now >= until {
                    self.start_transfer(net, master, now);
                }
                self.stats.busy_cycles += 1;
            }
            BusState::WaitSlave {
                master,
                slave,
                expects_response,
                granted_at,
            } => {
                self.stats.busy_cycles += 1;
                if expects_response {
                    if let Some(resp) = self.slaves[slave].take_response(net, now) {
                        self.masters[master].push_response(net, resp, now);
                        self.occupancy.record(now - granted_at);
                        self.links[master].busy_cycles += now - granted_at;
                        self.state = BusState::Idle;
                    }
                } else if self.slaves[slave].take_accept(net, now).is_some() {
                    self.occupancy.record(now - granted_at);
                    self.links[master].busy_cycles += now - granted_at;
                    self.state = BusState::Idle;
                }
            }
        }
    }

    #[inline]
    fn is_idle(&self, net: &LinkArena) -> bool {
        matches!(self.state, BusState::Idle)
            && self.masters.iter().all(|p| p.is_quiet(net))
            && self.slaves.iter().all(|p| p.is_quiet(net))
    }

    #[inline]
    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        match self.state {
            BusState::Idle => {
                let mut wake: Option<Cycle> = None;
                for m in &self.masters {
                    match m.request_visible_at(net) {
                        Some(at) if at <= now => return Activity::Busy,
                        Some(at) => wake = Some(wake.map_or(at, |w| w.min(at))),
                        None => {}
                    }
                }
                match wake {
                    Some(at) => Activity::IdleUntil(at),
                    None if self.is_idle(net) => Activity::Drained,
                    None => Activity::Busy,
                }
            }
            BusState::Granting { until, .. } if until > now => Activity::IdleUntil(until),
            BusState::Granting { .. } => Activity::Busy,
            // Owned until the slave completes: wake at the queued
            // acceptance/response event, if the slave produced one.
            BusState::WaitSlave { slave, .. } => match self.slaves[slave].next_event_at(net) {
                Some(at) if at > now => Activity::IdleUntil(at),
                Some(_) => Activity::Busy,
                // Nothing queued yet: the slave device bounds the
                // horizon; wait ticks only poll (and count occupancy,
                // which `skip` replicates).
                None => Activity::waiting(),
            },
        }
    }

    fn skip(&mut self, now: Cycle, next: Cycle, _net: &mut LinkArena) {
        // Granting and WaitSlave ticks count bus occupancy; everything
        // else they do is pure polling.
        if !matches!(self.state, BusState::Idle) {
            self.stats.busy_cycles += next - now;
        }
    }
}

impl Interconnect for AmbaBus {
    fn kind(&self) -> InterconnectKind {
        InterconnectKind::Amba
    }

    fn transactions(&self) -> u64 {
        self.stats.reads + self.stats.writes
    }

    fn decode_errors(&self) -> u64 {
        self.stats.decode_errors
    }

    fn latency_summary(&self) -> Option<(f64, u64)> {
        Some((self.occupancy.mean()?, self.occupancy.max()?))
    }

    fn utilization_cycles(&self) -> u64 {
        self.stats.busy_cycles
    }

    fn contention(&self) -> Contention {
        Contention {
            conflicts: self.conflicts,
            grant_wait: self.grant_wait.clone(),
            links: self.links.clone(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use ntg_mem::{MemoryDevice, RegionKind};
    use ntg_ocp::{MasterId, OcpRequest, OcpStatus, SlaveId};

    struct Rig {
        links: LinkArena,
        bus: AmbaBus,
        mems: Vec<MemoryDevice>,
        cpus: Vec<MasterPort>,
    }

    /// `n` masters, two memory slaves at 0x1000 and 0x2000 (0x1000 each).
    fn rig(n: usize) -> Rig {
        let mut map = AddressMap::new();
        map.add("m0", 0x1000, 0x1000, SlaveId(0), RegionKind::SharedMemory)
            .unwrap();
        map.add("m1", 0x2000, 0x1000, SlaveId(1), RegionKind::SharedMemory)
            .unwrap();
        let mut links = LinkArena::new();
        let mut cpus = Vec::new();
        let mut bus_masters = Vec::new();
        for i in 0..n {
            let (m, s) = links.channel(format!("cpu{i}"), MasterId(i as u16));
            cpus.push(m);
            bus_masters.push(s);
        }
        let mut mems = Vec::new();
        let mut bus_slaves = Vec::new();
        for (i, base) in [(0u16, 0x1000u32), (1, 0x2000)] {
            let (m, s) = links.channel(format!("slave{i}"), MasterId(0));
            bus_slaves.push(m);
            mems.push(MemoryDevice::new(format!("mem{i}"), base, 0x1000, s));
        }
        let bus = AmbaBus::new("bus", bus_masters, bus_slaves, Arc::new(map));
        Rig {
            links,
            bus,
            mems,
            cpus,
        }
    }

    fn step(r: &mut Rig, now: Cycle) {
        r.bus.tick(now, &mut r.links);
        for m in &mut r.mems {
            m.tick(now, &mut r.links);
        }
    }

    #[test]
    fn single_read_takes_six_cycles() {
        let mut r = rig(1);
        r.mems[0].poke(0x1010, 77);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1010), 0);
        let mut got = None;
        for now in 0..20 {
            step(&mut r, now);
            if let Some(resp) = r.cpus[0].take_response(&mut r.links, now) {
                got = Some((resp, now));
                break;
            }
        }
        let (resp, at) = got.expect("response");
        assert_eq!(resp.data, vec![77]);
        assert_eq!(at, 6, "single-read end-to-end latency");
    }

    #[test]
    fn posted_write_unblocks_at_grant_but_occupies_bus() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::write(0x1000, 5), 0);
        let mut accepted_at = None;
        for now in 0..20 {
            step(&mut r, now);
            if accepted_at.is_none() {
                if let Some(_tag) = r.cpus[0].take_accept(&mut r.links, now) {
                    accepted_at = Some(now);
                }
            }
        }
        // Granted at cycle 1, visible to the master at cycle 2.
        assert_eq!(accepted_at, Some(2));
        assert_eq!(r.mems[0].peek(0x1000), 5);
        assert_eq!(r.bus.stats().writes, 1);
    }

    #[test]
    fn bus_serialises_two_masters_to_same_slave() {
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x1004), 0);
        let mut done = [None, None];
        for now in 0..40 {
            step(&mut r, now);
            for c in 0..2 {
                if done[c].is_none() {
                    if let Some(_resp) = r.cpus[c].take_response(&mut r.links, now) {
                        done[c] = Some(now);
                    }
                }
            }
        }
        let (a, b) = (done[0].unwrap(), done[1].unwrap());
        assert_eq!(a, 6, "first transaction unaffected");
        assert!(b >= a + 4, "second serialised after first ({a} vs {b})");
    }

    #[test]
    fn round_robin_alternates_between_masters() {
        let mut r = rig(2);
        // Both masters hammer the same slave with writes; with RR each
        // should get an equal share of grants.
        let mut issued = [0u32, 0];
        for now in 0..400 {
            for c in 0..2 {
                r.cpus[c].take_accept(&mut r.links, now);
                if !r.cpus[c].request_pending(&r.links) && issued[c] < 20 {
                    r.cpus[c].assert_request(
                        &mut r.links,
                        OcpRequest::write(0x1000, c as u32),
                        now,
                    );
                    issued[c] += 1;
                }
            }
            step(&mut r, now);
        }
        assert_eq!(issued, [20, 20], "round robin starves nobody");
    }

    #[test]
    fn fixed_priority_favours_master_zero() {
        let mut r = rig(2);
        r.bus.set_arbitration(Arbitration::FixedPriority);
        let mut issued = [0u32, 0];
        for now in 0..100 {
            for c in 0..2 {
                r.cpus[c].take_accept(&mut r.links, now);
                if !r.cpus[c].request_pending(&r.links) {
                    r.cpus[c].assert_request(&mut r.links, OcpRequest::write(0x1000, 7), now);
                    issued[c] += 1;
                }
            }
            step(&mut r, now);
        }
        // A saturating master 0 fully starves master 1 under static
        // priority — the classic AHB pathology round-robin avoids.
        assert!(issued[0] > 5, "master 0 makes progress: {issued:?}");
        assert_eq!(issued[1], 1, "master 1 is starved: {issued:?}");
    }

    #[test]
    fn unmapped_read_gets_error_response() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0xDEAD_0000), 0);
        let mut got = None;
        for now in 0..20 {
            step(&mut r, now);
            if let Some(resp) = r.cpus[0].take_response(&mut r.links, now) {
                got = Some(resp);
                break;
            }
        }
        assert_eq!(got.unwrap().status, OcpStatus::Error);
        assert_eq!(r.bus.decode_errors(), 1);
    }

    #[test]
    fn unmapped_write_is_dropped_but_unblocks_master() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::write(0xDEAD_0000, 1), 0);
        let mut accepted = false;
        for now in 0..20 {
            step(&mut r, now);
            accepted |= r.cpus[0].take_accept(&mut r.links, now).is_some();
        }
        assert!(accepted);
        assert_eq!(r.bus.decode_errors(), 1);
        assert_eq!(r.bus.transactions(), 0);
    }

    #[test]
    fn extra_grant_cycles_delay_transfers() {
        let mut r = rig(1);
        r.bus.set_extra_grant_cycles(3);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        let mut at = None;
        for now in 0..30 {
            step(&mut r, now);
            if r.cpus[0].take_response(&mut r.links, now).is_some() {
                at = Some(now);
                break;
            }
        }
        assert_eq!(at, Some(9), "6-cycle base + 3 arbitration cycles");
    }

    #[test]
    fn burst_read_returns_line_and_charges_beats() {
        let mut r = rig(1);
        r.mems[0].load_words(0x1000, &[1, 2, 3, 4]);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::burst_read(0x1000, 4), 0);
        let mut got = None;
        for now in 0..30 {
            step(&mut r, now);
            if let Some(resp) = r.cpus[0].take_response(&mut r.links, now) {
                got = Some((resp, now));
                break;
            }
        }
        let (resp, at) = got.unwrap();
        assert_eq!(resp.data, vec![1, 2, 3, 4]);
        assert_eq!(at, 9, "three extra beats over the single read");
    }

    #[test]
    fn occupancy_histogram_tracks_transfers() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        for now in 0..20 {
            step(&mut r, now);
            r.cpus[0].take_response(&mut r.links, now);
        }
        assert_eq!(r.bus.occupancy().count(), 1);
        // Granted at 1, response relayed at 5 → 4 cycles of occupancy.
        assert_eq!(r.bus.occupancy().max(), Some(4));
    }

    #[test]
    fn contention_metrics_track_arbitration() {
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x1004), 0);
        for now in 0..40 {
            step(&mut r, now);
            for c in 0..2 {
                r.cpus[c].take_response(&mut r.links, now);
            }
        }
        let c = r.bus.contention();
        assert_eq!(c.links.len(), 2);
        assert_eq!(c.links[0].grants, 1);
        assert_eq!(c.links[1].grants, 1);
        assert_eq!(c.conflicts, 1, "only the first grant was contended");
        assert_eq!(c.links[0].stall_cycles, 0, "winner granted immediately");
        assert!(c.links[1].stall_cycles > 0, "loser waited for the bus");
        assert_eq!(c.grant_wait.count(), 2);
        assert!(r.bus.utilization_cycles() > 0);
        // Per-master busy attribution sums to the recorded occupancy.
        let busy: u64 = c.links.iter().map(|l| l.busy_cycles).sum();
        assert_eq!(busy, r.bus.occupancy().sum());
    }

    #[test]
    fn is_idle_goes_quiet_after_traffic() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::write(0x1000, 1), 0);
        for now in 0..20 {
            step(&mut r, now);
            r.cpus[0].take_accept(&mut r.links, now);
        }
        assert!(r.bus.is_idle(&r.links));
    }
}
