//! The STBus-like full crossbar interconnect.

use std::sync::Arc;

use ntg_mem::AddressMap;
use ntg_ocp::{LinkArena, MasterPort, OcpResponse, SlavePort};
use ntg_sim::observe::{Contention, LinkMetrics};
use ntg_sim::stats::Histogram;
use ntg_sim::{Activity, Component, Cycle};

use crate::{Interconnect, InterconnectKind};

#[derive(Debug, Clone, Copy)]
enum LaneState {
    Idle,
    WaitSlave {
        master: usize,
        expects_response: bool,
    },
}

/// A full crossbar: every slave has its own arbitration lane, so
/// transactions addressed to different slaves proceed in parallel.
///
/// Contention only arises when several masters target the *same* slave,
/// in which case a per-slave round-robin arbiter serialises them. This
/// approximates the parallelism of an STBus-type interconnect node and
/// sits between the fully serialised [`AmbaBus`](crate::AmbaBus) and the
/// contention-free [`IdealInterconnect`](crate::IdealInterconnect) in the
/// design space the paper explores.
///
/// Per-lane timing equals the [`AmbaBus`](crate::AmbaBus) timing: a
/// single read takes six cycles end to end on an idle lane.
pub struct CrossbarBus {
    name: String,
    masters: Vec<SlavePort>,
    slaves: Vec<MasterPort>,
    map: Arc<AddressMap>,
    lanes: Vec<LaneState>,
    rr: Vec<usize>,
    transactions: u64,
    decode_errors: u64,
    busy_lane_cycles: u64,
    conflicts: u64,
    grant_wait: Histogram,
    links: Vec<LinkMetrics>,
}

impl CrossbarBus {
    /// Creates a crossbar connecting `masters` to `slaves` under `map`.
    ///
    /// Indexing conventions match [`AmbaBus::new`](crate::AmbaBus::new).
    pub fn new(
        name: impl Into<String>,
        masters: Vec<SlavePort>,
        slaves: Vec<MasterPort>,
        map: Arc<AddressMap>,
    ) -> Self {
        let lanes = vec![LaneState::Idle; slaves.len()];
        let rr = vec![0; slaves.len()];
        let links = vec![LinkMetrics::default(); masters.len()];
        Self {
            name: name.into(),
            masters,
            slaves,
            map,
            lanes,
            rr,
            transactions: 0,
            decode_errors: 0,
            busy_lane_cycles: 0,
            conflicts: 0,
            grant_wait: Histogram::new("grant_wait"),
            links,
        }
    }

    /// Total cycles summed over all occupied lanes (a parallelism
    /// indicator when compared against total cycles).
    pub fn busy_lane_cycles(&self) -> u64 {
        self.busy_lane_cycles
    }

    /// Handles requests that decode to no slave.
    fn reject_unmapped(&mut self, net: &mut LinkArena, now: Cycle) {
        for m in 0..self.masters.len() {
            let unmapped = matches!(
                self.masters[m].peek_meta(net, now),
                Some((addr, _, _)) if self.map.slave_for(addr).is_none()
            );
            if unmapped {
                let req = self.masters[m]
                    .accept_request(net, now)
                    .expect("peeked request is still there");
                self.decode_errors += 1;
                if req.cmd.expects_response() {
                    self.masters[m].push_response(net, OcpResponse::error(req.tag), now);
                }
            }
        }
    }
}

impl Component<LinkArena> for CrossbarBus {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now: Cycle, net: &mut LinkArena) {
        self.reject_unmapped(net, now);
        for lane in 0..self.lanes.len() {
            match self.lanes[lane] {
                LaneState::WaitSlave {
                    master,
                    expects_response,
                } => {
                    self.busy_lane_cycles += 1;
                    self.links[master].busy_cycles += 1;
                    if expects_response {
                        if let Some(resp) = self.slaves[lane].take_response(net, now) {
                            self.masters[master].push_response(net, resp, now);
                            self.lanes[lane] = LaneState::Idle;
                        }
                    } else if self.slaves[lane].take_accept(net, now).is_some() {
                        self.lanes[lane] = LaneState::Idle;
                    }
                }
                LaneState::Idle => {
                    let n = self.masters.len();
                    let start = self.rr[lane];
                    let wants_lane =
                        |m: usize, masters: &[SlavePort], map: &AddressMap, net: &LinkArena| {
                            matches!(
                                masters[m].peek_meta(net, now),
                                Some((addr, _, _)) if map.slave_for(addr)
                                    == Some(ntg_ocp::SlaveId(lane as u16))
                            )
                        };
                    let winner = (0..n)
                        .map(|i| (start + i) % n)
                        .find(|&m| wants_lane(m, &self.masters, &self.map, net));
                    if let Some(m) = winner {
                        // Contention bookkeeping before acceptance
                        // consumes the request's visibility timestamp.
                        let stall = now
                            - self.masters[m]
                                .request_visible_at(net)
                                .expect("winner request is still there");
                        let contended =
                            (0..n).any(|o| o != m && wants_lane(o, &self.masters, &self.map, net));
                        let req = self.masters[m]
                            .accept_request(net, now)
                            .expect("winner request is still there");
                        let expects_response = req.cmd.expects_response();
                        self.transactions += 1;
                        if contended {
                            self.conflicts += 1;
                        }
                        self.grant_wait.record(stall);
                        self.links[m].grants += 1;
                        self.links[m].stall_cycles += stall;
                        self.slaves[lane].forward_request(net, req, now);
                        self.lanes[lane] = LaneState::WaitSlave {
                            master: m,
                            expects_response,
                        };
                        self.rr[lane] = (m + 1) % n;
                    }
                }
            }
        }
    }

    fn is_idle(&self, net: &LinkArena) -> bool {
        self.lanes.iter().all(|l| matches!(l, LaneState::Idle))
            && self.masters.iter().all(|p| p.is_quiet(net))
            && self.slaves.iter().all(|p| p.is_quiet(net))
    }

    fn next_activity(&self, now: Cycle, net: &LinkArena) -> Activity {
        let mut wake: Option<Cycle> = None;
        let merge = |wake: &mut Option<Cycle>, at: Cycle| {
            *wake = Some(wake.map_or(at, |w| w.min(at)));
        };
        // A request visible now feeds reject_unmapped or a lane arbiter.
        for m in &self.masters {
            match m.request_visible_at(net) {
                Some(at) if at <= now => return Activity::Busy,
                Some(at) => merge(&mut wake, at),
                None => {}
            }
        }
        for (lane, state) in self.lanes.iter().enumerate() {
            if matches!(state, LaneState::WaitSlave { .. }) {
                match self.slaves[lane].next_event_at(net) {
                    Some(at) if at > now => merge(&mut wake, at),
                    Some(_) => return Activity::Busy,
                    // Passive wait: the slave device bounds the horizon.
                    None => merge(&mut wake, Cycle::MAX),
                }
            }
        }
        match wake {
            Some(at) => Activity::IdleUntil(at),
            None if self.is_idle(net) => Activity::Drained,
            None => Activity::Busy,
        }
    }

    fn skip(&mut self, now: Cycle, next: Cycle, _net: &mut LinkArena) {
        // Each occupied lane counts one busy cycle per tick (total and
        // per owning master); the rest of a wait tick is pure polling.
        for lane in &self.lanes {
            if let LaneState::WaitSlave { master, .. } = lane {
                self.busy_lane_cycles += next - now;
                self.links[*master].busy_cycles += next - now;
            }
        }
    }
}

impl Interconnect for CrossbarBus {
    fn kind(&self) -> InterconnectKind {
        InterconnectKind::Crossbar
    }

    fn transactions(&self) -> u64 {
        self.transactions
    }

    fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    fn utilization_cycles(&self) -> u64 {
        self.busy_lane_cycles
    }

    fn contention(&self) -> Contention {
        Contention {
            conflicts: self.conflicts,
            grant_wait: self.grant_wait.clone(),
            links: self.links.clone(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use ntg_mem::{MemoryDevice, RegionKind};
    use ntg_ocp::{MasterId, OcpRequest, OcpStatus, SlaveId};

    struct Rig {
        links: LinkArena,
        xbar: CrossbarBus,
        mems: Vec<MemoryDevice>,
        cpus: Vec<MasterPort>,
    }

    fn rig(n: usize) -> Rig {
        let mut map = AddressMap::new();
        map.add("m0", 0x1000, 0x1000, SlaveId(0), RegionKind::SharedMemory)
            .unwrap();
        map.add("m1", 0x2000, 0x1000, SlaveId(1), RegionKind::SharedMemory)
            .unwrap();
        let mut links = LinkArena::new();
        let mut cpus = Vec::new();
        let mut net_masters = Vec::new();
        for i in 0..n {
            let (m, s) = links.channel(format!("cpu{i}"), MasterId(i as u16));
            cpus.push(m);
            net_masters.push(s);
        }
        let mut mems = Vec::new();
        let mut net_slaves = Vec::new();
        for (i, base) in [(0u16, 0x1000u32), (1, 0x2000)] {
            let (m, s) = links.channel(format!("slave{i}"), MasterId(0));
            net_slaves.push(m);
            mems.push(MemoryDevice::new(format!("mem{i}"), base, 0x1000, s));
        }
        let xbar = CrossbarBus::new("xbar", net_masters, net_slaves, Arc::new(map));
        Rig {
            links,
            xbar,
            mems,
            cpus,
        }
    }

    fn step(r: &mut Rig, now: Cycle) {
        r.xbar.tick(now, &mut r.links);
        for m in &mut r.mems {
            m.tick(now, &mut r.links);
        }
    }

    #[test]
    fn single_read_latency_matches_bus() {
        let mut r = rig(1);
        r.mems[0].poke(0x1004, 9);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1004), 0);
        for now in 0..20 {
            step(&mut r, now);
            if let Some(resp) = r.cpus[0].take_response(&mut r.links, now) {
                assert_eq!(resp.data, vec![9]);
                assert_eq!(now, 6);
                return;
            }
        }
        panic!("no response");
    }

    #[test]
    fn different_slaves_proceed_in_parallel() {
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x2000), 0);
        let mut done = [None, None];
        for now in 0..30 {
            step(&mut r, now);
            for c in 0..2 {
                if done[c].is_none() && r.cpus[c].take_response(&mut r.links, now).is_some() {
                    done[c] = Some(now);
                }
            }
        }
        assert_eq!(done[0], Some(6));
        assert_eq!(done[1], Some(6), "no serialisation across slaves");
    }

    #[test]
    fn same_slave_still_serialises() {
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x1004), 0);
        let mut done = [None, None];
        for now in 0..30 {
            step(&mut r, now);
            for c in 0..2 {
                if done[c].is_none() && r.cpus[c].take_response(&mut r.links, now).is_some() {
                    done[c] = Some(now);
                }
            }
        }
        assert_eq!(done[0], Some(6));
        assert!(done[1].unwrap() > 6, "same-slave contention serialises");
    }

    #[test]
    fn unmapped_read_errors_and_write_drops() {
        let mut r = rig(1);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x9000_0000), 0);
        let mut status = None;
        for now in 0..20 {
            step(&mut r, now);
            if let Some(resp) = r.cpus[0].take_response(&mut r.links, now) {
                status = Some(resp.status);
                break;
            }
        }
        assert_eq!(status, Some(OcpStatus::Error));
        r.cpus[0].assert_request(&mut r.links, OcpRequest::write(0x9000_0000, 1), 20);
        let mut accepted = false;
        for now in 20..40 {
            step(&mut r, now);
            accepted |= r.cpus[0].take_accept(&mut r.links, now).is_some();
        }
        assert!(accepted);
        assert_eq!(r.xbar.decode_errors(), 2);
    }

    #[test]
    fn conflicts_only_arise_on_shared_lanes() {
        // Same slave: the loser marks the grant contended.
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x1004), 0);
        for now in 0..30 {
            step(&mut r, now);
            for c in 0..2 {
                r.cpus[c].take_response(&mut r.links, now);
            }
        }
        let c = r.xbar.contention();
        assert_eq!(c.conflicts, 1);
        assert!(c.links[1].stall_cycles > 0, "loser stalled");
        assert_eq!(c.grant_wait.count(), 2);
        let busy: u64 = c.links.iter().map(|l| l.busy_cycles).sum();
        assert_eq!(busy, r.xbar.utilization_cycles());

        // Different slaves: fully parallel, no conflicts, no stalls.
        let mut r = rig(2);
        r.cpus[0].assert_request(&mut r.links, OcpRequest::read(0x1000), 0);
        r.cpus[1].assert_request(&mut r.links, OcpRequest::read(0x2000), 0);
        for now in 0..30 {
            step(&mut r, now);
            for c in 0..2 {
                r.cpus[c].take_response(&mut r.links, now);
            }
        }
        let c = r.xbar.contention();
        assert_eq!(c.conflicts, 0);
        assert_eq!(c.links[0].stall_cycles + c.links[1].stall_cycles, 0);
    }

    #[test]
    fn per_slave_round_robin_is_fair() {
        let mut r = rig(3);
        let mut completions = [0u32; 3];
        for now in 0..600 {
            for c in 0..3 {
                if r.cpus[c].take_response(&mut r.links, now).is_some() {
                    completions[c] += 1;
                }
                if !r.cpus[c].request_pending(&r.links) {
                    r.cpus[c].assert_request(&mut r.links, OcpRequest::read(0x1000), now);
                }
            }
            step(&mut r, now);
        }
        let min = *completions.iter().min().unwrap();
        let max = *completions.iter().max().unwrap();
        assert!(min > 0);
        assert!(max - min <= 1, "fair share expected, got {completions:?}");
    }
}
